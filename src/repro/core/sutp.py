"""Search-Until-Trip-Point (SUTP) — section 4.

The first test's trip point is found with a conventional full-range search
over the generous characterization range ``CR`` (eq. 2) and becomes the
*reference trip point* ``RTP``.  Every subsequent test is then searched
*incrementally from RTP* (eqs. 3/4): probe at RTP; while the device keeps
passing, step into the fail region by the growing search factor
``SF(IT) = SF * IT``; while it keeps failing, step into the pass region the
same way; the state flip brackets the new trip point.  Because properly
designed devices vary "only in a very narrow range with respect to
different input tests", the incremental walk costs a handful of
measurements instead of a full ``CR``-wide search — "huge savings of
measurement time and guaranteed automatic convergence".

If the walk runs off the characterization range (an unexpectedly large
drift provoked by a worst-case test), SUTP transparently falls back to the
full-range search, so convergence is guaranteed for any boundary inside
``CR``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.obs.events import SUTPFallback, SUTPWalkStep, SUTPWindowEscalated
from repro.obs.runtime import OBS
from repro.search.base import Oracle, PassRegion, TripPointSearcher
from repro.search.successive import SuccessiveApproximation


@dataclass(frozen=True)
class SUTPResult:
    """Result of one SUTP trip-point measurement.

    Attributes
    ----------
    trip_point:
        Edge of the pass region (last passing value), or ``None``.
    measurements:
        Oracle probes spent on this test.
    used_full_search:
        True for the RTP bootstrap (eq. 2) or a fallback after the
        incremental walk left the characterization range.
    iterations:
        Incremental steps ``IT`` consumed by the walk (0 for full searches).
    """

    trip_point: Optional[float]
    measurements: int
    used_full_search: bool
    iterations: int

    @property
    def found(self) -> bool:
        """True when a trip point was located."""
        return self.trip_point is not None


class SearchUntilTripPoint:
    """Stateful SUTP searcher over a sequence of tests.

    Parameters
    ----------
    search_range:
        The generous characterization range ``(S1, S2)`` = ``CR``.
    search_factor:
        Base step ``SF`` of the incremental walk; ``SF(IT) = SF * IT``.
    pass_region:
        :attr:`~repro.search.base.PassRegion.LOW` selects eq. (3)
        (pass region below fail region), ``HIGH`` selects eq. (4).
    full_searcher:
        Full-range method for eq. (2) and fallbacks; the paper recommends
        successive approximation, which is the default.
    resolution:
        Refinement resolution: after the walk brackets the boundary, a
        short bisection narrows it to this resolution.
    max_iterations:
        Safety bound on walk steps per test.
    update_reference:
        When True the RTP follows each measured trip point (useful under
        strong drift); the paper keeps the first reference, the default.
    """

    def __init__(
        self,
        search_range: Tuple[float, float],
        search_factor: float = 0.5,
        pass_region: PassRegion = PassRegion.LOW,
        full_searcher: Optional[TripPointSearcher] = None,
        resolution: float = 0.05,
        max_iterations: int = 1000,
        update_reference: bool = False,
    ) -> None:
        low, high = search_range
        if low >= high:
            raise ValueError("search range must satisfy S1 < S2")
        if search_factor <= 0:
            raise ValueError("search factor must be positive")
        if resolution <= 0:
            raise ValueError("resolution must be positive")
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        self.search_range = (float(low), float(high))
        self.search_factor = search_factor
        self.pass_region = pass_region
        self.resolution = resolution
        self.max_iterations = max_iterations
        self.update_reference = update_reference
        self.full_searcher = (
            full_searcher
            if full_searcher is not None
            else SuccessiveApproximation(
                resolution=resolution, pass_region=pass_region
            )
        )
        self._rtp: Optional[float] = None

    @property
    def reference_trip_point(self) -> Optional[float]:
        """The current RTP (``None`` before the first measurement)."""
        return self._rtp

    def reset(self) -> None:
        """Forget the RTP (new characterization campaign)."""
        self._rtp = None

    def seed_reference(self, rtp: float) -> None:
        """Adopt an externally supplied RTP before the first measurement.

        Used by the tester farm's RTP broadcast (section 4 applied across
        workers): the pilot unit's full-range bootstrap is shared, so
        every other unit starts with the incremental walk of eqs. (3)/(4)
        instead of paying eq. (2) again.  Falls back to the full search
        automatically if the walk leaves the characterization range.
        """
        low, high = self.search_range
        if not low <= rtp <= high:
            raise ValueError(
                f"reference trip point {rtp} outside the characterization "
                f"range [{low}, {high}]"
            )
        self._rtp = float(rtp)

    # -- public entry point ---------------------------------------------------
    def measure(self, oracle: Oracle) -> SUTPResult:
        """Trip point of the next test: eq. (2) first, eqs. (3)/(4) after."""
        if self._rtp is None:
            result = self._full_search(oracle)
        else:
            result = self._incremental_search(oracle, self._rtp)
        if result.found and (self.update_reference or self._rtp is None):
            self._rtp = result.trip_point
        if OBS.enabled:
            metrics = OBS.metrics
            # Touch the fallback counter so a clean campaign still reports
            # an explicit 0 in the summary.
            metrics.counter("sutp.fallbacks")
            if result.used_full_search:
                metrics.counter("sutp.full_searches").inc()
            else:
                metrics.counter("sutp.incremental_searches").inc()
            if result.iterations:
                metrics.histogram("sutp.walk_iterations").observe(
                    result.iterations
                )
            metrics.histogram("sutp.measurements_per_test").observe(
                result.measurements
            )
        return result

    # -- eq. (2): full-range bootstrap ------------------------------------------
    def _full_search(self, oracle: Oracle) -> SUTPResult:
        low, high = self.search_range
        outcome = self.full_searcher.search(oracle, low, high)
        return SUTPResult(
            trip_point=outcome.trip_point,
            measurements=outcome.measurements,
            used_full_search=True,
            iterations=0,
        )

    # -- eqs. (3)/(4): incremental walk from RTP -----------------------------------
    def _incremental_search(self, oracle: Oracle, rtp: float) -> SUTPResult:
        low, high = self.search_range
        toward_fail = self.pass_region.toward_fail()
        measurements = 0

        def probe(x: float) -> bool:
            nonlocal measurements
            measurements += 1
            return bool(oracle(x))

        rtp_passes = probe(rtp)
        direction = toward_fail if rtp_passes else -toward_fail
        previous = rtp
        for iteration in range(1, self.max_iterations + 1):
            step = self.search_factor * iteration  # SF(IT) = SF * IT
            x = previous + direction * step
            if not low <= x <= high:
                # Drift larger than the remaining range: fall back to the
                # generous full search; convergence stays guaranteed.
                if OBS.enabled:
                    OBS.metrics.counter("sutp.fallbacks").inc()
                    OBS.bus.emit(SUTPFallback(iteration=iteration, value=x))
                    self._emit_escalation(
                        iteration, measurements, fallback=True
                    )
                fallback = self._full_search(oracle)
                return SUTPResult(
                    trip_point=fallback.trip_point,
                    measurements=measurements + fallback.measurements,
                    used_full_search=True,
                    iterations=iteration,
                )
            state = probe(x)
            if OBS.enabled:
                OBS.bus.emit(
                    SUTPWalkStep(iteration=iteration, value=x, passed=state)
                )
            if state != rtp_passes:
                # Bracketed between `previous` and `x`; refine.
                if OBS.enabled and iteration >= 2:
                    self._emit_escalation(iteration, measurements)
                if rtp_passes:
                    pass_side, fail_side = previous, x
                else:
                    pass_side, fail_side = x, previous
                trip, extra = self._refine(oracle, pass_side, fail_side)
                return SUTPResult(
                    trip_point=trip,
                    measurements=measurements + extra,
                    used_full_search=False,
                    iterations=iteration,
                )
            previous = x

        return SUTPResult(
            trip_point=None,
            measurements=measurements,
            used_full_search=False,
            iterations=self.max_iterations,
        )

    def _emit_escalation(
        self, iteration: int, probes: int, fallback: bool = False
    ) -> None:
        """One ``sutp_window_escalated`` event per escalated walk."""
        step = self.search_factor * iteration
        window = self.search_factor * iteration * (iteration + 1) / 2.0
        OBS.metrics.counter("sutp.window_escalations").inc()
        OBS.metrics.histogram("sutp.escalation_window").observe(window)
        OBS.bus.emit(
            SUTPWindowEscalated(
                iteration=iteration,
                step=step,
                window=window,
                probes=probes,
                fallback=fallback,
            )
        )

    def _refine(
        self, oracle: Oracle, pass_side: float, fail_side: float
    ) -> Tuple[float, int]:
        """Bisect the walk's bracket down to the resolution."""
        count = 0
        while abs(fail_side - pass_side) > self.resolution:
            middle = 0.5 * (pass_side + fail_side)
            count += 1
            if oracle(middle):
                pass_side = middle
            else:
                fail_side = middle
        return pass_side, count
