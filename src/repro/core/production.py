"""Production test-program generation.

Section 1 closes the loop: the characterization phase's findings "define
the final device specification at the end of the characterization phase,
and develop a production test program in manufacturing test".

:class:`ProductionTestProgram` is that artifact: an ordered list of
first-fail screening steps — a functional march screen plus parametric
compare steps at guard-banded levels — compiled from a characterization
campaign's worst-case database.  Thanks to the CI flow the program screens
at the *true* worst case instead of at a benign pre-defined pattern, which
is exactly the escape-prevention the paper promises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.ate.tester import ATE
from repro.core.database import WorstCaseDatabase
from repro.device.parameters import DeviceParameter, SpecDirection
from repro.patterns.conditions import NOMINAL_CONDITION, TestCondition
from repro.patterns.march import compile_march, get_march_test
from repro.patterns.testcase import TestCase


@dataclass(frozen=True)
class TestStep:
    """One production-program step.

    ``compare_level`` of ``None`` marks a purely functional step (go/no-go
    read compare, no parametric strobe).
    """

    test: TestCase
    compare_level: Optional[float]
    bin_on_fail: int
    label: str

    @property
    def is_parametric(self) -> bool:
        """True for strobed parametric steps."""
        return self.compare_level is not None


@dataclass
class ScreenResult:
    """Outcome of running the program on one device."""

    passed: bool
    assigned_bin: int
    steps_applied: int
    failing_step: Optional[str] = None


@dataclass
class ProductionTestProgram:
    """An ordered, first-fail production screen."""

    parameter: DeviceParameter
    steps: List[TestStep] = field(default_factory=list)

    @property
    def parametric_step_count(self) -> int:
        """Number of strobed steps."""
        return sum(1 for s in self.steps if s.is_parametric)

    def run(self, ate: ATE) -> ScreenResult:
        """Apply the program to a device with first-fail semantics."""
        if not self.steps:
            raise ValueError("empty test program")
        for index, step in enumerate(self.steps, start=1):
            if step.is_parametric:
                ok = ate.apply(step.test, step.compare_level)
            else:
                ok = ate.functional_test(step.test).passed
            if not ok:
                return ScreenResult(
                    passed=False,
                    assigned_bin=step.bin_on_fail,
                    steps_applied=index,
                    failing_step=step.label,
                )
        return ScreenResult(passed=True, assigned_bin=1, steps_applied=len(self.steps))

    def to_text(self) -> str:
        """Human-readable program listing (test-plan review document)."""
        lines = [
            f"production test program — parameter {self.parameter.name} "
            f"(spec {self.parameter.spec_limit:g} {self.parameter.unit})"
        ]
        for index, step in enumerate(self.steps, start=1):
            if step.is_parametric:
                kind = (
                    f"parametric @ {step.compare_level:.2f} "
                    f"{self.parameter.unit}"
                )
            else:
                kind = "functional"
            lines.append(
                f"  step {index}: {step.label:<28} {kind:<28} "
                f"cycles={step.test.cycles:<5} fail->bin {step.bin_on_fail}"
            )
        return "\n".join(lines)


def build_production_program(
    database: WorstCaseDatabase,
    parameter: DeviceParameter,
    guard_band: float = 0.5,
    worst_case_steps: int = 2,
    march_name: str = "march_c-",
    condition: TestCondition = NOMINAL_CONDITION,
) -> ProductionTestProgram:
    """Compile a production program from a worst-case database.

    The program is ordered cheapest-screen-first, test-floor style:

    1. a functional march screen (catches gross/structural defects);
    2. a parametric step with the march pattern at the guard-banded spec
       limit (the conventional single-point check);
    3. parametric steps with the ``worst_case_steps`` worst database tests
       at the same level — the CI flow's contribution: the screen now
       exercises the stimulus that actually minimizes the margin.

    ``guard_band`` tightens the compare level *into* the pass region:
    below the limit for max-limited parameters, above it for min-limited
    ones (a device must beat spec with margin to ship).
    """
    if guard_band < 0:
        raise ValueError("guard band must be non-negative")
    if worst_case_steps < 0:
        raise ValueError("worst_case_steps must be non-negative")

    if parameter.direction is SpecDirection.MIN_IS_WORST:
        compare_level = parameter.spec_limit + guard_band
    else:
        compare_level = parameter.spec_limit - guard_band

    march_sequence = compile_march(get_march_test(march_name))
    march_case = TestCase(
        march_sequence, condition, name=march_name, origin="deterministic"
    )
    steps: List[TestStep] = [
        TestStep(
            test=march_case,
            compare_level=None,
            bin_on_fail=3,
            label=f"functional {march_name}",
        ),
        TestStep(
            test=march_case,
            compare_level=compare_level,
            bin_on_fail=2,
            label=f"parametric {march_name}",
        ),
    ]
    top_records = database.top(worst_case_steps) if worst_case_steps else []
    for rank, record in enumerate(top_records):
        steps.append(
            TestStep(
                test=record.test.with_condition(condition),
                compare_level=compare_level,
                bin_on_fail=2,
                label=f"worst-case #{rank} ({record.test.name})",
            )
        )
    return ProductionTestProgram(parameter=parameter, steps=steps)
