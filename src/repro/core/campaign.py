"""Full characterization campaign: the one-call deliverable.

Runs everything the paper's evaluation section reports — the Table-1
technique comparison, the multiple-trip-point drift analysis, the fig. 8
shmoo overlay — plus the engineering closure steps of section 1: a final
spec proposal and the worst-case test database with exportable patterns.
The result renders as a single markdown report and can be saved as a
self-contained directory (report + database JSON + ``.pat`` patterns).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.analysis.drift import DriftAnalysis
from repro.analysis.reporting import Table1Report
from repro.analysis.spec_setting import SpecProposal, propose_spec
from repro.ate.shmoo import (
    ShmooPlot,
    merge_overlays,
    run_shmoo_unit,
    shmoo_overlay_units,
)
from repro.core.characterizer import DeviceCharacterizer
from repro.core.database import WorstCaseDatabase
from repro.core.learning import LearningConfig
from repro.core.lot import _resolve_checkpoint
from repro.core.optimization import OptimizationConfig
from repro.farm.executor import make_executor
from repro.obs.events import WCRClassified
from repro.obs.runtime import OBS
from repro.obs.timing import span
from repro.patterns.conditions import NOMINAL_CONDITION, TestCondition
from repro.patterns.random_gen import RandomTestGenerator


@dataclass
class CampaignReport:
    """Everything a characterization campaign produced."""

    table1: Table1Report
    drift: DriftAnalysis
    spec_proposal: SpecProposal
    shmoo: ShmooPlot
    database: WorstCaseDatabase
    total_measurements: int

    def to_markdown(self) -> str:
        """Render the whole campaign as one markdown document."""
        parameter = self.table1.parameter
        sections: List[str] = [
            f"# Characterization campaign report — {parameter.name}",
            "",
            "## Technique comparison (Table 1)",
            "",
            self.table1.to_markdown(),
            "",
            "## Parameter variation (multiple trip point analysis)",
            "",
            "```",
            self.drift.describe(),
            "```",
            "",
            "## Final specification proposal",
            "",
            "```",
            self.spec_proposal.describe(),
            "```",
            "",
            "## Shmoo overlay",
            "",
            "```",
            self.shmoo.render(f"{parameter.name} ({parameter.unit})"),
            "```",
            "",
            "## Worst-case test database",
            "",
            f"{len(self.database)} parametric record(s), "
            f"{self.database.failure_count} functional failure(s).",
            "",
        ]
        for record in self.database.ranked():
            sections.append(
                f"- `{record.test.name}`: {record.measured_value:.3f} "
                f"{parameter.unit} (WCR {record.wcr:.3f}, "
                f"{record.wcr_class.value})"
            )
        sections.append("")
        sections.append(
            f"Total tester measurements: {self.total_measurements}."
        )
        return "\n".join(sections)

    def save(self, directory: Union[str, Path]) -> Path:
        """Write the campaign as a directory: report, database, patterns."""
        target = Path(directory)
        target.mkdir(parents=True, exist_ok=True)
        (target / "report.md").write_text(self.to_markdown())
        self.database.export_json(target / "worst_case_db.json")
        self.database.export_patterns(target / "patterns")
        return target


def _emit_wcr_classifications(database: WorstCaseDatabase) -> None:
    """One ``wcr_classified`` event per worst-case database record."""
    for record in database.ranked():
        wcr_class = (
            record.wcr_class.value if record.wcr_class is not None else "unknown"
        )
        OBS.metrics.counter("wcr.classified").inc(label=wcr_class)
        OBS.bus.emit(
            WCRClassified(
                test_name=record.test.name or "unnamed",
                technique=record.technique,
                wcr=record.wcr,
                wcr_class=wcr_class,
                value=record.measured_value,
            )
        )
    for record in database.failures():
        OBS.metrics.counter("wcr.classified").inc(label="functional_fail")
        OBS.bus.emit(
            WCRClassified(
                test_name=record.test.name or "unnamed",
                technique=record.technique,
                wcr=record.wcr,
                wcr_class="functional_fail",
                value=record.measured_value,
            )
        )


def run_campaign(
    characterizer: DeviceCharacterizer,
    march_name: str = "march_c-",
    random_tests: int = 300,
    shmoo_tests: int = 20,
    vdd_values: Sequence[float] = (1.5, 1.65, 1.8, 1.95, 2.1),
    learning_config: Optional[LearningConfig] = None,
    optimization_config: Optional[OptimizationConfig] = None,
    report_condition: TestCondition = NOMINAL_CONDITION,
    spec_k_sigma: float = 1.0,
    spec_guard_band: float = 0.25,
    workers: Optional[int] = None,
    executor=None,
    checkpoint=None,
) -> CampaignReport:
    """Run the full campaign on a characterizer and assemble the report.

    The shmoo overlays a fresh random sample *plus* the discovered
    worst-case test, so the report shows the outlier boundary the CI flow
    found against the ordinary population.

    The learning and GA phases are adaptive — each measurement decides
    the next — so they stay on the characterizer's single tester.  With
    ``workers=``/``executor=`` the embarrassingly parallel shmoo overlay
    is sharded one work unit per test across a :mod:`repro.farm`
    executor instead (fresh insertion and derived noise seed per test;
    deterministic for any worker count).  ``checkpoint`` lets an
    interrupted farm overlay resume.
    """
    before = characterizer.ate.measurement_count
    with span("campaign"):
        table1, dsv, optimization = characterizer._table1(
            march_name,
            random_tests,
            learning_config,
            optimization_config,
            report_condition,
        )
        drift = DriftAnalysis.from_dsv(dsv)
        if OBS.enabled:
            _emit_wcr_classifications(optimization.database)

        # Spec proposal from everything measured at the report condition,
        # anchored by the discovered worst case.
        observed = list(dsv.values())
        nnga_row = table1.rows[-1]
        observed.append(nnga_row.value)
        spec_proposal = propose_spec(
            characterizer.ate.chip.parameter,
            observed,
            k_sigma=spec_k_sigma,
            guard_band=spec_guard_band,
        )

        shmoo_sample = [
            t.with_condition(report_condition)
            for t in RandomTestGenerator(seed=characterizer.seed + 1).batch(
                shmoo_tests
            )
        ]
        shmoo_sample.append(
            optimization.best_test.with_condition(report_condition).renamed(
                "nnga_worst"
            )
        )
        farm_measurements = 0
        if workers is None and executor is None and checkpoint is None:
            shmoo = characterizer.shmoo_overlay(shmoo_sample, vdd_values)
        else:
            low, high = characterizer.search_range
            units = shmoo_overlay_units(
                shmoo_sample,
                vdd_values,
                strobe_start=low,
                strobe_stop=high,
                strobe_step=0.5,
                search_resolution=characterizer.resolution,
                die=characterizer.ate.chip.die,
                parameter=characterizer.ate.chip.parameter,
                noise_sigma=characterizer.ate.measurement.noise_sigma_ns,
                campaign_seed=characterizer.seed,
            )
            campaign_id = (
                f"campaign-shmoo:seed={characterizer.seed}"
                f":tests={len(units)}:vdds={len(vdd_values)}"
            )
            store = _resolve_checkpoint(checkpoint, campaign_id)
            farm = make_executor(workers, executor)
            with span("shmoo"):
                results = farm.run(
                    units, run_shmoo_unit, checkpoint=store,
                    campaign=campaign_id,
                )
            shmoo = merge_overlays([r.value for r in results])
            farm_measurements = sum(r.measurements for r in results)

    return CampaignReport(
        table1=table1,
        drift=drift,
        spec_proposal=spec_proposal,
        shmoo=shmoo,
        database=optimization.database,
        total_measurements=(
            characterizer.ate.measurement_count - before + farm_measurements
        ),
    )
