"""User-facing façade: full device characterization campaigns.

:class:`DeviceCharacterizer` owns a tester and exposes the three
characterization approaches the paper compares in Table 1 —

* **deterministic** — a march test, single trip point (section 1's
  conventional flow);
* **random** — the multiple-trip-point concept over N random tests
  (section 3);
* **intelligent (NN+GA)** — the full fig. 4 learning + fig. 5 optimization
  pipeline (section 5);

plus the shmoo overlay of fig. 8 and the Table-1 report builder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.analysis.reporting import Table1Report, Table1Row
from repro.ate.shmoo import ShmooPlot, ShmooPlotter
from repro.ate.tester import ATE
from repro.core.learning import LearningConfig, LearningResult, LearningScheme
from repro.core.objectives import CharacterizationObjective
from repro.core.optimization import (
    OptimizationConfig,
    OptimizationResult,
    OptimizationScheme,
)
from repro.core.trip_point import (
    DesignSpecificationValues,
    MultipleTripPointRunner,
    TripPointValue,
)
from repro.device.memory_chip import MemoryTestChip
from repro.device.process import ProcessInstance
from repro.obs.timing import span
from repro.patterns.conditions import (
    ConditionSpace,
    NOMINAL_CONDITION,
    TestCondition,
)
from repro.patterns.march import compile_march, get_march_test
from repro.patterns.random_gen import RandomTestGenerator
from repro.patterns.testcase import TestCase
from repro.search.base import PassRegion

#: Default generous characterization range for the T_DQ strobe, in ns
#: (the paper's S1/S2 example scaled to the T_DQ axis).
DEFAULT_SEARCH_RANGE = (15.0, 45.0)


class DeviceCharacterizer:
    """Characterization campaigns against one device on one tester.

    Parameters
    ----------
    ate:
        The tester holding the device under test.
    condition_space:
        Admissible environmental region for random/GA tests.
    search_range:
        Generous characterization range ``(S1, S2)`` on the strobe axis.
    search_factor:
        SUTP base step ``SF``.
    resolution:
        Trip-point resolution for all searches.
    seed:
        Master seed for random generation and CI components.
    """

    def __init__(
        self,
        ate: ATE,
        condition_space: ConditionSpace = ConditionSpace(),
        search_range: Tuple[float, float] = DEFAULT_SEARCH_RANGE,
        search_factor: float = 0.5,
        resolution: float = 0.05,
        seed: int = 0,
    ) -> None:
        self.ate = ate
        self.condition_space = condition_space
        self.search_range = search_range
        self.search_factor = search_factor
        self.resolution = resolution
        self.seed = seed
        self.objective = CharacterizationObjective.worst_case_for(
            ate.chip.parameter
        )
        # Boundary orientation follows the parameter: a min-limited timing
        # parameter passes below its trip point (eq. 3); a max-limited
        # current passes above its clamp trip point (eq. 4).
        from repro.device.parameters import SpecDirection

        self.pass_region = (
            PassRegion.LOW
            if ate.chip.parameter.direction is SpecDirection.MIN_IS_WORST
            else PassRegion.HIGH
        )

    @classmethod
    def with_default_setup(
        cls,
        seed: int = 0,
        die: Optional[ProcessInstance] = None,
        noise_sigma_ns: float = 0.04,
        parameter=None,
        **kwargs,
    ) -> "DeviceCharacterizer":
        """Build a nominal chip + tester + characterizer in one call.

        ``parameter`` selects the characterized device parameter (defaults
        to ``T_DQ``); pass a matching ``search_range`` for non-timing
        parameters (e.g. ``(40.0, 120.0)`` mA for peak supply current).
        """
        from repro.ate.measurement import MeasurementModel

        chip_kwargs = {}
        if die is not None:
            chip_kwargs["die"] = die
        if parameter is not None:
            chip_kwargs["parameter"] = parameter
        chip = MemoryTestChip(**chip_kwargs)
        ate = ATE(chip, measurement=MeasurementModel(noise_sigma_ns, seed=seed))
        return cls(ate, seed=seed, **kwargs)

    # -- runner factory -------------------------------------------------------
    def new_runner(self, strategy: str = "sutp") -> MultipleTripPointRunner:
        """Fresh multiple-trip-point runner (fresh SUTP reference)."""
        return MultipleTripPointRunner(
            self.ate,
            self.search_range,
            strategy=strategy,
            search_factor=self.search_factor,
            resolution=self.resolution,
            pass_region=self.pass_region,
        )

    def measure_single(
        self, test: TestCase, condition: Optional[TestCondition] = None
    ) -> TripPointValue:
        """Full-range single trip point of one test (conventional method)."""
        if condition is not None:
            test = test.with_condition(condition)
        runner = self.new_runner(strategy="full")
        return runner.measure_one(test)

    # -- Table 1, row 1: deterministic march baseline -------------------------------
    def characterize_march(
        self,
        march_name: str = "march_c-",
        condition: TestCondition = NOMINAL_CONDITION,
    ) -> Tuple[TestCase, TripPointValue]:
        """Single-trip-point characterization with a march pattern."""
        sequence = compile_march(get_march_test(march_name))
        test = TestCase(
            sequence, condition, name=march_name, origin="deterministic"
        )
        with span("march"):
            return test, self.measure_single(test)

    # -- Table 1, row 2: random multiple-trip-point baseline --------------------------
    def characterize_random(
        self,
        n_tests: int = 400,
        condition: Optional[TestCondition] = NOMINAL_CONDITION,
        strategy: str = "sutp",
    ) -> DesignSpecificationValues:
        """Multiple-trip-point characterization over random tests.

        ``condition=None`` lets every test sample its own operating point
        from the condition space; the default pins all tests at nominal
        (Table 1 compares at Vdd 1.8 V).
        """
        generator = RandomTestGenerator(
            seed=self.seed,
            condition_space=None if condition is not None else self.condition_space,
        )
        tests = generator.batch(n_tests)
        if condition is not None:
            tests = [t.with_condition(condition) for t in tests]
        runner = self.new_runner(strategy=strategy)
        with span("random"):
            return runner.run(tests)

    # -- Table 1, row 3: the CI flow ------------------------------------------------
    def characterize_intelligent(
        self,
        learning_config: Optional[LearningConfig] = None,
        optimization_config: Optional[OptimizationConfig] = None,
    ) -> Tuple[LearningResult, OptimizationResult]:
        """Full fig. 4 + fig. 5 pipeline; returns both phase results."""
        learning_config = (
            learning_config
            if learning_config is not None
            else LearningConfig(seed=self.seed)
        )
        optimization_config = (
            optimization_config
            if optimization_config is not None
            else OptimizationConfig(seed=self.seed)
        )
        learning_runner = self.new_runner(strategy="sutp")
        learning = LearningScheme(
            learning_runner, self.condition_space, learning_config
        ).run()

        optimization_runner = self.new_runner(strategy="sutp")
        optimization = OptimizationScheme(
            optimization_runner,
            self.condition_space,
            learning,
            self.objective,
            optimization_config,
        ).run()
        return learning, optimization

    # -- Table 1 assembly -------------------------------------------------------------
    def run_table1_comparison(
        self,
        march_name: str = "march_c-",
        random_tests: int = 400,
        learning_config: Optional[LearningConfig] = None,
        optimization_config: Optional[OptimizationConfig] = None,
        report_condition: TestCondition = NOMINAL_CONDITION,
    ) -> Table1Report:
        """Reproduce Table 1: march vs random vs NN+GA at a fixed Vdd.

        Every technique's winning *pattern* is finally re-measured at
        ``report_condition`` with a full-range search, so the reported
        values are directly comparable (the paper reports all three at
        Vdd 1.8 V).
        """
        report, _, _ = self._table1(
            march_name,
            random_tests,
            learning_config,
            optimization_config,
            report_condition,
        )
        return report

    def _table1(
        self,
        march_name: str,
        random_tests: int,
        learning_config: Optional[LearningConfig],
        optimization_config: Optional[OptimizationConfig],
        report_condition: TestCondition,
    ):
        """Table-1 body; also returns the random DSV and the optimization
        result so campaign-level reports can reuse them."""
        with span("table1"):
            return self._table1_body(
                march_name,
                random_tests,
                learning_config,
                optimization_config,
                report_condition,
            )

    def _table1_body(
        self,
        march_name: str,
        random_tests: int,
        learning_config: Optional[LearningConfig],
        optimization_config: Optional[OptimizationConfig],
        report_condition: TestCondition,
    ):
        parameter = self.ate.chip.parameter
        report = Table1Report(parameter=parameter, vdd=report_condition.vdd)
        if learning_config is None:
            learning_config = LearningConfig(
                seed=self.seed, pin_condition=report_condition
            )
        if optimization_config is None:
            optimization_config = OptimizationConfig(
                seed=self.seed, pin_condition=report_condition
            )

        # Deterministic march test.
        before = self.ate.measurement_count
        march_test, march_entry = self.characterize_march(
            march_name, report_condition
        )
        if march_entry.value is None:
            raise RuntimeError("march trip point not found; widen search_range")
        report.add(
            Table1Row(
                test_name="March Test",
                technique="Deterministic",
                wcr=self.objective.fitness(march_entry.value),
                value=march_entry.value,
                measurements=self.ate.measurement_count - before,
            )
        )

        # Random multiple trip point.
        before = self.ate.measurement_count
        dsv = self.characterize_random(random_tests, condition=report_condition)
        worst_random = dsv.worst()
        report.add(
            Table1Row(
                test_name="Random Test",
                technique="Random",
                wcr=self.objective.fitness(worst_random.value),
                value=worst_random.value,
                measurements=self.ate.measurement_count - before,
            )
        )

        # NN + GA.
        before = self.ate.measurement_count
        _, optimization = self.characterize_intelligent(
            learning_config, optimization_config
        )
        nominal_best = optimization.best_test.with_condition(report_condition)
        final_entry = self.measure_single(nominal_best)
        if final_entry.value is None:
            raise RuntimeError("NN+GA best test lost its trip point at nominal")
        report.add(
            Table1Row(
                test_name="NNGA Test",
                technique="Neural & Genetic",
                wcr=self.objective.fitness(final_entry.value),
                value=final_entry.value,
                measurements=self.ate.measurement_count - before,
            )
        )
        return report, dsv, optimization

    # -- fig. 6 screen ----------------------------------------------------------------
    def wcr_screen(
        self,
        tests: Sequence[TestCase],
        strobe_step: float = 0.5,
        engine: str = "batched",
    ):
        """Grid-based WCR classification screen over the search range.

        Every test is measured on the same full strobe grid (one batched
        row per test by default) and classified pass/weakness/fail per
        fig. 6; returns a :class:`~repro.core.wcr.ScreenReport`.
        """
        from repro.core.wcr import WCRScreen

        low, high = self.search_range
        with span("screen"):
            return WCRScreen(self.ate).run(
                tests, low, high, strobe_step, engine=engine
            )

    # -- fig. 8 ---------------------------------------------------------------------
    def shmoo_overlay(
        self,
        tests: Sequence[TestCase],
        vdd_values: Sequence[float],
        strobe_step: float = 0.5,
    ) -> ShmooPlot:
        """Overlaid multi-test shmoo (Vdd x strobe), fig. 8."""
        plotter = ShmooPlotter(self.ate)
        low, high = self.search_range
        with span("shmoo"):
            return plotter.overlay(
                tests,
                vdd_values,
                strobe_start=low,
                strobe_stop=high,
                strobe_step=strobe_step,
                search_resolution=self.resolution,
            )
