"""Multiple-trip-point characterization (section 3, eq. 1, fig. 2).

Conventional characterization measures one trip point for a handful of
pre-defined tests.  The multiple-trip-point concept instead measures a trip
point *per test* over a large set of non-deterministic random tests:

    ``DSV = TPV(T_1 .. T_N)``                                   (eq. 1)

The resulting :class:`DesignSpecificationValues` is the set of trip points;
its worst element and its spread are what single-trip-point flows cannot
see.  :class:`MultipleTripPointRunner` executes the concept on a tester,
using SUTP (section 4) or per-test full searches (the costly baseline the
F3 bench compares against).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.ate.tester import ATE
from repro.core.sutp import SearchUntilTripPoint, SUTPResult
from repro.obs.events import SUTPTestMeasured
from repro.obs.runtime import OBS
from repro.device.parameters import DeviceParameter, SpecDirection
from repro.patterns.testcase import TestCase
from repro.search.base import PassRegion, TripPointSearcher
from repro.search.oracles import make_ate_oracle
from repro.search.successive import SuccessiveApproximation


@dataclass(frozen=True)
class TripPointValue:
    """One test's measured trip point (one element of the DSV set)."""

    test: TestCase
    value: Optional[float]
    measurements: int
    used_full_search: bool = True

    @property
    def found(self) -> bool:
        """True when the trip point was located inside the range."""
        return self.value is not None


class DesignSpecificationValues:
    """The DSV set of eq. 1: trip points over N tests, plus statistics."""

    def __init__(
        self, parameter: DeviceParameter, entries: Sequence[TripPointValue]
    ) -> None:
        if not entries:
            raise ValueError("DSV needs at least one trip point entry")
        self.parameter = parameter
        self.entries: Tuple[TripPointValue, ...] = tuple(entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def values(self) -> List[float]:
        """All located trip-point values, in measurement order."""
        return [e.value for e in self.entries if e.value is not None]

    @property
    def total_measurements(self) -> int:
        """Total tester measurements spent on the whole DSV."""
        return sum(e.measurements for e in self.entries)

    @property
    def found_count(self) -> int:
        """How many tests produced a trip point."""
        return len(self.values())

    def worst(self) -> TripPointValue:
        """The worst-case entry per the parameter's spec direction.

        For a min-limited parameter the worst case is the *smallest* trip
        point ("the minimum value is the worst case", section 6); for a
        max-limited one the largest.
        """
        located = [e for e in self.entries if e.value is not None]
        if not located:
            raise ValueError("no trip point was found in any test")
        if self.parameter.direction is SpecDirection.MIN_IS_WORST:
            return min(located, key=lambda e: e.value)
        return max(located, key=lambda e: e.value)

    def spread(self) -> float:
        """Worst-case trip-point variation (max - min), fig. 2's key quantity."""
        values = self.values()
        if len(values) < 2:
            return 0.0
        return float(max(values) - min(values))

    def mean(self) -> float:
        """Mean located trip point."""
        values = self.values()
        if not values:
            raise ValueError("no trip point was found in any test")
        return float(np.mean(values))

    def std(self) -> float:
        """Standard deviation of located trip points."""
        values = self.values()
        if len(values) < 2:
            return 0.0
        return float(np.std(values))


class MultipleTripPointRunner:
    """Measures a DSV over a set of tests on a tester.

    Parameters
    ----------
    ate:
        The tester (provides the pass/fail oracle and the cost counters).
    search_range:
        Generous characterization range ``(S1, S2)``.
    strategy:
        ``"sutp"`` (default) uses Search-Until-Trip-Point across the test
        set; ``"full"`` re-runs a full-range search per test — the
        conventional, expensive approach used as the fig. 3 baseline.
    search_factor, resolution:
        SUTP step base / trip-point resolution.
    pass_region:
        Boundary orientation of the swept parameter.
    full_searcher:
        Full-range method (successive approximation by default).
    """

    def __init__(
        self,
        ate: ATE,
        search_range: Tuple[float, float],
        strategy: str = "sutp",
        search_factor: float = 0.5,
        resolution: float = 0.05,
        pass_region: PassRegion = PassRegion.LOW,
        full_searcher: Optional[TripPointSearcher] = None,
    ) -> None:
        if strategy not in ("sutp", "full"):
            raise ValueError(f"unknown strategy {strategy!r}")
        self.ate = ate
        self.search_range = search_range
        self.strategy = strategy
        self.pass_region = pass_region
        self.full_searcher = (
            full_searcher
            if full_searcher is not None
            else SuccessiveApproximation(
                resolution=resolution, pass_region=pass_region
            )
        )
        self.sutp = SearchUntilTripPoint(
            search_range=search_range,
            search_factor=search_factor,
            pass_region=pass_region,
            full_searcher=self.full_searcher,
            resolution=resolution,
        )

    def measure_one(self, test: TestCase) -> TripPointValue:
        """Measure a single test's trip point with the configured strategy."""
        oracle = make_ate_oracle(self.ate, test)
        if self.strategy == "sutp":
            rtp_before = self.sutp.reference_trip_point
            result: SUTPResult = self.sutp.measure(oracle)
            if OBS.enabled:
                drift = (
                    result.trip_point - rtp_before
                    if result.trip_point is not None and rtp_before is not None
                    else None
                )
                OBS.bus.emit(
                    SUTPTestMeasured(
                        test_name=test.name or "unnamed",
                        trip_point=result.trip_point,
                        measurements=result.measurements,
                        used_full_search=result.used_full_search,
                        iterations=result.iterations,
                        rtp=rtp_before,
                        drift=drift,
                    )
                )
                if drift is not None:
                    OBS.metrics.histogram("sutp.trip_point_drift").observe(
                        drift
                    )
            return TripPointValue(
                test=test,
                value=result.trip_point,
                measurements=result.measurements,
                used_full_search=result.used_full_search,
            )
        low, high = self.search_range
        outcome = self.full_searcher.search(oracle, low, high)
        return TripPointValue(
            test=test,
            value=outcome.trip_point,
            measurements=outcome.measurements,
            used_full_search=True,
        )

    def run(
        self,
        tests: Sequence[TestCase],
        progress: Optional[Callable[[int, TripPointValue], None]] = None,
    ) -> DesignSpecificationValues:
        """Measure the whole DSV (eq. 1) over ``tests``.

        ``progress`` is invoked after each test with ``(index, entry)``.
        """
        if not tests:
            raise ValueError("need at least one test")
        entries: List[TripPointValue] = []
        for index, test in enumerate(tests):
            entry = self.measure_one(test)
            entries.append(entry)
            if progress is not None:
                progress(index, entry)
        return DesignSpecificationValues(self.ate.chip.parameter, entries)

    def reset(self) -> None:
        """Forget the SUTP reference (new characterization campaign)."""
        self.sutp.reset()
