"""Test stimuli: vector sequences, test conditions, pattern generators.

A *test* in the paper's sense is a pair of

* a short functional **vector sequence** (100-1000 cycles of read/write
  operations against the device under test), and
* a set of **test conditions** (supply voltage, temperature, clock period).

This package provides the data model for both (:mod:`~repro.patterns.vectors`,
:mod:`~repro.patterns.conditions`, :mod:`~repro.patterns.testcase`), the
deterministic march-test library used as the conventional baseline
(:mod:`~repro.patterns.march`), the seeded random test generator of the
paper's refs. [9][10] (:mod:`~repro.patterns.random_gen`), pattern feature
extraction (:mod:`~repro.patterns.features`) and the codecs that map tests to
neural-network inputs and GA chromosomes (:mod:`~repro.patterns.encoding`).
"""

from repro.patterns.classic import (
    available_classic_patterns,
    build_classic_pattern,
)
from repro.patterns.conditions import ConditionSpace, TestCondition
from repro.patterns.encoding import TestEncoder
from repro.patterns.features import FEATURE_NAMES, PatternFeatures, extract_features
from repro.patterns.march import MarchElement, MarchTest, compile_march
from repro.patterns.random_gen import RandomTestGenerator
from repro.patterns.testcase import TestCase
from repro.patterns.vectors import Operation, TestVector, VectorSequence

__all__ = [
    "available_classic_patterns",
    "build_classic_pattern",
    "ConditionSpace",
    "TestCondition",
    "TestEncoder",
    "FEATURE_NAMES",
    "PatternFeatures",
    "extract_features",
    "MarchElement",
    "MarchTest",
    "compile_march",
    "RandomTestGenerator",
    "TestCase",
    "Operation",
    "TestVector",
    "VectorSequence",
]
