"""Test vector sequences.

A :class:`TestVector` describes one tester cycle applied to the device under
test: an operation (read / write / nop), an address and — for writes — a data
word.  A :class:`VectorSequence` is an immutable, validated list of vectors;
the paper uses short sequences of 100 to 1000 cycles so that a worst-case
test can be pin-pointed precisely (section 3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple

#: Default address width of the simulated memory test chip (1024 words).
DEFAULT_ADDR_BITS = 10
#: Default data width of the simulated memory test chip.
DEFAULT_DATA_BITS = 8

#: Sequence-length bounds recommended by the paper (section 3): "we define
#: small test sequences in between 100 to 1000 vector cycles".
MIN_SEQUENCE_CYCLES = 100
MAX_SEQUENCE_CYCLES = 1000


class Operation(enum.Enum):
    """Per-cycle tester operation."""

    READ = "r"
    WRITE = "w"
    NOP = "n"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class TestVector:
    """One tester cycle: ``(operation, address, data)``.

    ``data`` is only meaningful for :attr:`Operation.WRITE`; reads compare
    against the behavioural memory model inside the device simulator, and
    NOPs idle the bus for one cycle.
    """

    op: Operation
    address: int = 0
    data: int = 0

    def validate(self, addr_bits: int, data_bits: int) -> None:
        """Raise :class:`ValueError` if the vector does not fit the DUT bus."""
        if not 0 <= self.address < (1 << addr_bits):
            raise ValueError(
                f"address {self.address} out of range for {addr_bits} address bits"
            )
        if not 0 <= self.data < (1 << data_bits):
            raise ValueError(
                f"data {self.data:#x} out of range for {data_bits} data bits"
            )

    def __str__(self) -> str:
        return f"{self.op.value}@{self.address:04x}:{self.data:02x}"


class VectorSequence:
    """An immutable sequence of :class:`TestVector` cycles.

    Parameters
    ----------
    vectors:
        The per-cycle vectors, in application order.
    addr_bits, data_bits:
        Bus geometry used to validate every vector.
    name:
        Optional human-readable label (e.g. ``"march_cm"`` or ``"rnd_0042"``).
    """

    __slots__ = ("_vectors", "addr_bits", "data_bits", "name")

    def __init__(
        self,
        vectors: Iterable[TestVector],
        addr_bits: int = DEFAULT_ADDR_BITS,
        data_bits: int = DEFAULT_DATA_BITS,
        name: str = "",
    ) -> None:
        vecs: Tuple[TestVector, ...] = tuple(vectors)
        if not vecs:
            raise ValueError("a vector sequence must contain at least one cycle")
        for vec in vecs:
            vec.validate(addr_bits, data_bits)
        self._vectors = vecs
        self.addr_bits = addr_bits
        self.data_bits = data_bits
        self.name = name

    # -- container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._vectors)

    def __iter__(self) -> Iterator[TestVector]:
        return iter(self._vectors)

    def __getitem__(self, index: int) -> TestVector:
        return self._vectors[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorSequence):
            return NotImplemented
        return (
            self._vectors == other._vectors
            and self.addr_bits == other.addr_bits
            and self.data_bits == other.data_bits
        )

    def __hash__(self) -> int:
        return hash((self._vectors, self.addr_bits, self.data_bits))

    def __repr__(self) -> str:
        label = self.name or "unnamed"
        return f"VectorSequence({label!r}, cycles={len(self)})"

    # -- derived views ------------------------------------------------------
    @property
    def vectors(self) -> Tuple[TestVector, ...]:
        """The underlying immutable vector tuple."""
        return self._vectors

    def addresses(self) -> List[int]:
        """Per-cycle address stream."""
        return [vec.address for vec in self._vectors]

    def data_words(self) -> List[int]:
        """Per-cycle data stream (zero for reads and NOPs)."""
        return [vec.data if vec.op is Operation.WRITE else 0 for vec in self._vectors]

    def operations(self) -> List[Operation]:
        """Per-cycle operation stream."""
        return [vec.op for vec in self._vectors]

    def count(self, op: Operation) -> int:
        """Number of cycles performing ``op``."""
        return sum(1 for vec in self._vectors if vec.op is op)

    def with_name(self, name: str) -> "VectorSequence":
        """Return a renamed copy sharing the same vectors."""
        return VectorSequence(
            self._vectors, self.addr_bits, self.data_bits, name=name
        )

    def replaced(self, index: int, vector: TestVector) -> "VectorSequence":
        """Return a copy with the cycle at ``index`` replaced.

        Used by GA mutation operators, which must not modify sequences
        in place (sequences may be shared between population members).
        """
        if not 0 <= index < len(self._vectors):
            raise IndexError(f"cycle index {index} out of range")
        vecs = list(self._vectors)
        vecs[index] = vector
        return VectorSequence(vecs, self.addr_bits, self.data_bits, name=self.name)

    def spliced(
        self, other: "VectorSequence", cut_self: int, cut_other: int
    ) -> "VectorSequence":
        """Single-point crossover helper: ``self[:cut_self] + other[cut_other:]``.

        The result is clamped to :data:`MAX_SEQUENCE_CYCLES` and validated to
        contain at least one cycle; bus geometry must match.
        """
        if (self.addr_bits, self.data_bits) != (other.addr_bits, other.data_bits):
            raise ValueError("cannot splice sequences with different bus geometry")
        vecs = list(self._vectors[:cut_self]) + list(other._vectors[cut_other:])
        if not vecs:
            vecs = [self._vectors[0]]
        return VectorSequence(
            vecs[:MAX_SEQUENCE_CYCLES], self.addr_bits, self.data_bits, name=self.name
        )


def checkerboard_word(address: int, data_bits: int, inverted: bool = False) -> int:
    """Checkerboard data background word for ``address``.

    Alternating 0/1 cells in both address and bit dimensions — the classic
    memory-test background.  ``inverted`` flips every bit.
    """
    base = 0
    for bit in range(data_bits):
        cell = (address + bit) & 1
        base |= cell << bit
    if inverted:
        base ^= (1 << data_bits) - 1
    return base


def solid_word(value_bit: int, data_bits: int) -> int:
    """All-zeros (``value_bit == 0``) or all-ones data background word."""
    if value_bit not in (0, 1):
        raise ValueError("value_bit must be 0 or 1")
    return ((1 << data_bits) - 1) if value_bit else 0


def sequence_from_ops(
    ops: Sequence[Tuple[str, int, int]],
    addr_bits: int = DEFAULT_ADDR_BITS,
    data_bits: int = DEFAULT_DATA_BITS,
    name: str = "",
) -> VectorSequence:
    """Build a sequence from ``("r"|"w"|"n", address, data)`` triples.

    Convenience constructor for tests and examples.
    """
    vectors = [TestVector(Operation(op), addr, data) for op, addr, data in ops]
    return VectorSequence(vectors, addr_bits, data_bits, name=name)
