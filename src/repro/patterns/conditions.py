"""Test conditions: the environmental half of a test.

The paper's GA evolves "two different types of chromosomes — test sequences
and test conditions" (section 6).  A :class:`TestCondition` captures the
condition chromosome's phenotype: supply voltage, junction temperature and
clock period.  A :class:`ConditionSpace` bounds the admissible region and
provides sampling, clamping and normalization used by the random test
generator, the GA mutation operators and the NN input encoder.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

import numpy as np


@dataclass(frozen=True)
class TestCondition:
    """Environmental operating point for one test.

    Attributes
    ----------
    vdd:
        Supply voltage in volts (paper's experiment: nominal 1.8 V).
    temperature:
        Junction temperature in degrees Celsius.
    clock_period:
        Tester cycle period in nanoseconds.
    """

    vdd: float = 1.8
    temperature: float = 25.0
    clock_period: float = 40.0

    def validate(self) -> None:
        """Raise :class:`ValueError` on physically meaningless values."""
        if self.vdd <= 0.0:
            raise ValueError(f"vdd must be positive, got {self.vdd}")
        if self.clock_period <= 0.0:
            raise ValueError(f"clock_period must be positive, got {self.clock_period}")
        if not -100.0 <= self.temperature <= 300.0:
            raise ValueError(f"temperature {self.temperature} C is implausible")

    def with_vdd(self, vdd: float) -> "TestCondition":
        """Copy with a different supply voltage (shmoo Y-axis sweeps)."""
        return replace(self, vdd=vdd)

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view, used by the datalog."""
        return {
            "vdd": self.vdd,
            "temperature": self.temperature,
            "clock_period": self.clock_period,
        }

    def __str__(self) -> str:
        return (
            f"Vdd={self.vdd:.3f}V T={self.temperature:.1f}C "
            f"Tclk={self.clock_period:.1f}ns"
        )


#: Nominal operating point of the paper's experiment (Table 1: "Vdd 1.8V").
NOMINAL_CONDITION = TestCondition(vdd=1.8, temperature=25.0, clock_period=40.0)


@dataclass(frozen=True)
class ConditionSpace:
    """Admissible region of test conditions.

    Each axis is a closed ``(low, high)`` interval.  The defaults bracket the
    1.8 V / 140 nm operating envelope used in the paper's experiment.
    """

    vdd_range: Tuple[float, float] = (1.4, 2.2)
    temperature_range: Tuple[float, float] = (-40.0, 125.0)
    clock_period_range: Tuple[float, float] = (25.0, 80.0)

    def __post_init__(self) -> None:
        for label, (low, high) in self._axes().items():
            if low >= high:
                raise ValueError(f"{label} range must satisfy low < high")

    def _axes(self) -> Dict[str, Tuple[float, float]]:
        return {
            "vdd": self.vdd_range,
            "temperature": self.temperature_range,
            "clock_period": self.clock_period_range,
        }

    # -- membership ----------------------------------------------------------
    def contains(self, condition: TestCondition) -> bool:
        """True if ``condition`` lies inside the space (inclusive bounds)."""
        axes = self._axes()
        values = condition.as_dict()
        return all(
            axes[name][0] <= values[name] <= axes[name][1] for name in axes
        )

    def clamp(self, condition: TestCondition) -> TestCondition:
        """Project ``condition`` onto the space (GA mutation post-processing)."""
        return TestCondition(
            vdd=float(np.clip(condition.vdd, *self.vdd_range)),
            temperature=float(np.clip(condition.temperature, *self.temperature_range)),
            clock_period=float(
                np.clip(condition.clock_period, *self.clock_period_range)
            ),
        )

    # -- sampling ------------------------------------------------------------
    def sample(self, rng: np.random.Generator) -> TestCondition:
        """Draw a uniform random condition (random test generator)."""
        return TestCondition(
            vdd=float(rng.uniform(*self.vdd_range)),
            temperature=float(rng.uniform(*self.temperature_range)),
            clock_period=float(rng.uniform(*self.clock_period_range)),
        )

    def corners(self) -> Tuple[TestCondition, ...]:
        """The eight corner conditions of the space (corner-lot style checks)."""
        out = []
        for vdd in self.vdd_range:
            for temp in self.temperature_range:
                for period in self.clock_period_range:
                    out.append(
                        TestCondition(
                            vdd=vdd, temperature=temp, clock_period=period
                        )
                    )
        return tuple(out)

    # -- normalization (NN encoder / GA genes) --------------------------------
    def normalize(self, condition: TestCondition) -> np.ndarray:
        """Map a condition to ``[0, 1]^3`` (order: vdd, temperature, period)."""
        axes = self._axes()
        values = condition.as_dict()
        return np.array(
            [
                (values[name] - low) / (high - low)
                for name, (low, high) in axes.items()
            ],
            dtype=float,
        )

    def denormalize(self, genes: np.ndarray) -> TestCondition:
        """Inverse of :meth:`normalize`; genes are clipped to ``[0, 1]``."""
        genes = np.clip(np.asarray(genes, dtype=float), 0.0, 1.0)
        if genes.shape != (3,):
            raise ValueError(f"expected 3 condition genes, got shape {genes.shape}")
        names = list(self._axes().items())
        values = {
            name: low + genes[i] * (high - low)
            for i, (name, (low, high)) in enumerate(names)
        }
        return TestCondition(
            vdd=values["vdd"],
            temperature=values["temperature"],
            clock_period=values["clock_period"],
        )
