"""Pattern file I/O.

Worst-case tests are only useful if they survive the session: the paper's
final step stores them so they "can be re-simulated or analyzed in detail
with ATE".  This module defines a minimal, diff-friendly text format — one
header block plus one line per cycle — with exact round-tripping::

    # repro-pattern v1
    # name: nnga_00
    # addr_bits: 10
    # data_bits: 8
    # vdd: 1.800000
    # temperature: 25.000000
    # clock_period: 40.000000
    # origin: ga
    w 3ff ff
    r 3ff 00
    n 000 00
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Union

from repro.patterns.conditions import TestCondition
from repro.patterns.testcase import TestCase
from repro.patterns.vectors import Operation, TestVector, VectorSequence

FORMAT_TAG = "repro-pattern v1"


def dump_test(test: TestCase) -> str:
    """Serialize a test case (pattern + condition) to the text format."""
    sequence = test.sequence
    lines: List[str] = [
        f"# {FORMAT_TAG}",
        f"# name: {test.name or sequence.name or 'unnamed'}",
        f"# addr_bits: {sequence.addr_bits}",
        f"# data_bits: {sequence.data_bits}",
        f"# vdd: {test.condition.vdd:.6f}",
        f"# temperature: {test.condition.temperature:.6f}",
        f"# clock_period: {test.condition.clock_period:.6f}",
        f"# origin: {test.origin}",
    ]
    addr_width = (sequence.addr_bits + 3) // 4
    data_width = (sequence.data_bits + 3) // 4
    for vector in sequence:
        lines.append(
            f"{vector.op.value} {vector.address:0{addr_width}x} "
            f"{vector.data:0{data_width}x}"
        )
    return "\n".join(lines) + "\n"


def load_test(text: str) -> TestCase:
    """Parse the text format back into a test case.

    Raises
    ------
    ValueError
        On a missing format tag, malformed header or malformed cycle line.
    """
    lines = text.splitlines()
    if not lines or FORMAT_TAG not in lines[0]:
        raise ValueError(f"not a {FORMAT_TAG!r} file")

    header = {}
    body_start = 0
    for index, line in enumerate(lines):
        if not line.startswith("#"):
            body_start = index
            break
        if ":" in line:
            key, _, value = line.lstrip("# ").partition(":")
            header[key.strip()] = value.strip()
    else:
        body_start = len(lines)

    try:
        addr_bits = int(header["addr_bits"])
        data_bits = int(header["data_bits"])
    except KeyError as exc:
        raise ValueError(f"pattern header missing {exc}") from exc
    name = header.get("name", "unnamed")
    origin = header.get("origin", "random")
    condition = TestCondition(
        vdd=float(header.get("vdd", 1.8)),
        temperature=float(header.get("temperature", 25.0)),
        clock_period=float(header.get("clock_period", 40.0)),
    )

    vectors: List[TestVector] = []
    for line_number, line in enumerate(lines[body_start:], start=body_start + 1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        parts = stripped.split()
        if len(parts) != 3:
            raise ValueError(f"line {line_number}: expected 'op addr data'")
        op_code, addr_hex, data_hex = parts
        try:
            vectors.append(
                TestVector(Operation(op_code), int(addr_hex, 16), int(data_hex, 16))
            )
        except ValueError as exc:
            raise ValueError(f"line {line_number}: {exc}") from exc
    if not vectors:
        raise ValueError("pattern file contains no cycles")

    sequence = VectorSequence(vectors, addr_bits, data_bits, name=name)
    return TestCase(sequence, condition, name=name, origin=origin)


def save_test(test: TestCase, path: Union[str, Path]) -> None:
    """Write a test case to a ``.pat`` file."""
    Path(path).write_text(dump_test(test))


def load_test_file(path: Union[str, Path]) -> TestCase:
    """Read a test case from a ``.pat`` file."""
    return load_test(Path(path).read_text())
