"""March test library — the deterministic baseline of Table 1.

A march test is a sequence of *march elements*; each element walks the
address space in a prescribed order (up ``⇑``, down ``⇓`` or either ``⇕``)
performing a fixed list of read/write operations at every address.  The
classic algorithms (MATS+, March C-, March B, ...) are provided as data, and
:func:`compile_march` lowers an algorithm to a concrete
:class:`~repro.patterns.vectors.VectorSequence` over an address window and a
data background.

The paper's Table 1 uses "March Test / Deterministic" as the conventional
characterization stimulus; its perfectly regular address and data activity is
exactly why it fails to provoke the worst-case parameter drift.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from repro.patterns.vectors import (
    DEFAULT_ADDR_BITS,
    DEFAULT_DATA_BITS,
    MAX_SEQUENCE_CYCLES,
    Operation,
    TestVector,
    VectorSequence,
    checkerboard_word,
    solid_word,
)


class AddressOrder(enum.Enum):
    """March-element addressing order."""

    UP = "up"
    DOWN = "down"
    ANY = "any"  # ⇕ — by convention compiled as ascending


#: One march operation: ("r" or "w", background bit 0 or 1).
MarchOp = Tuple[str, int]


@dataclass(frozen=True)
class MarchElement:
    """One march element, e.g. ``⇑(r0, w1)``.

    Attributes
    ----------
    order:
        Address walking order.
    ops:
        Operations applied at each address, in order.  ``("r", 0)`` reads and
        expects background 0; ``("w", 1)`` writes background 1.
    """

    order: AddressOrder
    ops: Tuple[MarchOp, ...]

    def __post_init__(self) -> None:
        if not self.ops:
            raise ValueError("a march element needs at least one operation")
        for op, bit in self.ops:
            if op not in ("r", "w"):
                raise ValueError(f"march op must be 'r' or 'w', got {op!r}")
            if bit not in (0, 1):
                raise ValueError(f"march data bit must be 0 or 1, got {bit!r}")

    @property
    def cost(self) -> int:
        """Operations per address."""
        return len(self.ops)

    def __str__(self) -> str:
        arrow = {"up": "^", "down": "v", "any": "*"}[self.order.value]
        body = ",".join(f"{op}{bit}" for op, bit in self.ops)
        return f"{arrow}({body})"


@dataclass(frozen=True)
class MarchTest:
    """A named march algorithm: an ordered tuple of elements."""

    name: str
    elements: Tuple[MarchElement, ...]

    def __post_init__(self) -> None:
        if not self.elements:
            raise ValueError("a march test needs at least one element")

    @property
    def complexity(self) -> int:
        """Total operations per address (the classic ``kN`` complexity's k)."""
        return sum(element.cost for element in self.elements)

    def __str__(self) -> str:
        return f"{self.name}: " + "; ".join(str(e) for e in self.elements)


def _element(order: str, *ops: MarchOp) -> MarchElement:
    return MarchElement(AddressOrder(order), tuple(ops))


#: The standard march algorithm library (van de Goor's notation).
MARCH_LIBRARY: Dict[str, MarchTest] = {
    "mats": MarchTest(
        "mats",
        (
            _element("any", ("w", 0)),
            _element("any", ("r", 0), ("w", 1)),
            _element("any", ("r", 1)),
        ),
    ),
    "mats+": MarchTest(
        "mats+",
        (
            _element("any", ("w", 0)),
            _element("up", ("r", 0), ("w", 1)),
            _element("down", ("r", 1), ("w", 0)),
        ),
    ),
    "march_x": MarchTest(
        "march_x",
        (
            _element("any", ("w", 0)),
            _element("up", ("r", 0), ("w", 1)),
            _element("down", ("r", 1), ("w", 0)),
            _element("any", ("r", 0)),
        ),
    ),
    "march_y": MarchTest(
        "march_y",
        (
            _element("any", ("w", 0)),
            _element("up", ("r", 0), ("w", 1), ("r", 1)),
            _element("down", ("r", 1), ("w", 0), ("r", 0)),
            _element("any", ("r", 0)),
        ),
    ),
    "march_c-": MarchTest(
        "march_c-",
        (
            _element("any", ("w", 0)),
            _element("up", ("r", 0), ("w", 1)),
            _element("up", ("r", 1), ("w", 0)),
            _element("down", ("r", 0), ("w", 1)),
            _element("down", ("r", 1), ("w", 0)),
            _element("any", ("r", 0)),
        ),
    ),
    "march_b": MarchTest(
        "march_b",
        (
            _element("any", ("w", 0)),
            _element(
                "up", ("r", 0), ("w", 1), ("r", 1), ("w", 0), ("r", 0), ("w", 1)
            ),
            _element("up", ("r", 1), ("w", 0), ("w", 1)),
            _element("down", ("r", 1), ("w", 0), ("w", 1), ("w", 0)),
            _element("down", ("r", 0), ("w", 1), ("w", 0)),
        ),
    ),
    "march_a": MarchTest(
        "march_a",
        (
            _element("any", ("w", 0)),
            _element("up", ("r", 0), ("w", 1), ("w", 0), ("w", 1)),
            _element("up", ("r", 1), ("w", 0), ("w", 1)),
            _element("down", ("r", 1), ("w", 0), ("w", 1), ("w", 0)),
            _element("down", ("r", 0), ("w", 1), ("w", 0)),
        ),
    ),
    "march_g": MarchTest(
        "march_g",
        (
            _element("any", ("w", 0)),
            _element(
                "up", ("r", 0), ("w", 1), ("r", 1), ("w", 0), ("r", 0), ("w", 1)
            ),
            _element("up", ("r", 1), ("w", 0), ("w", 1)),
            _element("down", ("r", 1), ("w", 0), ("w", 1), ("w", 0)),
            _element("down", ("r", 0), ("w", 1), ("w", 0)),
            # The canonical March G interposes pause delays before the two
            # final verify elements (retention); the behavioural model has
            # no retention faults, so the delays are omitted.
            _element("any", ("r", 0), ("w", 1), ("r", 1)),
            _element("any", ("r", 1), ("w", 0), ("r", 0)),
        ),
    ),
    "march_lr": MarchTest(
        "march_lr",
        (
            _element("any", ("w", 0)),
            _element("down", ("r", 0), ("w", 1)),
            _element("up", ("r", 1), ("w", 0), ("r", 0), ("w", 1)),
            _element("up", ("r", 1), ("w", 0)),
            _element("up", ("r", 0), ("w", 1), ("r", 1), ("w", 0)),
            _element("up", ("r", 0)),
        ),
    ),
    "march_ss": MarchTest(
        "march_ss",
        (
            _element("any", ("w", 0)),
            _element("up", ("r", 0), ("r", 0), ("w", 0), ("r", 0), ("w", 1)),
            _element("up", ("r", 1), ("r", 1), ("w", 1), ("r", 1), ("w", 0)),
            _element("down", ("r", 0), ("r", 0), ("w", 0), ("r", 0), ("w", 1)),
            _element("down", ("r", 1), ("r", 1), ("w", 1), ("r", 1), ("w", 0)),
            _element("any", ("r", 0)),
        ),
    ),
}


#: Background generator: (address, bit, data_bits) -> data word.
BackgroundFn = Callable[[int, int, int], int]


def solid_background(address: int, bit: int, data_bits: int) -> int:
    """Solid 0x00 / 0xFF background (default for march compilation)."""
    return solid_word(bit, data_bits)


def checkerboard_background(address: int, bit: int, data_bits: int) -> int:
    """Checkerboard background; ``bit == 1`` selects the inverted phase."""
    return checkerboard_word(address, data_bits, inverted=bool(bit))


def compile_march(
    test: MarchTest,
    addresses: Sequence[int] = (),
    addr_bits: int = DEFAULT_ADDR_BITS,
    data_bits: int = DEFAULT_DATA_BITS,
    background: BackgroundFn = solid_background,
    max_cycles: int = MAX_SEQUENCE_CYCLES,
) -> VectorSequence:
    """Lower a march algorithm to a concrete vector sequence.

    Parameters
    ----------
    test:
        The march algorithm.
    addresses:
        Ascending address window to march over.  Empty selects the largest
        prefix of the address space whose compiled sequence still fits in
        ``max_cycles`` (the paper keeps characterization sequences at
        100-1000 cycles).
    background:
        Data background generator; solid by default, checkerboard available.
    max_cycles:
        Upper bound on compiled sequence length.

    Raises
    ------
    ValueError
        If even a single-address march exceeds ``max_cycles``.
    """
    if not addresses:
        words = max_cycles // test.complexity
        if words < 1:
            raise ValueError(
                f"march {test.name} ({test.complexity} ops/address) cannot fit "
                f"in {max_cycles} cycles"
            )
        words = min(words, 1 << addr_bits)
        addresses = range(words)
    address_list = list(addresses)
    if len(address_list) * test.complexity > max_cycles:
        raise ValueError(
            f"march {test.name} over {len(address_list)} addresses needs "
            f"{len(address_list) * test.complexity} cycles > max {max_cycles}"
        )

    vectors: List[TestVector] = []
    for element in test.elements:
        if element.order is AddressOrder.DOWN:
            walk: Iterable[int] = reversed(address_list)
        else:
            walk = address_list
        for address in walk:
            for op, bit in element.ops:
                data = background(address, bit, data_bits)
                if op == "w":
                    vectors.append(TestVector(Operation.WRITE, address, data))
                else:
                    vectors.append(TestVector(Operation.READ, address, data))
    return VectorSequence(vectors, addr_bits, data_bits, name=test.name)


def available_march_tests() -> Tuple[str, ...]:
    """Names of the bundled march algorithms."""
    return tuple(sorted(MARCH_LIBRARY))


def get_march_test(name: str) -> MarchTest:
    """Look up a bundled march algorithm by name (case-insensitive)."""
    key = name.lower()
    if key not in MARCH_LIBRARY:
        raise KeyError(
            f"unknown march test {name!r}; available: {available_march_tests()}"
        )
    return MARCH_LIBRARY[key]
