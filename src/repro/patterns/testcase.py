"""The unit the whole system manipulates: a (sequence, condition) test case.

"Input tests are referred to input test patterns and test conditions"
(section 1).  Every stage — multiple-trip-point characterization, NN
learning, GA optimization, shmoo analysis — consumes and produces
:class:`TestCase` objects.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.patterns.conditions import NOMINAL_CONDITION, TestCondition
from repro.patterns.vectors import VectorSequence


@dataclass(frozen=True)
class TestCase:
    """One complete test: a vector sequence applied under a condition.

    Attributes
    ----------
    sequence:
        The functional vector sequence (100-1000 cycles).
    condition:
        Environmental operating point.
    name:
        Label used in datalogs, Table-1 style reports and the worst-case
        test database.
    origin:
        Which generator produced the test: ``"deterministic"``, ``"random"``,
        ``"nn"`` (fuzzy-neural test generator) or ``"ga"``.  Mirrors the
        "Technique" column of Table 1.
    """

    sequence: VectorSequence
    condition: TestCondition = NOMINAL_CONDITION
    name: str = ""
    origin: str = "random"

    def __post_init__(self) -> None:
        self.condition.validate()

    @property
    def cycles(self) -> int:
        """Number of tester cycles in the sequence."""
        return len(self.sequence)

    def renamed(self, name: str) -> "TestCase":
        """Copy with a new label."""
        return replace(self, name=name)

    def with_condition(self, condition: TestCondition) -> "TestCase":
        """Copy with a different operating point (used by shmoo sweeps)."""
        return replace(self, condition=condition)

    def with_origin(self, origin: str) -> "TestCase":
        """Copy tagged with a different generator origin."""
        return replace(self, origin=origin)

    def __str__(self) -> str:
        label = self.name or self.sequence.name or "test"
        return f"{label}[{self.origin}] {self.cycles}cyc @ {self.condition}"
