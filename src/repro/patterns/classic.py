"""Classic deterministic memory test patterns beyond march tests.

The paper's "deterministic" technique category (Table 1) is represented by
march tests, but real characterization decks also carry the older classic
stimuli.  They are useful here both as additional deterministic baselines
and as stress generators with known activity profiles:

* **walking ones / zeros** — a single set/cleared bit walks through every
  data position at every address;
* **GALPAT** (galloping pattern) — after writing a background, each test
  cell is toggled and read ping-pong against every other cell of the
  window (quadratic; windows are kept small);
* **butterfly** — like GALPAT but the companion cells walk outward in a
  butterfly pattern around the test cell (linearized cost);
* **address complement** — alternating accesses to ``addr`` and ``~addr``,
  maximizing simultaneous address-bus toggles (every access flips *all*
  address lines).

All builders emit paper-sized sequences (100-1000 cycles by default) and
share the :class:`~repro.patterns.vectors.VectorSequence` contract of the
march compiler.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.patterns.vectors import (
    DEFAULT_ADDR_BITS,
    DEFAULT_DATA_BITS,
    MAX_SEQUENCE_CYCLES,
    Operation,
    TestVector,
    VectorSequence,
)


def walking_ones(
    addresses: Sequence[int] = (),
    addr_bits: int = DEFAULT_ADDR_BITS,
    data_bits: int = DEFAULT_DATA_BITS,
    walking_zero: bool = False,
    max_cycles: int = MAX_SEQUENCE_CYCLES,
) -> VectorSequence:
    """Walk a single one (or zero) bit through the data word.

    Per address: clear (or set) the word, then for each bit position write
    the walking word and read it back — ``2 + 2*data_bits`` cycles per
    address.
    """
    cost = 1 + 2 * data_bits
    if not addresses:
        addresses = range(max(1, max_cycles // cost))
    vectors: List[TestVector] = []
    mask = (1 << data_bits) - 1
    background = mask if walking_zero else 0
    for address in addresses:
        vectors.append(TestVector(Operation.WRITE, address, background))
        for bit in range(data_bits):
            word = (background ^ (1 << bit)) & mask
            vectors.append(TestVector(Operation.WRITE, address, word))
            vectors.append(TestVector(Operation.READ, address, word))
    name = "walking_zeros" if walking_zero else "walking_ones"
    return _clamp(vectors, addr_bits, data_bits, name, max_cycles)


def galpat(
    window: Sequence[int] = (),
    addr_bits: int = DEFAULT_ADDR_BITS,
    data_bits: int = DEFAULT_DATA_BITS,
    max_cycles: int = MAX_SEQUENCE_CYCLES,
) -> VectorSequence:
    """Galloping pattern over a small address window.

    Background 0 everywhere; for each test cell: write 1, then ping-pong
    read (other cell, test cell) for every other cell, then restore 0.
    Quadratic in the window size — the default window keeps the sequence
    inside the cycle budget.
    """
    if not window:
        # cycles ~= w + w * (1 + 2*(w-1) + 1)  ->  2w^2 + w; w=20 -> 820.
        window = range(20)
    window = list(window)
    mask = (1 << data_bits) - 1
    vectors: List[TestVector] = []
    for address in window:
        vectors.append(TestVector(Operation.WRITE, address, 0))
    for test_cell in window:
        vectors.append(TestVector(Operation.WRITE, test_cell, mask))
        for other in window:
            if other == test_cell:
                continue
            vectors.append(TestVector(Operation.READ, other, 0))
            vectors.append(TestVector(Operation.READ, test_cell, mask))
        vectors.append(TestVector(Operation.WRITE, test_cell, 0))
    return _clamp(vectors, addr_bits, data_bits, "galpat", max_cycles)


def butterfly(
    window: Sequence[int] = (),
    addr_bits: int = DEFAULT_ADDR_BITS,
    data_bits: int = DEFAULT_DATA_BITS,
    max_distance: int = 8,
    max_cycles: int = MAX_SEQUENCE_CYCLES,
) -> VectorSequence:
    """Butterfly pattern: companions at growing ± distances from the cell."""
    if not window:
        window = range(16)
    window = list(window)
    span = 1 << addr_bits
    mask = (1 << data_bits) - 1
    vectors: List[TestVector] = []
    for address in window:
        vectors.append(TestVector(Operation.WRITE, address, 0))
    for test_cell in window:
        vectors.append(TestVector(Operation.WRITE, test_cell, mask))
        distance = 1
        while distance <= max_distance:
            for companion in (
                (test_cell - distance) % span,
                (test_cell + distance) % span,
            ):
                vectors.append(TestVector(Operation.READ, companion, 0))
                vectors.append(TestVector(Operation.READ, test_cell, mask))
            distance *= 2
        vectors.append(TestVector(Operation.WRITE, test_cell, 0))
    return _clamp(vectors, addr_bits, data_bits, "butterfly", max_cycles)


def address_complement(
    addresses: Sequence[int] = (),
    addr_bits: int = DEFAULT_ADDR_BITS,
    data_bits: int = DEFAULT_DATA_BITS,
    max_cycles: int = MAX_SEQUENCE_CYCLES,
) -> VectorSequence:
    """Alternate accesses between ``addr`` and its bitwise complement.

    Every transition flips all address lines at once — the worst-case
    address-bus switching stimulus (decoder/PSN stress).
    """
    cost = 4
    if not addresses:
        addresses = range(max(1, max_cycles // cost))
    full = (1 << addr_bits) - 1
    mask = (1 << data_bits) - 1
    vectors: List[TestVector] = []
    for address in addresses:
        complement = address ^ full
        vectors.append(TestVector(Operation.WRITE, address, 0x55 & mask))
        vectors.append(TestVector(Operation.WRITE, complement, 0xAA & mask))
        vectors.append(TestVector(Operation.READ, address, 0x55 & mask))
        vectors.append(TestVector(Operation.READ, complement, 0xAA & mask))
    return _clamp(vectors, addr_bits, data_bits, "address_complement", max_cycles)


def _clamp(
    vectors: List[TestVector],
    addr_bits: int,
    data_bits: int,
    name: str,
    max_cycles: int,
) -> VectorSequence:
    if len(vectors) > max_cycles:
        vectors = vectors[:max_cycles]
    return VectorSequence(vectors, addr_bits, data_bits, name=name)


#: Builders by name (no-argument defaults), march-library style.
CLASSIC_LIBRARY: Dict[str, Callable[[], VectorSequence]] = {
    "walking_ones": walking_ones,
    "walking_zeros": lambda: walking_ones(walking_zero=True),
    "galpat": galpat,
    "butterfly": butterfly,
    "address_complement": address_complement,
}


def available_classic_patterns() -> tuple:
    """Names of the bundled classic patterns."""
    return tuple(sorted(CLASSIC_LIBRARY))


def build_classic_pattern(name: str) -> VectorSequence:
    """Build a bundled classic pattern by name."""
    try:
        return CLASSIC_LIBRARY[name]()
    except KeyError as exc:
        raise KeyError(
            f"unknown classic pattern {name!r}; available: "
            f"{available_classic_patterns()}"
        ) from exc
