"""Pattern feature extraction.

The limits of device operating values "are heavily dependent on input tests"
(section 1).  What the physics actually responds to is the *activity profile*
of a pattern: address/data bus switching, read-after-write hazards, peak
switching windows (power-supply noise), decoder stress from long address
jumps, and so on.

This module reduces a :class:`~repro.patterns.vectors.VectorSequence` to a
fixed vector of such activity features, each normalized to ``[0, 1]``.  The
features serve two independent consumers:

* the **device simulator**'s sensitivity model, which maps (a nonlinear
  combination of) features to parameter degradation, and
* the **NN encoder**, which presents the features as network inputs.

The feature set is deliberately richer than what the device model uses, so
the learning task is a genuine variable-selection problem rather than an
identity mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.patterns.vectors import Operation, VectorSequence

#: Canonical feature order.  Extend only by appending — NN weight files
#: record the feature dimension they were trained with.
FEATURE_NAMES: Tuple[str, ...] = (
    "addr_transition_density",
    "addr_msb_toggle_rate",
    "addr_jump_distance",
    "addr_repeat_run",
    "data_toggle_density",
    "data_ones_density",
    "checkerboard_affinity",
    "write_fraction",
    "read_fraction",
    "nop_fraction",
    "read_after_write_rate",
    "same_addr_turnaround_rate",
    "rw_alternation_rate",
    "burst_read_run",
    "burst_write_run",
    "peak_window_activity",
    "idle_to_active_rate",
    "addr_coverage",
)

#: Human-readable definition of each feature (reports, weight files).
FEATURE_DESCRIPTIONS = {
    "addr_transition_density": "mean Hamming distance of consecutive addresses / addr bits",
    "addr_msb_toggle_rate": "toggle rate of the top address bit (row-decoder stress)",
    "addr_jump_distance": "mean |address delta| / address-space size",
    "addr_repeat_run": "mean run length of repeated addresses (capped at 8)",
    "data_toggle_density": "mean Hamming distance of consecutive bus data words / data bits",
    "data_ones_density": "mean ones density of written data",
    "checkerboard_affinity": "1 - distance of written data to the nearer checkerboard phase",
    "write_fraction": "fraction of write cycles",
    "read_fraction": "fraction of read cycles",
    "nop_fraction": "fraction of idle cycles",
    "read_after_write_rate": "rate of same-address write-then-read transitions",
    "same_addr_turnaround_rate": "rate of same-address read/write direction turnarounds",
    "rw_alternation_rate": "rate of read<->write operation flips",
    "burst_read_run": "longest consecutive-read run / 64 (capped)",
    "burst_write_run": "longest consecutive-write run / 64 (capped)",
    "peak_window_activity": "max combined addr+data switching over a sliding window",
    "idle_to_active_rate": "rate of NOP-to-active transitions (bus wakeups)",
    "addr_coverage": "distinct addresses touched / address-space size",
}

#: Sliding window (cycles) for the peak switching-activity feature — roughly
#: the supply-decoupling time constant of the simulated chip.
PEAK_WINDOW_CYCLES = 16


@dataclass(frozen=True)
class PatternFeatures:
    """Named view over an extracted feature vector."""

    values: np.ndarray

    def __post_init__(self) -> None:
        if self.values.shape != (len(FEATURE_NAMES),):
            raise ValueError(
                f"feature vector must have shape ({len(FEATURE_NAMES)},), "
                f"got {self.values.shape}"
            )

    def __getitem__(self, name: str) -> float:
        try:
            return float(self.values[FEATURE_NAMES.index(name)])
        except ValueError as exc:
            raise KeyError(f"unknown feature {name!r}") from exc

    def as_dict(self) -> Dict[str, float]:
        """Feature name → value mapping."""
        return {name: float(v) for name, v in zip(FEATURE_NAMES, self.values)}

    def __len__(self) -> int:
        return len(self.values)


def _popcount(values: np.ndarray) -> np.ndarray:
    """Vectorized population count for small unsigned integers."""
    counts = np.zeros_like(values)
    work = values.copy()
    while np.any(work):
        counts += work & 1
        work >>= 1
    return counts


def _mean_run_length(mask: np.ndarray) -> float:
    """Average length of maximal runs of True in ``mask`` (0.0 if none)."""
    if not mask.any():
        return 0.0
    padded = np.concatenate(([False], mask, [False]))
    changes = np.flatnonzero(padded[1:] != padded[:-1])
    starts, ends = changes[::2], changes[1::2]
    return float(np.mean(ends - starts))


def _max_run_length(mask: np.ndarray) -> int:
    """Longest maximal run of True in ``mask``."""
    if not mask.any():
        return 0
    padded = np.concatenate(([False], mask, [False]))
    changes = np.flatnonzero(padded[1:] != padded[:-1])
    starts, ends = changes[::2], changes[1::2]
    return int(np.max(ends - starts))


def extract_features(sequence: VectorSequence) -> PatternFeatures:
    """Extract the canonical activity features of a vector sequence.

    Every feature is normalized to ``[0, 1]``.  Extraction is deterministic
    and linear in the sequence length.
    """
    n = len(sequence)
    addr_bits = sequence.addr_bits
    data_bits = sequence.data_bits

    addresses = np.array(sequence.addresses(), dtype=np.int64)
    ops = np.array(
        [0 if op is Operation.NOP else (1 if op is Operation.READ else 2)
         for op in sequence.operations()],
        dtype=np.int64,
    )
    is_read = ops == 1
    is_write = ops == 2
    is_active = ops != 0

    # Written data stream (holds the last written word through reads/NOPs so
    # bus toggle reflects what actually switches on the data bus).
    raw_data = np.array(
        [vec.data if vec.op is Operation.WRITE else -1 for vec in sequence],
        dtype=np.int64,
    )
    write_positions = np.where(raw_data >= 0, np.arange(n), -1)
    last_write_index = np.maximum.accumulate(write_positions)
    bus_data = np.where(
        last_write_index >= 0,
        raw_data[np.maximum(last_write_index, 0)],
        0,
    )

    features = np.zeros(len(FEATURE_NAMES), dtype=float)
    index = {name: i for i, name in enumerate(FEATURE_NAMES)}

    if n >= 2:
        addr_xor = addresses[1:] ^ addresses[:-1]
        addr_hamming = _popcount(addr_xor)
        features[index["addr_transition_density"]] = float(
            np.mean(addr_hamming) / addr_bits
        )
        msb = (addresses >> (addr_bits - 1)) & 1
        features[index["addr_msb_toggle_rate"]] = float(
            np.mean(msb[1:] != msb[:-1])
        )
        jumps = np.abs(np.diff(addresses))
        features[index["addr_jump_distance"]] = float(
            np.mean(jumps) / max(1, (1 << addr_bits) - 1)
        )
        repeat = addresses[1:] == addresses[:-1]
        features[index["addr_repeat_run"]] = min(
            1.0, _mean_run_length(repeat) / 8.0
        )
        data_xor = bus_data[1:] ^ bus_data[:-1]
        features[index["data_toggle_density"]] = float(
            np.mean(_popcount(data_xor)) / data_bits
        )
        op_flip = (is_read[1:] & is_write[:-1]) | (is_write[1:] & is_read[:-1])
        features[index["rw_alternation_rate"]] = float(np.mean(op_flip))
        raw = is_read[1:] & is_write[:-1] & (addresses[1:] == addresses[:-1])
        features[index["read_after_write_rate"]] = float(np.mean(raw))
        turnaround = (addresses[1:] == addresses[:-1]) & op_flip
        features[index["same_addr_turnaround_rate"]] = float(np.mean(turnaround))
        idle_to_active = is_active[1:] & ~is_active[:-1]
        features[index["idle_to_active_rate"]] = float(np.mean(idle_to_active))

    written = bus_data[is_write]
    if written.size:
        features[index["data_ones_density"]] = float(
            np.mean(_popcount(written)) / data_bits
        )
        checker = np.array(
            [_checkerboard_distance(a, d, data_bits)
             for a, d in zip(addresses[is_write], written)],
            dtype=float,
        )
        features[index["checkerboard_affinity"]] = float(1.0 - np.mean(checker))

    features[index["write_fraction"]] = float(np.mean(is_write))
    features[index["read_fraction"]] = float(np.mean(is_read))
    features[index["nop_fraction"]] = float(np.mean(~is_active))
    features[index["burst_read_run"]] = min(1.0, _max_run_length(is_read) / 64.0)
    features[index["burst_write_run"]] = min(1.0, _max_run_length(is_write) / 64.0)
    features[index["addr_coverage"]] = float(
        np.unique(addresses).size / (1 << addr_bits)
    )

    if n >= 2:
        activity = (addr_hamming / addr_bits + _popcount(data_xor) / data_bits) / 2.0
        window = min(PEAK_WINDOW_CYCLES, activity.size)
        kernel = np.ones(window) / window
        rolling = np.convolve(activity, kernel, mode="valid")
        features[index["peak_window_activity"]] = float(np.max(rolling))

    np.clip(features, 0.0, 1.0, out=features)
    return PatternFeatures(features)


def _checkerboard_distance(address: int, data: int, data_bits: int) -> float:
    """Normalized Hamming distance of ``data`` to the nearer checkerboard phase."""
    phase0 = 0
    for bit in range(data_bits):
        phase0 |= ((address + bit) & 1) << bit
    phase1 = phase0 ^ ((1 << data_bits) - 1)
    dist0 = bin(data ^ phase0).count("1")
    dist1 = bin(data ^ phase1).count("1")
    return min(dist0, dist1) / data_bits
