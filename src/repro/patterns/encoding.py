"""Codecs between test cases and numeric learning inputs.

The neural network of fig. 4 "learn[s] from a set of input tests"; what the
network actually consumes is a fixed-length real vector.  The
:class:`TestEncoder` concatenates the canonical pattern activity features
(:mod:`~repro.patterns.features`) with the normalized test condition, giving
an input that is invariant to sequence length and address-space size.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.patterns.conditions import ConditionSpace
from repro.patterns.features import FEATURE_NAMES, extract_features
from repro.patterns.testcase import TestCase

#: Names of the condition inputs appended after the pattern features.
CONDITION_INPUT_NAMES = ("cond_vdd", "cond_temperature", "cond_clock_period")


class TestEncoder:
    """Encode :class:`~repro.patterns.testcase.TestCase` objects as NN inputs.

    Parameters
    ----------
    condition_space:
        Space used to normalize the environmental condition to ``[0, 1]``.
    include_condition:
        When False, only pattern features are emitted (used by pattern-only
        analyses where every test runs at the nominal condition).
    """

    def __init__(
        self,
        condition_space: ConditionSpace,
        include_condition: bool = True,
    ) -> None:
        self.condition_space = condition_space
        self.include_condition = include_condition

    @property
    def input_dim(self) -> int:
        """Dimension of the encoded vector."""
        extra = len(CONDITION_INPUT_NAMES) if self.include_condition else 0
        return len(FEATURE_NAMES) + extra

    @property
    def input_names(self) -> List[str]:
        """Human-readable name of each input component, in order."""
        names = list(FEATURE_NAMES)
        if self.include_condition:
            names.extend(CONDITION_INPUT_NAMES)
        return names

    def encode(self, test: TestCase) -> np.ndarray:
        """Encode a single test case as a ``[0, 1]`` vector."""
        features = extract_features(test.sequence).values
        if not self.include_condition:
            return features.copy()
        condition = self.condition_space.normalize(test.condition)
        return np.concatenate([features, condition])

    def encode_batch(self, tests: Sequence[TestCase]) -> np.ndarray:
        """Encode a batch of tests as a ``(len(tests), input_dim)`` matrix."""
        if not tests:
            return np.zeros((0, self.input_dim), dtype=float)
        return np.stack([self.encode(test) for test in tests])
