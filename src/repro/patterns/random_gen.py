"""Non-deterministic random test generator.

Implements the "random test generator based on [9-10]" used by the multiple
trip point procedure (section 3, fig. 2).  The generator is seeded and fully
reproducible; it mixes several stimulus *styles* so that the random test
population explores qualitatively different activity profiles:

``uniform``
    Independent uniform operations, addresses and data every cycle.
``burst``
    Alternating read/write bursts at a random base address — high
    read-after-write and turnaround activity.
``sweep``
    Linear address sweeps with random stride — march-like regular activity.
``hammer``
    Repeated accesses to a tiny address set — row-hammer style locality.
``toggle``
    Data-bus worst-case toggling (AA/55-style alternation) at random
    addresses — high switching-noise profile.

A pure ``uniform`` generator finds mediocre worst cases; the style mix is
what gives the NN a learnable spread of activity profiles, mirroring the
"non-deterministic random tests, such as bus control signals in real
application board" of section 3.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.patterns.conditions import ConditionSpace, NOMINAL_CONDITION
from repro.patterns.testcase import TestCase
from repro.patterns.vectors import (
    DEFAULT_ADDR_BITS,
    DEFAULT_DATA_BITS,
    MAX_SEQUENCE_CYCLES,
    MIN_SEQUENCE_CYCLES,
    Operation,
    TestVector,
    VectorSequence,
)

#: Stimulus styles and their default mixing weights.
STYLES: Tuple[Tuple[str, float], ...] = (
    ("uniform", 0.30),
    ("burst", 0.20),
    ("sweep", 0.15),
    ("hammer", 0.15),
    ("toggle", 0.20),
)


class RandomTestGenerator:
    """Seeded generator of random :class:`~repro.patterns.testcase.TestCase`.

    Parameters
    ----------
    seed:
        RNG seed; two generators with the same seed emit identical streams.
    condition_space:
        Admissible environmental region; ``None`` pins every test to the
        nominal condition (pattern-only studies, e.g. the fig. 2 bench).
    addr_bits, data_bits:
        DUT bus geometry.
    min_cycles, max_cycles:
        Sequence length bounds (paper: 100-1000).
    """

    def __init__(
        self,
        seed: int = 0,
        condition_space: Optional[ConditionSpace] = None,
        addr_bits: int = DEFAULT_ADDR_BITS,
        data_bits: int = DEFAULT_DATA_BITS,
        min_cycles: int = MIN_SEQUENCE_CYCLES,
        max_cycles: int = MAX_SEQUENCE_CYCLES,
    ) -> None:
        if min_cycles < 1 or max_cycles < min_cycles:
            raise ValueError("need 1 <= min_cycles <= max_cycles")
        self._rng = np.random.default_rng(seed)
        self.condition_space = condition_space
        self.addr_bits = addr_bits
        self.data_bits = data_bits
        self.min_cycles = min_cycles
        self.max_cycles = max_cycles
        self._counter = 0

    # -- public API ----------------------------------------------------------
    def generate(self, style: Optional[str] = None) -> TestCase:
        """Emit the next random test case.

        ``style`` forces a stimulus style; by default the style is drawn from
        the :data:`STYLES` mixing weights.
        """
        rng = self._rng
        if style is None:
            names = [name for name, _ in STYLES]
            weights = np.array([w for _, w in STYLES])
            style = str(rng.choice(names, p=weights / weights.sum()))
        cycles = int(rng.integers(self.min_cycles, self.max_cycles + 1))
        builder = getattr(self, f"_build_{style}", None)
        if builder is None:
            raise ValueError(f"unknown stimulus style {style!r}")
        vectors = builder(rng, cycles)
        name = f"rnd_{self._counter:05d}_{style}"
        self._counter += 1
        sequence = VectorSequence(
            vectors, self.addr_bits, self.data_bits, name=name
        )
        if self.condition_space is not None:
            condition = self.condition_space.sample(rng)
        else:
            condition = NOMINAL_CONDITION
        return TestCase(sequence, condition, name=name, origin="random")

    def batch(self, count: int) -> List[TestCase]:
        """Emit ``count`` test cases."""
        return [self.generate() for _ in range(count)]

    def stream(self) -> Iterator[TestCase]:
        """Endless test-case stream (learning scheme step 1, fig. 4)."""
        while True:
            yield self.generate()

    # -- style builders --------------------------------------------------------
    def _rand_addr(self, rng: np.random.Generator) -> int:
        return int(rng.integers(0, 1 << self.addr_bits))

    def _rand_data(self, rng: np.random.Generator) -> int:
        return int(rng.integers(0, 1 << self.data_bits))

    def _build_uniform(
        self, rng: np.random.Generator, cycles: int
    ) -> List[TestVector]:
        ops = rng.choice([Operation.READ, Operation.WRITE, Operation.NOP],
                         size=cycles, p=[0.45, 0.45, 0.10])
        return [
            TestVector(op, self._rand_addr(rng), self._rand_data(rng))
            for op in ops
        ]

    def _build_burst(
        self, rng: np.random.Generator, cycles: int
    ) -> List[TestVector]:
        vectors: List[TestVector] = []
        while len(vectors) < cycles:
            base = self._rand_addr(rng)
            burst = int(rng.integers(2, 9))
            word = self._rand_data(rng)
            for offset in range(burst):
                addr = (base + offset) % (1 << self.addr_bits)
                vectors.append(TestVector(Operation.WRITE, addr, word ^ offset))
                vectors.append(TestVector(Operation.READ, addr, 0))
        return vectors[:cycles]

    def _build_sweep(
        self, rng: np.random.Generator, cycles: int
    ) -> List[TestVector]:
        stride = int(rng.integers(1, 17))
        addr = self._rand_addr(rng)
        word = self._rand_data(rng)
        write_phase = bool(rng.integers(0, 2))
        vectors: List[TestVector] = []
        for _ in range(cycles):
            op = Operation.WRITE if write_phase else Operation.READ
            vectors.append(TestVector(op, addr, word))
            addr = (addr + stride) % (1 << self.addr_bits)
            if rng.random() < 0.02:
                write_phase = not write_phase
        return vectors

    def _build_hammer(
        self, rng: np.random.Generator, cycles: int
    ) -> List[TestVector]:
        hot = [self._rand_addr(rng) for _ in range(int(rng.integers(1, 4)))]
        vectors: List[TestVector] = []
        for i in range(cycles):
            addr = hot[i % len(hot)]
            if rng.random() < 0.5:
                vectors.append(TestVector(Operation.WRITE, addr,
                                          self._rand_data(rng)))
            else:
                vectors.append(TestVector(Operation.READ, addr, 0))
        return vectors

    def _build_toggle(
        self, rng: np.random.Generator, cycles: int
    ) -> List[TestVector]:
        mask = (1 << self.data_bits) - 1
        word = int(rng.integers(0, 1 << self.data_bits))
        half = 1 << (self.addr_bits - 1)
        addr = self._rand_addr(rng)
        vectors: List[TestVector] = []
        for i in range(cycles):
            word ^= mask  # AA/55-style full-bus toggle
            addr ^= half if i % 2 else int(rng.integers(0, 1 << self.addr_bits))
            addr &= (1 << self.addr_bits) - 1
            vectors.append(TestVector(Operation.WRITE, addr, word))
        return vectors
