"""Multilayer perceptron.

A plain feed-forward stack of dense layers with backpropagation — the
network class of the paper's refs [12][14].  Construction is by layer
sizes plus activation names, e.g. ``MLP([21, 24, 12, 4], hidden="tanh",
output="softmax", seed=7)``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.nn.activations import activation_by_name
from repro.nn.layers import DenseLayer
from repro.nn.losses import CrossEntropyLoss, Loss


class MLP:
    """Feed-forward network.

    Parameters
    ----------
    layer_sizes:
        ``[input_dim, hidden..., output_dim]`` — at least two entries.
    hidden:
        Activation name for all hidden layers.
    output:
        Activation name for the output layer (``"softmax"`` for
        classification, ``"identity"`` for regression).
    seed:
        Weight initialization seed.
    """

    def __init__(
        self,
        layer_sizes: Sequence[int],
        hidden: str = "tanh",
        output: str = "softmax",
        seed: int = 0,
    ) -> None:
        if len(layer_sizes) < 2:
            raise ValueError("need at least input and output layer sizes")
        rng = np.random.default_rng(seed)
        self.layer_sizes = list(layer_sizes)
        self.hidden_name = hidden
        self.output_name = output
        self.layers: List[DenseLayer] = []
        for i in range(len(layer_sizes) - 1):
            is_last = i == len(layer_sizes) - 2
            activation = activation_by_name(output if is_last else hidden)
            self.layers.append(
                DenseLayer(layer_sizes[i], layer_sizes[i + 1], activation, rng)
            )

    @property
    def input_dim(self) -> int:
        """Expected input feature count."""
        return self.layer_sizes[0]

    @property
    def output_dim(self) -> int:
        """Output vector size."""
        return self.layer_sizes[-1]

    # -- inference ---------------------------------------------------------------
    def forward(self, inputs: np.ndarray, train: bool = False) -> np.ndarray:
        """Run the network on a ``(batch, input_dim)`` matrix."""
        out = np.atleast_2d(np.asarray(inputs, dtype=float))
        for layer in self.layers:
            out = layer.forward(out, train=train)
        return out

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Inference-mode forward pass."""
        return self.forward(inputs, train=False)

    def classify(self, inputs: np.ndarray) -> np.ndarray:
        """Argmax class index per row."""
        return np.argmax(self.predict(inputs), axis=-1)

    # -- training ----------------------------------------------------------------
    def backward(self, grad_output: np.ndarray) -> None:
        """Backpropagate a loss gradient through all layers."""
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)

    def train_batch(
        self, inputs: np.ndarray, targets: np.ndarray, loss: Loss,
        learning_rate: float, momentum_buffers: Optional[list] = None,
        momentum: float = 0.0,
    ) -> float:
        """One forward/backward/update step; returns the batch loss."""
        predicted = self.forward(inputs, train=True)
        batch_loss = loss.value(predicted, targets)
        self.backward(loss.gradient(predicted, targets))
        if momentum_buffers is None:
            for layer in self.layers:
                layer.weights -= learning_rate * layer.grad_weights
                layer.bias -= learning_rate * layer.grad_bias
        else:
            for layer, (vel_w, vel_b) in zip(self.layers, momentum_buffers):
                vel_w *= momentum
                vel_w -= learning_rate * layer.grad_weights
                layer.weights += vel_w
                vel_b *= momentum
                vel_b -= learning_rate * layer.grad_bias
                layer.bias += vel_b
        return batch_loss

    def evaluate(self, inputs: np.ndarray, targets: np.ndarray, loss: Loss) -> float:
        """Mean loss on a dataset without updating weights."""
        return loss.value(self.predict(inputs), targets)

    def accuracy(self, inputs: np.ndarray, target_classes: np.ndarray) -> float:
        """Classification accuracy against integer class labels."""
        return float(np.mean(self.classify(inputs) == target_classes))

    # -- parameter access (weight file, GA-assisted training) ----------------------
    def get_parameters(self) -> List[np.ndarray]:
        """Flat list ``[W0, b0, W1, b1, ...]`` of parameter *copies*."""
        params: List[np.ndarray] = []
        for layer in self.layers:
            params.append(layer.weights.copy())
            params.append(layer.bias.copy())
        return params

    def set_parameters(self, params: Sequence[np.ndarray]) -> None:
        """Load parameters produced by :meth:`get_parameters`."""
        if len(params) != 2 * len(self.layers):
            raise ValueError(
                f"expected {2 * len(self.layers)} arrays, got {len(params)}"
            )
        for i, layer in enumerate(self.layers):
            weights, bias = params[2 * i], params[2 * i + 1]
            if weights.shape != layer.weights.shape or bias.shape != layer.bias.shape:
                raise ValueError(f"parameter shape mismatch at layer {i}")
            layer.weights = weights.copy()
            layer.bias = bias.copy()

    def clone_architecture(self, seed: int) -> "MLP":
        """Fresh network with the same architecture and new random weights."""
        return MLP(self.layer_sizes, self.hidden_name, self.output_name, seed=seed)


def default_classifier_loss() -> Loss:
    """The loss matching the default softmax output layer."""
    return CrossEntropyLoss()
