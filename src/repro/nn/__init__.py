"""Neural networks from scratch (numpy only).

The learning scheme of fig. 4 trains feed-forward networks to map encoded
input tests to (fuzzy-coded) trip-point classes, supervised by ATE
measurements.  This package provides the substrate, following the texts the
paper cites ([12] Patterson, [14] Masters):

* dense layers, classic activations and losses
  (:mod:`~repro.nn.layers`, :mod:`~repro.nn.activations`,
  :mod:`~repro.nn.losses`);
* a multilayer perceptron with backpropagation (:mod:`~repro.nn.mlp`);
* a minibatch SGD trainer with momentum and early stopping
  (:mod:`~repro.nn.trainer`);
* the paper's **NN voting machine**: "multiple NNs are trained on different
  subsets of the training input tests, then vote in parallel on unknown
  input tests" (:mod:`~repro.nn.ensemble`);
* the iterative "learnability and generalization check" loop
  (:mod:`~repro.nn.generalization`);
* the NN weight file produced "at the end of NN learning"
  (:mod:`~repro.nn.weights_io`).
"""

from repro.nn.activations import Identity, ReLU, Sigmoid, Softmax, Tanh
from repro.nn.ensemble import VotingEnsemble
from repro.nn.ga_training import GAWeightTrainer
from repro.nn.generalization import GeneralizationChecker, GeneralizationReport
from repro.nn.losses import CrossEntropyLoss, MSELoss
from repro.nn.mlp import MLP
from repro.nn.trainer import Trainer, TrainingHistory
from repro.nn.weights_io import load_weights, save_weights

__all__ = [
    "Identity",
    "ReLU",
    "Sigmoid",
    "Softmax",
    "Tanh",
    "VotingEnsemble",
    "GAWeightTrainer",
    "GeneralizationChecker",
    "GeneralizationReport",
    "CrossEntropyLoss",
    "MSELoss",
    "MLP",
    "Trainer",
    "TrainingHistory",
    "load_weights",
    "save_weights",
]
