"""Iterative learnability and generalization check.

Fig. 4, step 4: "NN will continue learning with iterative network
learnability and generalization check until learning and generalization
error is small enough; otherwise go back to (1)" — i.e. collect more
measured tests and retrain.

:class:`GeneralizationChecker` encodes that loop's decision logic: given the
learning curves of a (ensemble) fit it judges *learnability* (did the
training error come down at all?) and *generalization* (is the validation
error close to the training error and below threshold?), and recommends one
of ``accept`` / ``more_data`` / ``retrain``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class LearningVerdict(enum.Enum):
    """Outcome of one learnability/generalization check."""

    ACCEPT = "accept"  # errors small enough -> write the weight file
    MORE_DATA = "more_data"  # generalization gap -> "go back to (1)"
    RETRAIN = "retrain"  # did not learn -> new initialization / capacity


@dataclass(frozen=True)
class GeneralizationReport:
    """Metrics plus verdict of one check."""

    train_error: float
    val_error: float
    generalization_gap: float
    verdict: LearningVerdict

    @property
    def accepted(self) -> bool:
        """True when learning can stop."""
        return self.verdict is LearningVerdict.ACCEPT


class GeneralizationChecker:
    """Decision thresholds of the fig. 4 learning loop.

    Parameters
    ----------
    max_val_error:
        Acceptable validation (generalization) error.
    max_gap:
        Acceptable ``val - train`` error gap; a larger gap means the
        network memorized its subset and needs more measured tests.
    learnability_floor:
        If the training error itself stays above this, the run is judged
        unlearnable (bad initialization / insufficient capacity) and a
        retrain is recommended.
    """

    def __init__(
        self,
        max_val_error: float = 0.25,
        max_gap: float = 0.15,
        learnability_floor: float = 0.60,
    ) -> None:
        if max_val_error <= 0 or max_gap <= 0 or learnability_floor <= 0:
            raise ValueError("thresholds must be positive")
        self.max_val_error = max_val_error
        self.max_gap = max_gap
        self.learnability_floor = learnability_floor

    def check(self, train_error: float, val_error: float) -> GeneralizationReport:
        """Judge one fit from its final train/validation errors."""
        gap = val_error - train_error
        if train_error > self.learnability_floor:
            verdict = LearningVerdict.RETRAIN
        elif val_error <= self.max_val_error and gap <= self.max_gap:
            verdict = LearningVerdict.ACCEPT
        else:
            verdict = LearningVerdict.MORE_DATA
        return GeneralizationReport(
            train_error=train_error,
            val_error=val_error,
            generalization_gap=gap,
            verdict=verdict,
        )
