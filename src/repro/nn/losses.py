"""Training losses.

A loss exposes ``value`` (scalar, averaged over the batch) and ``gradient``
(w.r.t. the network output).  :class:`CrossEntropyLoss` is meant to sit
behind a softmax output layer and returns the combined
softmax-cross-entropy gradient ``(p - y) / batch``.
"""

from __future__ import annotations

import abc

import numpy as np

_EPS = 1e-12


class Loss(abc.ABC):
    """Base class of training losses."""

    name: str = "loss"

    @abc.abstractmethod
    def value(self, predicted: np.ndarray, target: np.ndarray) -> float:
        """Mean loss over the batch."""

    @abc.abstractmethod
    def gradient(self, predicted: np.ndarray, target: np.ndarray) -> np.ndarray:
        """Gradient of :meth:`value` w.r.t. ``predicted``."""

    @staticmethod
    def _check_shapes(predicted: np.ndarray, target: np.ndarray) -> None:
        if predicted.shape != target.shape:
            raise ValueError(
                f"prediction shape {predicted.shape} != target shape {target.shape}"
            )


class MSELoss(Loss):
    """Mean squared error (regression / fuzzy membership targets)."""

    name = "mse"

    def value(self, predicted: np.ndarray, target: np.ndarray) -> float:
        self._check_shapes(predicted, target)
        return float(np.mean((predicted - target) ** 2))

    def gradient(self, predicted: np.ndarray, target: np.ndarray) -> np.ndarray:
        self._check_shapes(predicted, target)
        return 2.0 * (predicted - target) / predicted.size


class CrossEntropyLoss(Loss):
    """Categorical cross-entropy over softmax probabilities.

    ``predicted`` must already be probabilities (the output of a softmax
    layer); ``target`` is a one-hot or soft-label distribution per row.
    The returned gradient is the combined softmax+CE gradient, matching the
    pass-through backward of :class:`~repro.nn.activations.Softmax`.
    """

    name = "cross_entropy"

    def value(self, predicted: np.ndarray, target: np.ndarray) -> float:
        self._check_shapes(predicted, target)
        clipped = np.clip(predicted, _EPS, 1.0)
        return float(-np.mean(np.sum(target * np.log(clipped), axis=-1)))

    def gradient(self, predicted: np.ndarray, target: np.ndarray) -> np.ndarray:
        self._check_shapes(predicted, target)
        return (predicted - target) / predicted.shape[0]
