"""GA-based neural network weight training (paper ref [13]).

The paper cites van Rooij/Jain/Johnson's *Neural Network Training Using
Genetic Algorithms* among its NN foundations.  :class:`GAWeightTrainer`
implements that alternative to backpropagation: the genome is the flattened
weight vector, fitness is the negative training loss, and a
tournament/blend/Gaussian-mutation GA evolves a population of networks.

Gradient-free training is slower than SGD on differentiable losses but is
occasionally the right tool on the test floor — e.g. fitting directly to a
non-differentiable figure of merit.  The A6 ablation bench compares both
trainers on the characterization dataset.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.nn.losses import Loss
from repro.nn.mlp import MLP
from repro.nn.trainer import TrainingHistory


def _flatten(params: List[np.ndarray]) -> np.ndarray:
    return np.concatenate([p.ravel() for p in params])


def _unflatten(
    genome: np.ndarray, shapes: List[Tuple[int, ...]]
) -> List[np.ndarray]:
    params = []
    offset = 0
    for shape in shapes:
        size = int(np.prod(shape))
        params.append(genome[offset : offset + size].reshape(shape))
        offset += size
    return params


class GAWeightTrainer:
    """Evolve an MLP's weights against a loss.

    Parameters
    ----------
    loss:
        Fitness is the negative of this loss on the training set.
    population_size, generations:
        GA budget.
    elite_count:
        Genomes copied unchanged into the next generation.
    tournament_k:
        Selection pressure.
    crossover_rate:
        Probability of blend crossover (vs. cloning a parent).
    mutation_sigma:
        Initial per-gene Gaussian mutation scale; decays geometrically by
        ``sigma_decay`` each generation (coarse-to-fine search).
    init_sigma:
        Spread of the initial population around the network's starting
        weights.
    seed:
        RNG seed.
    """

    def __init__(
        self,
        loss: Loss,
        population_size: int = 40,
        generations: int = 120,
        elite_count: int = 2,
        tournament_k: int = 3,
        crossover_rate: float = 0.7,
        mutation_sigma: float = 0.15,
        sigma_decay: float = 0.99,
        init_sigma: float = 0.5,
        seed: int = 0,
    ) -> None:
        if population_size < 4:
            raise ValueError("population_size must be >= 4")
        if generations < 1:
            raise ValueError("generations must be >= 1")
        if elite_count >= population_size:
            raise ValueError("elite_count must be smaller than the population")
        if not 0.0 <= crossover_rate <= 1.0:
            raise ValueError("crossover_rate must be in [0, 1]")
        self.loss = loss
        self.population_size = population_size
        self.generations = generations
        self.elite_count = elite_count
        self.tournament_k = tournament_k
        self.crossover_rate = crossover_rate
        self.mutation_sigma = mutation_sigma
        self.sigma_decay = sigma_decay
        self.init_sigma = init_sigma
        self.seed = seed

    def fit(
        self,
        network: MLP,
        train_x: np.ndarray,
        train_y: np.ndarray,
        val_x: Optional[np.ndarray] = None,
        val_y: Optional[np.ndarray] = None,
    ) -> TrainingHistory:
        """Evolve the weights in place; returns per-generation curves."""
        if len(train_x) != len(train_y):
            raise ValueError("train_x and train_y lengths differ")
        if (val_x is None) != (val_y is None):
            raise ValueError("provide both val_x and val_y or neither")

        rng = np.random.default_rng(self.seed)
        base_params = network.get_parameters()
        shapes = [p.shape for p in base_params]
        base_genome = _flatten(base_params)
        genome_size = base_genome.size

        population = [base_genome.copy()]
        for _ in range(self.population_size - 1):
            population.append(
                base_genome + rng.normal(0.0, self.init_sigma, genome_size)
            )

        def evaluate(genome: np.ndarray) -> float:
            network.set_parameters(_unflatten(genome, shapes))
            return network.evaluate(train_x, train_y, self.loss)

        losses = np.array([evaluate(g) for g in population])
        history = TrainingHistory()
        best_genome = population[int(np.argmin(losses))].copy()
        best_loss = float(losses.min())
        sigma = self.mutation_sigma

        for generation in range(self.generations):
            order = np.argsort(losses)
            next_population = [population[i].copy() for i in order[: self.elite_count]]
            while len(next_population) < self.population_size:
                a = self._tournament(population, losses, rng)
                b = self._tournament(population, losses, rng)
                if rng.random() < self.crossover_rate:
                    alpha = rng.random()
                    child = alpha * a + (1.0 - alpha) * b
                else:
                    child = a.copy()
                child += rng.normal(0.0, sigma, genome_size)
                next_population.append(child)
            population = next_population
            losses = np.array([evaluate(g) for g in population])
            sigma *= self.sigma_decay

            generation_best = float(losses.min())
            if generation_best < best_loss:
                best_loss = generation_best
                best_genome = population[int(np.argmin(losses))].copy()
            history.train_loss.append(best_loss)
            if val_x is not None:
                network.set_parameters(_unflatten(best_genome, shapes))
                history.val_loss.append(
                    network.evaluate(val_x, val_y, self.loss)
                )

        network.set_parameters(_unflatten(best_genome, shapes))
        if history.val_loss:
            history.best_epoch = int(np.argmin(history.val_loss))
        return history

    def _tournament(
        self,
        population: List[np.ndarray],
        losses: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        k = min(self.tournament_k, len(population))
        picks = rng.choice(len(population), size=k, replace=False)
        winner = picks[np.argmin(losses[picks])]
        return population[winner]
