"""Activation functions with analytic derivatives.

Each activation is a stateless callable pair: ``forward`` maps
pre-activations to activations, ``backward`` maps (upstream gradient,
forward output) to the gradient with respect to the pre-activations.
Passing the *forward output* rather than the input keeps backprop cheap for
the sigmoid family, whose derivatives are simplest in terms of the output.
"""

from __future__ import annotations

import abc

import numpy as np


class Activation(abc.ABC):
    """Base class of all activations."""

    name: str = "activation"

    @abc.abstractmethod
    def forward(self, z: np.ndarray) -> np.ndarray:
        """Apply the nonlinearity element-wise."""

    @abc.abstractmethod
    def backward(self, grad_output: np.ndarray, output: np.ndarray) -> np.ndarray:
        """Gradient w.r.t. pre-activations given upstream grad and forward output."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class Identity(Activation):
    """Linear pass-through (regression output layers)."""

    name = "identity"

    def forward(self, z: np.ndarray) -> np.ndarray:
        return z

    def backward(self, grad_output: np.ndarray, output: np.ndarray) -> np.ndarray:
        return grad_output


class Sigmoid(Activation):
    """Logistic sigmoid — the classic characterization-era MLP nonlinearity."""

    name = "sigmoid"

    def forward(self, z: np.ndarray) -> np.ndarray:
        out = np.empty_like(z, dtype=float)
        positive = z >= 0
        out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
        exp_z = np.exp(z[~positive])
        out[~positive] = exp_z / (1.0 + exp_z)
        return out

    def backward(self, grad_output: np.ndarray, output: np.ndarray) -> np.ndarray:
        return grad_output * output * (1.0 - output)


class Tanh(Activation):
    """Hyperbolic tangent."""

    name = "tanh"

    def forward(self, z: np.ndarray) -> np.ndarray:
        return np.tanh(z)

    def backward(self, grad_output: np.ndarray, output: np.ndarray) -> np.ndarray:
        return grad_output * (1.0 - output * output)


class ReLU(Activation):
    """Rectified linear unit."""

    name = "relu"

    def forward(self, z: np.ndarray) -> np.ndarray:
        return np.maximum(z, 0.0)

    def backward(self, grad_output: np.ndarray, output: np.ndarray) -> np.ndarray:
        return grad_output * (output > 0.0)


class Softmax(Activation):
    """Row-wise softmax for classification output layers.

    ``backward`` assumes the downstream loss is the categorical
    cross-entropy whose combined gradient is computed by the loss itself
    (:class:`~repro.nn.losses.CrossEntropyLoss`), so it passes the gradient
    through unchanged.  Pairing softmax with any other loss is a usage
    error and raises at loss-construction time, not here.
    """

    name = "softmax"

    def forward(self, z: np.ndarray) -> np.ndarray:
        shifted = z - np.max(z, axis=-1, keepdims=True)
        exp_z = np.exp(shifted)
        return exp_z / np.sum(exp_z, axis=-1, keepdims=True)

    def backward(self, grad_output: np.ndarray, output: np.ndarray) -> np.ndarray:
        return grad_output


_ACTIVATIONS = {
    cls.name: cls for cls in (Identity, Sigmoid, Tanh, ReLU, Softmax)
}


def activation_by_name(name: str) -> Activation:
    """Instantiate an activation from its registry name (weight-file I/O)."""
    try:
        return _ACTIVATIONS[name]()
    except KeyError as exc:
        raise ValueError(
            f"unknown activation {name!r}; known: {sorted(_ACTIVATIONS)}"
        ) from exc
