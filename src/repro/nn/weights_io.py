"""NN weight file.

"At the end of NN learning, a NN weight file is generated.  This file will
be used in classification task of worst case test based on only software
computation without measurement in optimization phase" (fig. 4, step 5).

The format is a single JSON document holding the architecture, the
activation names, every member's parameters and free-form metadata (feature
names, fuzzy class labels, training statistics), so a weight file is
self-describing and loadable years later.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

import numpy as np

from repro.nn.ensemble import VotingEnsemble
from repro.nn.mlp import MLP

FORMAT_VERSION = 1


def _mlp_to_dict(network: MLP) -> Dict[str, Any]:
    return {
        "layer_sizes": network.layer_sizes,
        "hidden": network.hidden_name,
        "output": network.output_name,
        "parameters": [p.tolist() for p in network.get_parameters()],
    }


def _mlp_from_dict(payload: Dict[str, Any]) -> MLP:
    network = MLP(
        payload["layer_sizes"], payload["hidden"], payload["output"], seed=0
    )
    network.set_parameters([np.asarray(p, dtype=float) for p in payload["parameters"]])
    return network


def save_weights(
    target: Union[MLP, VotingEnsemble],
    path: Union[str, Path],
    metadata: Optional[Dict[str, Any]] = None,
) -> None:
    """Write a network or a full voting ensemble to a weight file."""
    if isinstance(target, VotingEnsemble):
        members = target.members
        kind = "ensemble"
    else:
        members = [target]
        kind = "mlp"
    document = {
        "format_version": FORMAT_VERSION,
        "kind": kind,
        "members": [_mlp_to_dict(member) for member in members],
        "metadata": metadata or {},
    }
    Path(path).write_text(json.dumps(document))


def load_weights(path: Union[str, Path]) -> tuple:
    """Load a weight file.

    Returns ``(networks, metadata)`` where ``networks`` is a list of
    :class:`~repro.nn.mlp.MLP` (length 1 for a single-network file).
    """
    document = json.loads(Path(path).read_text())
    version = document.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported weight file version {version!r}")
    networks: List[MLP] = [
        _mlp_from_dict(member) for member in document["members"]
    ]
    if not networks:
        raise ValueError("weight file contains no networks")
    return networks, document.get("metadata", {})


def ensemble_from_weight_file(path: Union[str, Path]) -> VotingEnsemble:
    """Reconstruct a :class:`VotingEnsemble` from a saved weight file."""
    networks, _ = load_weights(path)
    ensemble = VotingEnsemble(networks[0], n_networks=len(networks))
    ensemble.members = networks
    return ensemble
