"""The NN voting machine.

Fig. 4, step 1: "To measure how confident the neural net is in its
classification, we propose to use the NN voting machine algorithm, such that
multiple NNs are trained on different subsets of the training input tests,
then vote in parallel on unknown input tests."  Step 4: "The confidence in
the classification is determined by averaging the mean error for each
network (i.e. consistency check)."

:class:`VotingEnsemble` trains ``n_networks`` copies of one architecture on
bootstrap subsets, predicts by averaging class probabilities (soft vote),
classifies by majority (hard vote), and exposes the paper's consistency
metric plus a per-sample vote-agreement confidence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.mlp import MLP
from repro.nn.trainer import Trainer, TrainingHistory
from repro.obs.runtime import OBS
from repro.obs.timing import span


@dataclass(frozen=True)
class EnsembleTrainingReport:
    """Outcome of one ensemble fit."""

    histories: Sequence[TrainingHistory]
    mean_train_loss: float
    mean_val_loss: float

    @property
    def consistency(self) -> float:
        """The paper's consistency check: average of per-network mean errors.

        Lower is more consistent/confident.  ``nan`` without validation.
        """
        return self.mean_val_loss


@dataclass(frozen=True)
class VoteIntrospection:
    """Decision-level record of one ensemble vote over a batch.

    Everything the insight layer needs to explain *why* each sample was
    classified the way it was: the raw vote tally per class, the
    disagreement entropy of that tally (bits), the fuzzy-class margin
    (soft-probability gap between the top two classes), and the fraction
    of members agreeing with the winner.

    Attributes
    ----------
    counts:
        ``(n_samples, n_classes)`` vote tallies; each row sums to the
        ensemble size.
    predicted:
        Majority class per sample (ties resolved by the soft vote, the
        same rule as :meth:`VotingEnsemble.classify`).
    probabilities:
        Soft-vote class probabilities, ``(n_samples, n_classes)``.
    entropy:
        Shannon entropy of each sample's vote tally in bits; 0 for a
        unanimous vote, ``log2(n_classes)`` at maximum disagreement.
    margin:
        Soft-probability difference between the best and runner-up class.
    agreement:
        Fraction of members voting with the majority.
    """

    counts: np.ndarray
    predicted: np.ndarray
    probabilities: np.ndarray
    entropy: np.ndarray
    margin: np.ndarray
    agreement: np.ndarray

    def __len__(self) -> int:
        return len(self.predicted)

    def votes_for(self, sample: int) -> Tuple[int, ...]:
        """The vote tally of one sample as a plain tuple (event payload)."""
        return tuple(int(v) for v in self.counts[sample])


class VotingEnsemble:
    """Bootstrap ensemble of identical-architecture MLPs.

    Parameters
    ----------
    architecture:
        Template network (never trained itself); members are fresh clones.
    n_networks:
        Ensemble size (the paper uses "multiple NNs"; 5 is the default).
    subset_fraction:
        Fraction of the training set each member sees (sampled without
        replacement, different subset per member).
    seed:
        Controls member initialization and subset sampling.
    """

    def __init__(
        self,
        architecture: MLP,
        n_networks: int = 5,
        subset_fraction: float = 0.7,
        seed: int = 0,
    ) -> None:
        if n_networks < 1:
            raise ValueError("need at least one network")
        if not 0.0 < subset_fraction <= 1.0:
            raise ValueError("subset_fraction must be in (0, 1]")
        self.n_networks = n_networks
        self.subset_fraction = subset_fraction
        self.seed = seed
        self.members: List[MLP] = [
            architecture.clone_architecture(seed=seed + 1 + i)
            for i in range(n_networks)
        ]

    @property
    def output_dim(self) -> int:
        """Class count of the ensemble."""
        return self.members[0].output_dim

    def fit(
        self,
        trainer: Trainer,
        train_x: np.ndarray,
        train_y: np.ndarray,
        val_x: Optional[np.ndarray] = None,
        val_y: Optional[np.ndarray] = None,
    ) -> EnsembleTrainingReport:
        """Train every member on its own subset of the training data."""
        rng = np.random.default_rng(self.seed)
        histories: List[TrainingHistory] = []
        subset_size = max(1, int(round(self.subset_fraction * len(train_x))))
        with span("nn.ensemble_fit"):
            for member in self.members:
                subset = rng.choice(
                    len(train_x), size=subset_size, replace=False
                )
                histories.append(
                    trainer.fit(
                        member, train_x[subset], train_y[subset], val_x, val_y
                    )
                )
        train_losses = [h.final_train_loss for h in histories]
        val_losses = [h.best_val_loss for h in histories]
        report = EnsembleTrainingReport(
            histories=tuple(histories),
            mean_train_loss=float(np.mean(train_losses)),
            mean_val_loss=float(np.mean(val_losses)),
        )
        if OBS.enabled:
            OBS.metrics.gauge("nn.ensemble.mean_train_loss").set(
                report.mean_train_loss
            )
            OBS.metrics.gauge("nn.ensemble.consistency").set(
                report.consistency
            )
        return report

    # -- voting -------------------------------------------------------------------
    def predict_proba(self, inputs: np.ndarray) -> np.ndarray:
        """Soft vote: mean class probabilities over members."""
        stacked = np.stack([member.predict(inputs) for member in self.members])
        return stacked.mean(axis=0)

    def classify(self, inputs: np.ndarray) -> np.ndarray:
        """Hard vote: majority class per sample (ties go to the soft vote)."""
        votes = np.stack([member.classify(inputs) for member in self.members])
        n_samples = votes.shape[1]
        n_classes = self.output_dim
        counts = np.zeros((n_samples, n_classes), dtype=int)
        for member_votes in votes:
            counts[np.arange(n_samples), member_votes] += 1
        winners = counts.argmax(axis=1)
        top_count = counts.max(axis=1)
        tied = (counts == top_count[:, None]).sum(axis=1) > 1
        if tied.any():
            soft = self.predict_proba(inputs).argmax(axis=1)
            winners[tied] = soft[tied]
        return winners

    def vote_agreement(self, inputs: np.ndarray) -> np.ndarray:
        """Per-sample fraction of members agreeing with the majority vote."""
        votes = np.stack([member.classify(inputs) for member in self.members])
        majority = self.classify(inputs)
        return (votes == majority[None, :]).mean(axis=0)

    def introspect(self, inputs: np.ndarray) -> VoteIntrospection:
        """Full vote breakdown for a batch (one member pass, all metrics).

        Computes the tally, winner, soft probabilities, disagreement
        entropy, fuzzy-class margin and agreement in a single stacked
        member evaluation, so the insight layer costs no extra forward
        passes beyond what :meth:`classify` already spends.
        """
        stacked = np.stack([member.predict(inputs) for member in self.members])
        probabilities = stacked.mean(axis=0)
        votes = stacked.argmax(axis=2)
        n_samples = votes.shape[1]
        n_classes = self.output_dim
        counts = np.zeros((n_samples, n_classes), dtype=int)
        for member_votes in votes:
            counts[np.arange(n_samples), member_votes] += 1
        winners = counts.argmax(axis=1)
        top_count = counts.max(axis=1)
        tied = (counts == top_count[:, None]).sum(axis=1) > 1
        if tied.any():
            winners[tied] = probabilities.argmax(axis=1)[tied]
        fractions = counts / float(self.n_networks)
        with np.errstate(divide="ignore", invalid="ignore"):
            terms = np.where(
                fractions > 0, fractions * np.log2(fractions), 0.0
            )
        entropy = -terms.sum(axis=1)
        ordered = np.sort(probabilities, axis=1)
        if n_classes >= 2:
            margin = ordered[:, -1] - ordered[:, -2]
        else:
            margin = ordered[:, -1]
        agreement = counts[np.arange(n_samples), winners] / float(
            self.n_networks
        )
        return VoteIntrospection(
            counts=counts,
            predicted=winners,
            probabilities=probabilities,
            entropy=entropy,
            margin=margin,
            agreement=agreement,
        )

    def accuracy(self, inputs: np.ndarray, target_classes: np.ndarray) -> float:
        """Majority-vote accuracy against integer labels."""
        return float(np.mean(self.classify(inputs) == target_classes))
