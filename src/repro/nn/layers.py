"""Dense (fully connected) layers.

A :class:`DenseLayer` owns its weight matrix and bias vector, caches the
values needed for backprop during ``forward``, and accumulates parameter
gradients during ``backward`` for the optimizer to consume.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.activations import Activation, Identity


class DenseLayer:
    """``y = activation(x @ W + b)``.

    Parameters
    ----------
    in_features, out_features:
        Layer geometry.
    activation:
        Nonlinearity; :class:`~repro.nn.activations.Identity` by default.
    rng:
        Initialization RNG.  Weights use scaled-uniform (Glorot) init,
        biases start at zero.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        activation: Optional[Activation] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if in_features < 1 or out_features < 1:
            raise ValueError("layer dimensions must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)
        limit = np.sqrt(6.0 / (in_features + out_features))
        self.weights = rng.uniform(-limit, limit, size=(in_features, out_features))
        self.bias = np.zeros(out_features)
        self.activation = activation if activation is not None else Identity()

        self.grad_weights = np.zeros_like(self.weights)
        self.grad_bias = np.zeros_like(self.bias)
        self._cached_input: Optional[np.ndarray] = None
        self._cached_output: Optional[np.ndarray] = None

    @property
    def in_features(self) -> int:
        """Input dimension."""
        return self.weights.shape[0]

    @property
    def out_features(self) -> int:
        """Output dimension."""
        return self.weights.shape[1]

    def forward(self, inputs: np.ndarray, train: bool = False) -> np.ndarray:
        """Compute the layer output for a ``(batch, in_features)`` input.

        With ``train=True`` the input and output are cached for the
        subsequent :meth:`backward`.
        """
        if inputs.ndim != 2 or inputs.shape[1] != self.in_features:
            raise ValueError(
                f"expected input of shape (batch, {self.in_features}), "
                f"got {inputs.shape}"
            )
        pre_activation = inputs @ self.weights + self.bias
        output = self.activation.forward(pre_activation)
        if train:
            self._cached_input = inputs
            self._cached_output = output
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate; accumulates parameter grads, returns input grad."""
        if self._cached_input is None or self._cached_output is None:
            raise RuntimeError("backward called before forward(train=True)")
        grad_pre = self.activation.backward(grad_output, self._cached_output)
        self.grad_weights = self._cached_input.T @ grad_pre
        self.grad_bias = grad_pre.sum(axis=0)
        return grad_pre @ self.weights.T

    def zero_grad(self) -> None:
        """Clear accumulated gradients."""
        self.grad_weights.fill(0.0)
        self.grad_bias.fill(0.0)
