"""Minibatch SGD trainer with momentum and early stopping.

The fig. 4 scheme keeps training "until learning and generalization error is
small enough"; the :class:`Trainer` provides the inner loop — epochs of
shuffled minibatches, a held-out validation score per epoch, patience-based
early stopping and restoration of the best weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.nn.losses import Loss
from repro.nn.mlp import MLP
from repro.obs.events import NNEpoch
from repro.obs.runtime import OBS


@dataclass
class TrainingHistory:
    """Per-epoch learning curves."""

    train_loss: List[float] = field(default_factory=list)
    val_loss: List[float] = field(default_factory=list)
    best_epoch: int = -1
    stopped_early: bool = False

    @property
    def epochs_run(self) -> int:
        """Number of completed epochs."""
        return len(self.train_loss)

    @property
    def final_train_loss(self) -> float:
        """Last recorded training loss (``nan`` before training)."""
        return self.train_loss[-1] if self.train_loss else float("nan")

    @property
    def best_val_loss(self) -> float:
        """Best validation loss seen (``nan`` without validation data)."""
        return min(self.val_loss) if self.val_loss else float("nan")


class Trainer:
    """SGD-with-momentum trainer.

    Parameters
    ----------
    loss:
        Training loss (must match the network's output activation).
    learning_rate, momentum:
        Optimizer hyperparameters.
    batch_size:
        Minibatch size.
    max_epochs:
        Epoch budget.
    patience:
        Early stopping: stop after this many epochs without validation
        improvement (ignored when no validation set is given).
    seed:
        Shuffling seed.
    """

    def __init__(
        self,
        loss: Loss,
        learning_rate: float = 0.05,
        momentum: float = 0.9,
        batch_size: int = 32,
        max_epochs: int = 200,
        patience: int = 20,
        seed: int = 0,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if batch_size < 1 or max_epochs < 1 or patience < 1:
            raise ValueError("batch_size, max_epochs and patience must be >= 1")
        self.loss = loss
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.batch_size = batch_size
        self.max_epochs = max_epochs
        self.patience = patience
        self.seed = seed

    def fit(
        self,
        network: MLP,
        train_x: np.ndarray,
        train_y: np.ndarray,
        val_x: Optional[np.ndarray] = None,
        val_y: Optional[np.ndarray] = None,
    ) -> TrainingHistory:
        """Train ``network`` in place; returns the learning curves.

        When validation data is supplied, the network is left holding the
        weights of its best validation epoch.
        """
        if len(train_x) != len(train_y):
            raise ValueError("train_x and train_y lengths differ")
        if (val_x is None) != (val_y is None):
            raise ValueError("provide both val_x and val_y or neither")

        rng = np.random.default_rng(self.seed)
        history = TrainingHistory()
        momentum_buffers = [
            (np.zeros_like(layer.weights), np.zeros_like(layer.bias))
            for layer in network.layers
        ]
        best_val = float("inf")
        best_params = None
        epochs_since_best = 0

        for epoch in range(self.max_epochs):
            order = rng.permutation(len(train_x))
            epoch_losses = []
            for start in range(0, len(order), self.batch_size):
                batch = order[start : start + self.batch_size]
                epoch_losses.append(
                    network.train_batch(
                        train_x[batch],
                        train_y[batch],
                        self.loss,
                        self.learning_rate,
                        momentum_buffers,
                        self.momentum,
                    )
                )
            train_loss = float(np.mean(epoch_losses))
            history.train_loss.append(train_loss)

            val_loss: Optional[float] = None
            if val_x is not None:
                val_loss = network.evaluate(val_x, val_y, self.loss)
                history.val_loss.append(val_loss)

            if OBS.enabled:
                OBS.metrics.counter("nn.epochs").inc()
                OBS.metrics.histogram("nn.epoch_loss").observe(train_loss)
                OBS.bus.emit(
                    NNEpoch(
                        epoch=epoch, train_loss=train_loss, val_loss=val_loss
                    )
                )

            if val_loss is not None:
                if val_loss < best_val - 1e-9:
                    best_val = val_loss
                    best_params = network.get_parameters()
                    history.best_epoch = epoch
                    epochs_since_best = 0
                else:
                    epochs_since_best += 1
                    if epochs_since_best >= self.patience:
                        history.stopped_early = True
                        break

        if best_params is not None:
            network.set_parameters(best_params)
        return history
