"""The tester itself: the single gateway between algorithms and silicon.

:class:`ATE` owns the device under test plus the tester resources (timing
generator, pattern memory, measurement electronics, datalog) and exposes the
one operation everything else is built from:

    ``apply(test, strobe_ns) -> bool``

which loads the pattern, programs the output strobe, runs the pattern at the
test's operating point and returns the pass/fail decision — charging one
measurement to the budget.  Trip-point searches, shmoo sweeps, NN supervision
and GA fitness evaluation all reduce to sequences of ``apply`` calls, exactly
as on the industrial testers of refs [1-7].
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ate.datalog import Datalog, DatalogRecord
from repro.ate.measurement import MeasurementModel
from repro.ate.pattern_memory import PatternMemory
from repro.ate.timing_generator import TimingGenerator
from repro.device.memory_chip import FunctionalResult, MemoryTestChip
from repro.device.parameters import SpecDirection
from repro.obs.events import MeasurementEvent
from repro.obs.runtime import OBS
from repro.patterns.testcase import TestCase


class ATE:
    """Automatic test equipment driving one :class:`MemoryTestChip`.

    Parameters
    ----------
    chip:
        The device under test.
    timing_generator:
        Strobe edge source (quantization + programmable range); a
        default-configured one is created when omitted.
    measurement:
        Compare-electronics noise model; a default 40 ps-sigma model is
        created when omitted.
    datalog:
        Measurement log; created when omitted.
    pattern_memory:
        Vector memory with load-cost accounting; created when omitted.
    """

    def __init__(
        self,
        chip: MemoryTestChip,
        timing_generator: Optional[TimingGenerator] = None,
        measurement: Optional[MeasurementModel] = None,
        datalog: Optional[Datalog] = None,
        pattern_memory: Optional[PatternMemory] = None,
    ) -> None:
        self.chip = chip
        self.timing_generator = (
            timing_generator if timing_generator is not None else TimingGenerator()
        )
        self.measurement = measurement if measurement is not None else MeasurementModel()
        self.datalog = datalog if datalog is not None else Datalog()
        self.pattern_memory = (
            pattern_memory if pattern_memory is not None else PatternMemory()
        )
        self._measurement_count = 0
        self._functional_count = 0
        self._executed_cycles = 0

    # -- cost accounting -------------------------------------------------------
    @property
    def measurement_count(self) -> int:
        """Pattern applications with a strobed parametric decision so far."""
        return self._measurement_count

    @property
    def functional_count(self) -> int:
        """Plain functional applications (no strobe sweep) so far."""
        return self._functional_count

    @property
    def executed_cycles_total(self) -> int:
        """Vector cycles actually run on the device so far."""
        return self._executed_cycles

    def reset_counters(self) -> None:
        """Zero the cost counters (start of a comparative experiment)."""
        self._measurement_count = 0
        self._functional_count = 0
        self._executed_cycles = 0

    def new_insertion(self, noise_seed: int = 0) -> None:
        """Simulate removing and re-inserting the device.

        Cools the die, clears the array, restarts the measurement-noise
        stream.  Counters and datalog are preserved — they belong to the
        characterization session, not the insertion.
        """
        self.chip.reset_state()
        self.measurement.reseed(noise_seed)

    # -- the one true operation ---------------------------------------------------
    def apply(self, test: TestCase, strobe_ns: float) -> bool:
        """Apply ``test`` with the compare level at ``strobe_ns``; pass/fail.

        For a min-limited AC parameter (``T_DQ``) the level is an output
        strobe: the device passes while the strobe still falls inside the
        valid window (``strobe <= value``).  For a max-limited parameter
        (peak supply current) the level is a PMU clamp: the device passes
        while its draw stays below the clamp (``value <= level``).  Either
        way the request is quantized to the tester grid, and a functional
        failure of the pattern fails the measurement regardless of level,
        mirroring a real compare-on-the-fly tester.
        """
        strobe_q = self.timing_generator.quantize(strobe_ns)
        self.pattern_memory.load(test.sequence)

        functional = self.chip.run_functional(test.sequence)
        if functional.passed:
            true_value = self.chip.true_parameter_value(test)
            observed = self.measurement.observed_value(true_value)
            if self.chip.parameter.direction is SpecDirection.MIN_IS_WORST:
                passed = strobe_q <= observed
            else:
                passed = observed <= strobe_q
        else:
            passed = False

        self._measurement_count += 1
        self._executed_cycles += len(test.sequence)
        test_name = test.name or test.sequence.name or "unnamed"
        self.datalog.append(
            DatalogRecord(
                index=self._measurement_count,
                test_name=test_name,
                vdd=test.condition.vdd,
                temperature=test.condition.temperature,
                clock_period=test.condition.clock_period,
                strobe_ns=strobe_q,
                passed=passed,
            )
        )
        if OBS.enabled:
            OBS.metrics.counter("ate.measurements").inc(label=test_name)
            OBS.metrics.counter("ate.executed_cycles").inc(len(test.sequence))
            OBS.bus.emit(
                MeasurementEvent(
                    index=self._measurement_count,
                    test_name=test_name,
                    strobe_ns=strobe_q,
                    passed=passed,
                )
            )
        return passed

    def apply_batch(self, test: TestCase, strobes_ns) -> np.ndarray:
        """Apply ``test`` once per strobe level; vectorized pass/fail.

        Element ``k`` of the result is bit-identical to the ``k``-th of
        ``len(strobes_ns)`` sequential :meth:`apply` calls with the same
        levels: quantization, self-heating drift, the measurement-noise
        stream, counters, and datalog records all advance exactly as the
        scalar loop's would (see ``docs/performance.md`` for the contract).
        The pattern is loaded and functionally evaluated once per batch —
        the amortization that makes grid sweeps cheap — and a functional
        failure fails every element without consuming noise draws, just
        like the scalar early-out.
        """
        strobes = np.asarray(strobes_ns, dtype=float)
        if strobes.ndim != 1:
            raise ValueError("strobes must be a one-dimensional batch")
        n = strobes.size
        if n == 0:
            return np.zeros(0, dtype=bool)
        strobes_q = self.timing_generator.quantize_many(strobes)
        self.pattern_memory.load(test.sequence)

        functional = self.chip.run_functional(test.sequence)
        if functional.passed:
            true_values = self.chip.true_parameter_values(test, n)
            observed = self.measurement.observed_values(true_values)
            if self.chip.parameter.direction is SpecDirection.MIN_IS_WORST:
                passed = strobes_q <= observed
            else:
                passed = observed <= strobes_q
        else:
            passed = np.zeros(n, dtype=bool)

        base_index = self._measurement_count
        self._measurement_count += n
        self._executed_cycles += len(test.sequence) * n
        test_name = test.name or test.sequence.name or "unnamed"
        # Bulk-convert once: per-element float(strobes_q[k]) / bool(passed[k])
        # indexing costs more than the record construction itself.
        strobe_list = strobes_q.tolist()
        passed_list = passed.tolist()
        condition = test.condition
        self.datalog.extend(
            DatalogRecord(
                index=base_index + k,
                test_name=test_name,
                vdd=condition.vdd,
                temperature=condition.temperature,
                clock_period=condition.clock_period,
                strobe_ns=strobe,
                passed=ok,
            )
            for k, (strobe, ok) in enumerate(
                zip(strobe_list, passed_list), start=1
            )
        )
        if OBS.enabled:
            OBS.metrics.counter("ate.measurements").inc(n, label=test_name)
            OBS.metrics.counter("ate.executed_cycles").inc(len(test.sequence) * n)
            for k, (strobe, ok) in enumerate(
                zip(strobe_list, passed_list), start=1
            ):
                OBS.bus.emit(
                    MeasurementEvent(
                        index=base_index + k,
                        test_name=test_name,
                        strobe_ns=strobe,
                        passed=ok,
                    )
                )
        return passed

    def functional_test(self, test: TestCase) -> FunctionalResult:
        """Run ``test`` functionally (production-style go/no-go, no strobe)."""
        self.pattern_memory.load(test.sequence)
        self._functional_count += 1
        self._executed_cycles += len(test.sequence)
        if OBS.enabled:
            OBS.metrics.counter("ate.functional_tests").inc()
            OBS.metrics.counter("ate.executed_cycles").inc(len(test.sequence))
        return self.chip.run_functional(test.sequence)
