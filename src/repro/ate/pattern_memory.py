"""Tester pattern memory with load-cost accounting.

Loading a pattern into tester vector memory is not free on real ATE; a
characterization loop that swaps patterns every measurement pays for it.
:class:`PatternMemory` models a finite vector memory with LRU eviction and
counts both loads and the vector-cycles transferred, so benchmarks can report
the full cost picture (measurements *and* pattern traffic).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.patterns.vectors import VectorSequence


class PatternMemory:
    """Finite LRU vector memory.

    Parameters
    ----------
    capacity_cycles:
        Total vector cycles the memory can hold.  The default comfortably
        holds many paper-sized (100-1000 cycle) sequences, so eviction only
        matters for stress tests.
    """

    def __init__(self, capacity_cycles: int = 65536) -> None:
        if capacity_cycles < 1:
            raise ValueError("capacity must be positive")
        self.capacity_cycles = capacity_cycles
        self._resident: "OrderedDict[int, VectorSequence]" = OrderedDict()
        self._used_cycles = 0
        self.load_count = 0
        self.loaded_cycles_total = 0
        self.hit_count = 0

    @property
    def used_cycles(self) -> int:
        """Vector cycles currently resident."""
        return self._used_cycles

    @property
    def resident_count(self) -> int:
        """Number of resident sequences."""
        return len(self._resident)

    def is_resident(self, sequence: VectorSequence) -> bool:
        """True if the sequence is already loaded."""
        entry = self._resident.get(id(sequence))
        return entry is sequence

    def load(self, sequence: VectorSequence) -> bool:
        """Ensure ``sequence`` is resident.

        Returns True when a (costed) load was performed, False on a hit.

        Raises
        ------
        ValueError
            If the sequence alone exceeds the memory capacity.
        """
        if len(sequence) > self.capacity_cycles:
            raise ValueError(
                f"sequence of {len(sequence)} cycles exceeds pattern memory "
                f"capacity of {self.capacity_cycles}"
            )
        key = id(sequence)
        if self._resident.get(key) is sequence:
            self._resident.move_to_end(key)
            self.hit_count += 1
            return False
        while self._used_cycles + len(sequence) > self.capacity_cycles:
            _, evicted = self._resident.popitem(last=False)
            self._used_cycles -= len(evicted)
        self._resident[key] = sequence
        self._used_cycles += len(sequence)
        self.load_count += 1
        self.loaded_cycles_total += len(sequence)
        return True

    def clear(self) -> None:
        """Flush the memory (does not reset the cost counters)."""
        self._resident.clear()
        self._used_cycles = 0
