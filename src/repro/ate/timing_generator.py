"""Tester timing generator: programmable strobe edges with finite resolution.

A real tester places timing edges on a quantized grid; the paper's linear
search "steps through a specified resolution", and all searches ultimately
bottom out at the tester's edge-placement resolution.  The
:class:`TimingGenerator` models the programmable range and the quantization.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class TimingGenerator:
    """Programmable timing edge source.

    Attributes
    ----------
    resolution_ns:
        Edge placement grid (typical mid-2000s testers: tens of ps; we use
        0.05 ns by default).
    min_edge_ns, max_edge_ns:
        Programmable edge range.
    """

    resolution_ns: float = 0.05
    min_edge_ns: float = 0.0
    max_edge_ns: float = 200.0

    def __post_init__(self) -> None:
        if self.resolution_ns <= 0:
            raise ValueError("resolution must be positive")
        if self.min_edge_ns >= self.max_edge_ns:
            raise ValueError("edge range must satisfy min < max")

    def quantize(self, edge_ns: float) -> float:
        """Snap an edge request to the placement grid, clamped to range."""
        clamped = float(np.clip(edge_ns, self.min_edge_ns, self.max_edge_ns))
        steps = round(clamped / self.resolution_ns)
        return float(steps * self.resolution_ns)

    def quantize_many(self, edges_ns) -> np.ndarray:
        """Vectorized :meth:`quantize`; element-for-element identical.

        ``np.rint`` rounds half to even, matching Python's ``round`` in the
        scalar path, so each element is bit-identical to a scalar
        ``quantize`` of the same request.
        """
        clamped = np.clip(
            np.asarray(edges_ns, dtype=float), self.min_edge_ns, self.max_edge_ns
        )
        steps = np.rint(clamped / self.resolution_ns)
        return steps * self.resolution_ns

    def is_programmable(self, edge_ns: float) -> bool:
        """True if the request lies inside the programmable range."""
        return self.min_edge_ns <= edge_ns <= self.max_edge_ns

    def grid(self, start_ns: float, stop_ns: float) -> np.ndarray:
        """All programmable edges in ``[start, stop]`` (shmoo sweep axis)."""
        start_q = self.quantize(start_ns)
        stop_q = self.quantize(stop_ns)
        if stop_q < start_q:
            raise ValueError("stop must not precede start")
        count = int(round((stop_q - start_q) / self.resolution_ns)) + 1
        return start_q + np.arange(count) * self.resolution_ns
