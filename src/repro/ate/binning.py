"""Device binning.

Section 1 distinguishes production verification ("stops testing on first
fail, bins the device and goes on to the next device") from engineering
characterization.  The binning policy here provides that production face:
a go/no-go functional screen plus a parametric guard-band check, mapping
each device/test outcome to a hard bin.  It is also reused to sanity-check
that worst-case tests found by the CI flow would indeed escape a
conventional production screen (they pass bin-1 at the loose production
strobe while violating the true spec margin).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.ate.tester import ATE
from repro.patterns.testcase import TestCase


class Bin(enum.IntEnum):
    """Hard bins (1 is good, higher is worse, following test-floor custom)."""

    PASS = 1
    PARAMETRIC_FAIL = 2
    FUNCTIONAL_FAIL = 3


@dataclass(frozen=True)
class BinningPolicy:
    """Production screen: one strobe point, first-fail semantics.

    Attributes
    ----------
    production_strobe_ns:
        The single strobe at which production verifies the parameter —
        typically the spec limit plus a guard band.
    """

    production_strobe_ns: float

    def bin_device(self, ate: ATE, tests: Sequence[TestCase]) -> Tuple[Bin, int]:
        """Screen a device with a test list, stopping on first fail.

        Returns the assigned bin and the number of tests actually applied
        (production "stops testing on first fail").
        """
        applied = 0
        for test in tests:
            applied += 1
            functional = ate.functional_test(test)
            if not functional.passed:
                return Bin.FUNCTIONAL_FAIL, applied
            if not ate.apply(test, self.production_strobe_ns):
                return Bin.PARAMETRIC_FAIL, applied
        return Bin.PASS, applied


def production_binning(spec_limit_ns: float, guard_band_ns: float = 0.5) -> BinningPolicy:
    """Standard policy: strobe at the spec limit minus a guard band.

    For a min-limited parameter like ``T_DQ`` the production strobe sits
    *below* the spec limit so that marginal devices still bin good — which
    is precisely how single-point production screens miss test-dependent
    worst cases (the paper's motivation).
    """
    if guard_band_ns < 0:
        raise ValueError("guard band must be non-negative")
    return BinningPolicy(production_strobe_ns=spec_limit_ns - guard_band_ns)
