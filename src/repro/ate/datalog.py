"""Characterization datalog.

Records every measurement the tester performs — test name, operating point,
programmed strobe, pass/fail — in application order.  The datalog is the raw
material of the shmoo tool and of post-hoc analyses, and its length is the
measurement-count metric SUTP minimizes.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence


@dataclass(frozen=True)
class DatalogRecord:
    """One measurement event."""

    index: int
    test_name: str
    vdd: float
    temperature: float
    clock_period: float
    strobe_ns: float
    passed: bool

    CSV_HEADER = "index,test_name,vdd,temperature,clock_period,strobe_ns,passed"

    def to_csv_row(self) -> str:
        """Comma-separated rendering matching :attr:`CSV_HEADER`."""
        return (
            f"{self.index},{self.test_name},{self.vdd:.4f},"
            f"{self.temperature:.2f},{self.clock_period:.2f},"
            f"{self.strobe_ns:.4f},{int(self.passed)}"
        )


class Datalog:
    """Append-only measurement log with simple query helpers."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        self._records: List[DatalogRecord] = []
        self.capacity = capacity

    def append(self, record: DatalogRecord) -> None:
        """Store one record; drops the oldest when over capacity."""
        self._records.append(record)
        if self.capacity is not None and len(self._records) > self.capacity:
            del self._records[0]

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[DatalogRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> DatalogRecord:
        return self._records[index]

    def filter(
        self, predicate: Callable[[DatalogRecord], bool]
    ) -> List[DatalogRecord]:
        """All records satisfying ``predicate``, in order."""
        return [record for record in self._records if predicate(record)]

    def for_test(self, test_name: str) -> List[DatalogRecord]:
        """All records of one test."""
        return self.filter(lambda r: r.test_name == test_name)

    def pass_count(self) -> int:
        """Number of passing measurements."""
        return sum(1 for r in self._records if r.passed)

    def fail_count(self) -> int:
        """Number of failing measurements."""
        return len(self._records) - self.pass_count()

    def to_csv(self) -> str:
        """Full CSV dump (header + rows)."""
        buffer = io.StringIO()
        buffer.write(DatalogRecord.CSV_HEADER + "\n")
        for record in self._records:
            buffer.write(record.to_csv_row() + "\n")
        return buffer.getvalue()

    def clear(self) -> None:
        """Discard all records."""
        self._records.clear()

    @classmethod
    def from_csv(cls, text: str) -> "Datalog":
        """Parse a :meth:`to_csv` dump back into a datalog.

        Raises
        ------
        ValueError
            On a missing/mismatched header or malformed row.
        """
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines or lines[0] != DatalogRecord.CSV_HEADER:
            raise ValueError("not a datalog CSV (header mismatch)")
        log = cls()
        for line_number, line in enumerate(lines[1:], start=2):
            parts = line.split(",")
            if len(parts) != 7:
                raise ValueError(f"line {line_number}: expected 7 fields")
            try:
                log.append(
                    DatalogRecord(
                        index=int(parts[0]),
                        test_name=parts[1],
                        vdd=float(parts[2]),
                        temperature=float(parts[3]),
                        clock_period=float(parts[4]),
                        strobe_ns=float(parts[5]),
                        passed=bool(int(parts[6])),
                    )
                )
            except ValueError as exc:
                raise ValueError(f"line {line_number}: {exc}") from exc
        return log
