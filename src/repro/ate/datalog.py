"""Characterization datalog.

Records every measurement the tester performs — test name, operating point,
programmed strobe, pass/fail — in application order.  The datalog is the raw
material of the shmoo tool and of post-hoc analyses, and its length is the
measurement-count metric SUTP minimizes.
"""

from __future__ import annotations

import collections
import io
from dataclasses import dataclass
from typing import Callable, Deque, Iterable, Iterator, List, Optional, Union


def _quote_name(name: str) -> str:
    """CSV-quote a test name when it needs it (commas or quotes).

    Newlines are rejected outright: a datalog row is one physical line and
    :meth:`Datalog.from_csv` parses line by line.
    """
    if "\n" in name or "\r" in name:
        raise ValueError(f"test name may not contain newlines: {name!r}")
    if "," in name or '"' in name:
        return '"' + name.replace('"', '""') + '"'
    return name


def _split_row(line: str) -> List[str]:
    """Split one CSV row honoring double-quoted fields.

    Raises
    ------
    ValueError
        On an unbalanced quote.
    """
    fields: List[str] = []
    current: List[str] = []
    in_quotes = False
    i = 0
    while i < len(line):
        ch = line[i]
        if in_quotes:
            if ch == '"':
                if i + 1 < len(line) and line[i + 1] == '"':
                    current.append('"')
                    i += 1
                else:
                    in_quotes = False
            else:
                current.append(ch)
        elif ch == '"':
            in_quotes = True
        elif ch == ",":
            fields.append("".join(current))
            current = []
        else:
            current.append(ch)
        i += 1
    if in_quotes:
        raise ValueError("unbalanced quote")
    fields.append("".join(current))
    return fields


@dataclass(frozen=True)
class DatalogRecord:
    """One measurement event."""

    index: int
    test_name: str
    vdd: float
    temperature: float
    clock_period: float
    strobe_ns: float
    passed: bool

    CSV_HEADER = "index,test_name,vdd,temperature,clock_period,strobe_ns,passed"

    def to_csv_row(self) -> str:
        """Comma-separated rendering matching :attr:`CSV_HEADER`.

        The test name is CSV-quoted when it contains commas or quotes, so
        :meth:`Datalog.from_csv` round-trips any printable name.
        """
        return (
            f"{self.index},{_quote_name(self.test_name)},{self.vdd:.4f},"
            f"{self.temperature:.2f},{self.clock_period:.2f},"
            f"{self.strobe_ns:.4f},{int(self.passed)}"
        )


class Datalog:
    """Append-only measurement log with simple query helpers.

    ``capacity`` bounds the log: the oldest record is evicted when full.
    The backing store is a :class:`collections.deque`, so eviction is O(1)
    even for very long characterization sessions.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 (or None for unbounded)")
        self._records: Deque[DatalogRecord] = collections.deque(maxlen=capacity)

    @property
    def capacity(self) -> Optional[int]:
        """Maximum record count (``None`` = unbounded)."""
        return self._records.maxlen

    def append(self, record: DatalogRecord) -> None:
        """Store one record; drops the oldest when over capacity."""
        self._records.append(record)

    def extend(self, records: Iterable[DatalogRecord]) -> None:
        """Store a batch of records in order; evicts like :meth:`append`."""
        self._records.extend(records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[DatalogRecord]:
        return iter(self._records)

    def __getitem__(
        self, index: Union[int, slice]
    ) -> Union[DatalogRecord, List[DatalogRecord]]:
        if isinstance(index, slice):
            return list(self._records)[index]
        return self._records[index]

    def filter(
        self, predicate: Callable[[DatalogRecord], bool]
    ) -> List[DatalogRecord]:
        """All records satisfying ``predicate``, in order."""
        return [record for record in self._records if predicate(record)]

    def for_test(self, test_name: str) -> List[DatalogRecord]:
        """All records of one test."""
        return self.filter(lambda r: r.test_name == test_name)

    def pass_count(self) -> int:
        """Number of passing measurements."""
        return sum(1 for r in self._records if r.passed)

    def fail_count(self) -> int:
        """Number of failing measurements."""
        return len(self._records) - self.pass_count()

    def to_csv(self) -> str:
        """Full CSV dump (header + rows)."""
        buffer = io.StringIO()
        buffer.write(DatalogRecord.CSV_HEADER + "\n")
        for record in self._records:
            buffer.write(record.to_csv_row() + "\n")
        return buffer.getvalue()

    def clear(self) -> None:
        """Discard all records."""
        self._records.clear()

    @classmethod
    def from_csv(cls, text: str) -> "Datalog":
        """Parse a :meth:`to_csv` dump back into a datalog.

        Raises
        ------
        ValueError
            On a missing/mismatched header or malformed row; the message
            carries the offending 1-based line number.
        """
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines or lines[0] != DatalogRecord.CSV_HEADER:
            raise ValueError("not a datalog CSV (header mismatch)")
        log = cls()
        for line_number, line in enumerate(lines[1:], start=2):
            try:
                parts = _split_row(line)
            except ValueError as exc:
                raise ValueError(f"line {line_number}: {exc}") from exc
            if len(parts) != 7:
                raise ValueError(
                    f"line {line_number}: expected 7 fields, got {len(parts)}"
                )
            try:
                log.append(
                    DatalogRecord(
                        index=int(parts[0]),
                        test_name=parts[1],
                        vdd=float(parts[2]),
                        temperature=float(parts[3]),
                        clock_period=float(parts[4]),
                        strobe_ns=float(parts[5]),
                        passed=bool(int(parts[6])),
                    )
                )
            except ValueError as exc:
                raise ValueError(f"line {line_number}: {exc}") from exc
        return log
