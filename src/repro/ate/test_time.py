"""Tester-time estimation.

The paper's economics are stated in *measurement time* ("huge savings of
measurement time", "keeping the test time as low as possible").  The
simulator counts measurements, executed cycles and pattern loads; this
model converts those counters into wall-clock tester seconds so cost
comparisons can be reported in the paper's own currency.

Model (per session)::

    time = measurements * setup_overhead
         + executed_cycles * cycle_period
         + loaded_cycles * load_time_per_cycle
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ate.tester import ATE


@dataclass(frozen=True)
class TestTimeModel:
    """Tester timing constants (mid-2000s memory tester class).

    Attributes
    ----------
    setup_overhead_s:
        Per-measurement overhead: level/timing setup, PE settling, result
        collection.
    cycle_period_s:
        Tester cycle period during pattern execution (40 ns default,
        matching the nominal test condition).
    load_time_per_cycle_s:
        Vector-memory transfer time per cycle loaded.
    """

    setup_overhead_s: float = 1.0e-3
    cycle_period_s: float = 40.0e-9
    load_time_per_cycle_s: float = 2.0e-6

    def __post_init__(self) -> None:
        if min(
            self.setup_overhead_s,
            self.cycle_period_s,
            self.load_time_per_cycle_s,
        ) < 0:
            raise ValueError("time constants must be non-negative")

    def measurement_time_s(self, ate: ATE) -> float:
        """Time spent applying patterns and collecting results."""
        applications = ate.measurement_count + ate.functional_count
        return (
            applications * self.setup_overhead_s
            + ate.executed_cycles_total * self.cycle_period_s
        )

    def load_time_s(self, ate: ATE) -> float:
        """Time spent transferring vectors into pattern memory."""
        return (
            ate.pattern_memory.loaded_cycles_total * self.load_time_per_cycle_s
        )

    def session_time_s(self, ate: ATE) -> float:
        """Total estimated tester time of the session so far."""
        return self.measurement_time_s(ate) + self.load_time_s(ate)

    def describe(self, ate: ATE) -> str:
        """One-line cost summary for reports."""
        return (
            f"{ate.measurement_count} measurements, "
            f"{ate.executed_cycles_total} cycles, "
            f"{ate.pattern_memory.load_count} pattern loads -> "
            f"~{self.session_time_s(ate):.3f} s tester time"
        )
