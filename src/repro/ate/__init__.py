"""Industrial ATE simulator.

Reproduces the observable interface of the testers in the paper's refs
[1-7]: load a pattern, program a timing edge, apply the pattern at an
operating point and read back a pass/fail decision — plus the engineering
tools built on top (shmoo plots, datalogging, binning).

Everything the characterization algorithms learn about the device flows
through :class:`~repro.ate.tester.ATE.apply`, which adds realistic
measurement noise and quantizes timing edges to the tester resolution, and
charges every application to a measurement budget — the cost metric the
paper's SUTP algorithm exists to minimize.
"""

from repro.ate.binning import Bin, BinningPolicy, production_binning
from repro.ate.datalog import Datalog, DatalogRecord
from repro.ate.measurement import MeasurementModel
from repro.ate.pattern_memory import PatternMemory
from repro.ate.shmoo import ShmooPlot, ShmooPlotter
from repro.ate.test_time import TestTimeModel
from repro.ate.tester import ATE
from repro.ate.timing_generator import TimingGenerator

__all__ = [
    "Bin",
    "BinningPolicy",
    "production_binning",
    "Datalog",
    "DatalogRecord",
    "MeasurementModel",
    "PatternMemory",
    "ShmooPlot",
    "ShmooPlotter",
    "ATE",
    "TestTimeModel",
    "TimingGenerator",
]
