"""Shmoo plot tool.

Reproduces the fig. 8 instrument: "The shmoo plot shows Vdd power supply in
Y-axis, and T_DQ timing parameters in X-axis.  There are 1000 tests
overlapping in a single shmoo plot, so that we can compare the differences
between them."

Two modes are offered:

* :meth:`ShmooPlotter.sweep` — the classic exhaustive grid shmoo of one
  test (every (Vdd, strobe) cell measured);
* :meth:`ShmooPlotter.overlay` — the paper's 1000-test overlay: per test
  and per Vdd row only the pass/fail *boundary* is located (binary search),
  and the plot renders how many tests still pass in each cell.  This keeps
  the measurement count tractable exactly the way a characterization
  engineer would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.ate.measurement import MeasurementModel
from repro.ate.tester import ATE
from repro.device.memory_chip import MemoryTestChip
from repro.device.parameters import DeviceParameter
from repro.device.process import ProcessInstance
from repro.farm.workunit import UnitOutcome, WorkUnit, derive_seed
from repro.patterns.testcase import TestCase
from repro.search.base import PassRegion
from repro.search.binary import BinarySearch
from repro.search.oracles import make_ate_oracle

#: Density ramp used to render overlay cells (fraction of tests passing).
_DENSITY_CHARS = " .:-=+*#%@"

#: Work-unit kind for one test's rows of an overlaid shmoo.
SHMOO_TEST_UNIT = "shmoo_test"


@dataclass(frozen=True)
class ShmooPlot:
    """A rendered shmoo: axes plus a pass-count matrix.

    ``counts[i, j]`` is the number of tests passing at ``vdd_values[i]`` /
    ``strobe_values[j]``; ``total_tests`` normalizes it.  For a single-test
    sweep the counts are 0/1.
    """

    vdd_values: np.ndarray
    strobe_values: np.ndarray
    counts: np.ndarray
    total_tests: int
    boundaries: Tuple[Tuple[str, Tuple[Optional[float], ...]], ...] = ()

    def __post_init__(self) -> None:
        expected = (len(self.vdd_values), len(self.strobe_values))
        if self.counts.shape != expected:
            raise ValueError(
                f"counts shape {self.counts.shape} != axes shape {expected}"
            )

    def pass_fraction(self, vdd_index: int, strobe_index: int) -> float:
        """Fraction of tests passing in one cell."""
        return float(self.counts[vdd_index, strobe_index]) / self.total_tests

    def boundary_spread_ns(self, vdd: float) -> Optional[float]:
        """Trip-point spread (max - min) across tests at the given Vdd row.

        This is the paper's "worst case trip point variation" made visible
        by overlapping tests; ``None`` if fewer than two boundaries exist.
        """
        row = int(np.argmin(np.abs(self.vdd_values - vdd)))
        trips = [
            bounds[row]
            for _, bounds in self.boundaries
            if bounds[row] is not None
        ]
        if len(trips) < 2:
            return None
        return float(max(trips) - min(trips))

    def render(self, width_label: str = "T_DQ (ns)") -> str:
        """ASCII rendering, Vdd descending top to bottom (fig. 8 layout)."""
        lines: List[str] = []
        lines.append(f"shmoo: VDD (V) vs {width_label}  [{self.total_tests} test(s)]")
        for i in range(len(self.vdd_values) - 1, -1, -1):
            row_chars = []
            for j in range(len(self.strobe_values)):
                frac = self.pass_fraction(i, j)
                idx = min(
                    len(_DENSITY_CHARS) - 1,
                    int(frac * (len(_DENSITY_CHARS) - 1) + 0.5),
                )
                row_chars.append(_DENSITY_CHARS[idx])
            lines.append(f"{self.vdd_values[i]:5.2f} |{''.join(row_chars)}|")
        axis = self.strobe_values
        lines.append(
            "      " + f"{axis[0]:<8.1f}" + " " * max(0, len(axis) - 16)
            + f"{axis[-1]:>8.1f}"
        )
        return "\n".join(lines)


class ShmooPlotter:
    """Builds shmoo plots through a tester."""

    def __init__(self, ate: ATE) -> None:
        self.ate = ate

    def sweep(
        self,
        test: TestCase,
        vdd_values: Sequence[float],
        strobe_values: Sequence[float],
        engine: str = "batched",
    ) -> ShmooPlot:
        """Exhaustive grid shmoo of a single test.

        Each Vdd row is one full strobe grid, i.e. one legal batch: the
        default ``engine="batched"`` evaluates a whole row through
        :meth:`~repro.ate.tester.ATE.apply_batch` with results, counters
        and datalog bit-identical to the scalar cell-by-cell loop
        (``engine="scalar"``, kept for parity tests and benchmarking).
        """
        if engine not in ("batched", "scalar"):
            raise ValueError(f"unknown engine {engine!r}")
        vdds = np.asarray(list(vdd_values), dtype=float)
        strobes = np.asarray(list(strobe_values), dtype=float)
        counts = np.zeros((len(vdds), len(strobes)), dtype=int)
        for i, vdd in enumerate(vdds):
            conditioned = test.with_condition(test.condition.with_vdd(float(vdd)))
            if engine == "batched":
                counts[i, :] = self.ate.apply_batch(conditioned, strobes)
            else:
                for j, strobe in enumerate(strobes):
                    if self.ate.apply(conditioned, float(strobe)):
                        counts[i, j] = 1
        return ShmooPlot(vdds, strobes, counts, total_tests=1)

    def overlay(
        self,
        tests: Sequence[TestCase],
        vdd_values: Sequence[float],
        strobe_start: float,
        strobe_stop: float,
        strobe_step: float = 0.5,
        search_resolution: float = 0.1,
    ) -> ShmooPlot:
        """Overlaid multi-test shmoo via per-row boundary search.

        For every test and Vdd row, a binary search locates the strobe trip
        point; each cell then counts the tests whose boundary lies at or
        beyond the cell's strobe.  Tests that fail the whole row (functional
        failure or boundary below the window) contribute no passes.
        """
        if not tests:
            raise ValueError("overlay needs at least one test")
        vdds = np.asarray(list(vdd_values), dtype=float)
        strobes = np.arange(strobe_start, strobe_stop + 1e-9, strobe_step)
        counts = np.zeros((len(vdds), len(strobes)), dtype=int)
        searcher = BinarySearch(
            resolution=search_resolution, pass_region=PassRegion.LOW
        )
        boundaries: List[Tuple[str, Tuple[Optional[float], ...]]] = []
        for test in tests:
            per_row: List[Optional[float]] = []
            for i, vdd in enumerate(vdds):
                conditioned = test.with_condition(
                    test.condition.with_vdd(float(vdd))
                )
                oracle = make_ate_oracle(self.ate, conditioned)
                outcome = searcher.search(oracle, strobe_start, strobe_stop)
                per_row.append(outcome.trip_point)
                if outcome.trip_point is not None:
                    counts[i, :] += strobes <= outcome.trip_point
            boundaries.append((test.name or "unnamed", tuple(per_row)))
        return ShmooPlot(
            vdds,
            strobes,
            counts,
            total_tests=len(tests),
            boundaries=tuple(boundaries),
        )


# -- tester-farm sharding --------------------------------------------------------
def shmoo_overlay_units(
    tests: Sequence[TestCase],
    vdd_values: Sequence[float],
    strobe_start: float,
    strobe_stop: float,
    strobe_step: float,
    search_resolution: float,
    die: ProcessInstance,
    parameter: DeviceParameter,
    noise_sigma: float,
    campaign_seed: int = 0,
) -> List[WorkUnit]:
    """Shard an overlay into one work unit per test.

    Each unit carries the full single-test overlay recipe and a seed
    derived from ``(campaign_seed, unit_key)``; :func:`merge_overlays`
    recombines the per-test plots in unit order.
    """
    units: List[WorkUnit] = []
    for index, test in enumerate(tests):
        name = test.name or f"test_{index}"
        key = f"shmoo/{index:03d}/{name}"
        units.append(
            WorkUnit(
                key=key,
                kind=SHMOO_TEST_UNIT,
                payload={
                    "test": test,
                    "vdd_values": tuple(float(v) for v in vdd_values),
                    "strobe_start": float(strobe_start),
                    "strobe_stop": float(strobe_stop),
                    "strobe_step": float(strobe_step),
                    "search_resolution": float(search_resolution),
                    "die": die,
                    "parameter": parameter,
                    "noise_sigma": float(noise_sigma),
                },
                seed=derive_seed(campaign_seed, key),
                index=index,
                cost_hint=float(test.cycles * len(vdd_values)),
                test_names=(name,),
            )
        )
    return units


def run_shmoo_unit(unit: WorkUnit) -> UnitOutcome:
    """Execute one ``shmoo_test`` work unit: one test's overlay rows.

    Module-level and self-contained (fresh chip and tester, noise stream
    from the unit seed) so it can run in a farm worker process.
    """
    cfg = unit.payload
    chip = MemoryTestChip(die=cfg["die"], parameter=cfg["parameter"])
    chip.reset_state()
    ate = ATE(
        chip,
        measurement=MeasurementModel(cfg["noise_sigma"], seed=unit.seed),
    )
    plot = ShmooPlotter(ate).overlay(
        [cfg["test"]],
        cfg["vdd_values"],
        strobe_start=cfg["strobe_start"],
        strobe_stop=cfg["strobe_stop"],
        strobe_step=cfg["strobe_step"],
        search_resolution=cfg["search_resolution"],
    )
    return UnitOutcome(value=plot, measurements=ate.measurement_count)


def merge_overlays(plots: Sequence[ShmooPlot]) -> ShmooPlot:
    """Deterministically merge per-test overlay plots into one.

    Counts are summed, boundaries concatenated and ``total_tests``
    accumulated in the given order, so merging farm results (returned in
    submission order) yields the same plot regardless of worker count.
    All plots must share both axes.
    """
    if not plots:
        raise ValueError("merge needs at least one plot")
    first = plots[0]
    counts = first.counts.copy()
    boundaries: List[Tuple[str, Tuple[Optional[float], ...]]] = list(
        first.boundaries
    )
    total = first.total_tests
    for plot in plots[1:]:
        if not np.array_equal(plot.vdd_values, first.vdd_values) or not (
            np.array_equal(plot.strobe_values, first.strobe_values)
        ):
            raise ValueError("cannot merge shmoo plots with different axes")
        counts = counts + plot.counts
        boundaries.extend(plot.boundaries)
        total += plot.total_tests
    return ShmooPlot(
        first.vdd_values,
        first.strobe_values,
        counts,
        total_tests=total,
        boundaries=tuple(boundaries),
    )
