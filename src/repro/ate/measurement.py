"""Measurement noise model of the tester's compare electronics.

Every pass/fail decision on real ATE rides on comparator noise, jitter and
supply ripple.  The paper's motivation for drift-tolerant searches — "an
inaccurate reading could result" (section 1) — needs the simulation to make
repeated measurements of the same point occasionally disagree near the trip
point, so :class:`MeasurementModel` perturbs the device's true parameter
value with seeded Gaussian noise before the strobe comparison.
"""

from __future__ import annotations

import numpy as np


class MeasurementModel:
    """Seeded Gaussian measurement-noise source.

    Parameters
    ----------
    noise_sigma_ns:
        Standard deviation of the per-measurement equivalent timing noise.
    seed:
        RNG seed; a fixed seed makes entire characterization runs
        reproducible measurement-for-measurement.
    """

    def __init__(self, noise_sigma_ns: float = 0.04, seed: int = 0) -> None:
        if noise_sigma_ns < 0:
            raise ValueError("noise sigma must be non-negative")
        self.noise_sigma_ns = noise_sigma_ns
        self._rng = np.random.default_rng(seed)

    def observed_value(self, true_value: float) -> float:
        """One noisy observation of a true parameter value."""
        if self.noise_sigma_ns == 0.0:
            return true_value
        return true_value + float(self._rng.normal(0.0, self.noise_sigma_ns))

    def observed_values(self, true_values: np.ndarray) -> np.ndarray:
        """Noisy observations of a batch of true values, one block draw.

        Draw-order contract: a batch of ``n`` observations consumes the
        noise stream exactly as ``n`` sequential :meth:`observed_value`
        calls would — numpy's ``Generator.normal(0, sigma, size=n)``
        produces the same variates, in the same order, as ``n`` scalar
        ``normal(0, sigma)`` calls.  Element ``k`` of the result is
        therefore bit-identical to the scalar path's ``k``-th observation,
        so batched and scalar campaigns under one seed see identical data.
        """
        true_values = np.asarray(true_values, dtype=float)
        if self.noise_sigma_ns == 0.0:
            return true_values
        noise = self._rng.normal(0.0, self.noise_sigma_ns, size=true_values.shape)
        return true_values + noise

    def reseed(self, seed: int) -> None:
        """Restart the noise stream (new characterization insertion)."""
        self._rng = np.random.default_rng(seed)
