"""Measurement noise model of the tester's compare electronics.

Every pass/fail decision on real ATE rides on comparator noise, jitter and
supply ripple.  The paper's motivation for drift-tolerant searches — "an
inaccurate reading could result" (section 1) — needs the simulation to make
repeated measurements of the same point occasionally disagree near the trip
point, so :class:`MeasurementModel` perturbs the device's true parameter
value with seeded Gaussian noise before the strobe comparison.
"""

from __future__ import annotations

import numpy as np


class MeasurementModel:
    """Seeded Gaussian measurement-noise source.

    Parameters
    ----------
    noise_sigma_ns:
        Standard deviation of the per-measurement equivalent timing noise.
    seed:
        RNG seed; a fixed seed makes entire characterization runs
        reproducible measurement-for-measurement.
    """

    def __init__(self, noise_sigma_ns: float = 0.04, seed: int = 0) -> None:
        if noise_sigma_ns < 0:
            raise ValueError("noise sigma must be non-negative")
        self.noise_sigma_ns = noise_sigma_ns
        self._rng = np.random.default_rng(seed)

    def observed_value(self, true_value: float) -> float:
        """One noisy observation of a true parameter value."""
        if self.noise_sigma_ns == 0.0:
            return true_value
        return true_value + float(self._rng.normal(0.0, self.noise_sigma_ns))

    def reseed(self, seed: int) -> None:
        """Restart the noise stream (new characterization insertion)."""
        self._rng = np.random.default_rng(seed)
