"""SQLite-backed characterization result store.

:class:`ResultStore` is the persistence layer behind the
characterization service and the ``--db`` variants of the ``obs``
commands.  It holds four kinds of records (see
:mod:`repro.store.schema`): run-cost records, worst-case test records,
service jobs, and imported benchmark payloads.

Concurrency model: the store opens one short-lived connection per
operation.  That keeps the class thread-safe without sharing
connections across the service's handler and worker threads (SQLite
serializes writers itself; a 30 s busy timeout absorbs contention), and
it is exactly the discipline a Postgres port would replace with a
connection pool.
"""

from __future__ import annotations

import json
import sqlite3
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from repro.core.database import WorstCaseDatabase
from repro.obs.history import RUN_KIND, HistoryLoad, RunHistory, bench_run_record
from repro.store.schema import SCHEMA_VERSION, ensure_schema

#: Job states, in lifecycle order.  ``queued`` and ``running`` are the
#: non-terminal states a restarted server marks as failed.
JOB_STATES = ("queued", "running", "completed", "failed", "cancelled")
ACTIVE_JOB_STATES = ("queued", "running")


class ResultStore:
    """One SQLite file holding runs, worst-case records, jobs, benches."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self._connect() as conn:
            self.schema_version = ensure_schema(conn)

    @contextmanager
    def _connect(self) -> Iterator[sqlite3.Connection]:
        conn = sqlite3.connect(str(self.path), timeout=30.0)
        try:
            yield conn
            conn.commit()
        finally:
            conn.close()

    # -- runs ------------------------------------------------------------------

    def append_run(self, record: Dict[str, object]) -> None:
        """Store one run record (the ``runs.jsonl`` line, as a row).

        The full record is kept as a JSON document; the indexed columns
        are projections for querying.  Append order is preserved (the
        rowid), matching the JSONL history's file order.
        """
        cpu_s = record.get("cpu_s")
        with self._connect() as conn:
            conn.execute(
                "INSERT INTO runs (run, campaign, command, ts, wall_s, "
                "cpu_s, measurements, record) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    str(record.get("run", "")),
                    str(record.get("campaign", "") or ""),
                    str(record.get("command", "") or ""),
                    float(record.get("ts", 0.0) or 0.0),
                    float(record.get("wall_s", 0.0) or 0.0),
                    float(cpu_s) if isinstance(cpu_s, (int, float)) else None,
                    int(record.get("measurements", 0) or 0),
                    json.dumps(record, sort_keys=True),
                ),
            )

    def runs(self) -> List[Dict[str, object]]:
        """Every stored run record, in append order."""
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT record FROM runs ORDER BY id"
            ).fetchall()
        return [json.loads(row[0]) for row in rows]

    def run_names(self) -> List[str]:
        """Distinct run names, in first-appearance order."""
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT run FROM runs GROUP BY run ORDER BY MIN(id)"
            ).fetchall()
        return [row[0] for row in rows]

    def find_run(self, name: str) -> Optional[Dict[str, object]]:
        """The most recent record named ``name`` (``None`` if absent)."""
        with self._connect() as conn:
            row = conn.execute(
                "SELECT record FROM runs WHERE run = ? ORDER BY id DESC",
                (name,),
            ).fetchone()
        return json.loads(row[0]) if row else None

    def latest_run(self) -> Optional[Dict[str, object]]:
        """The most recently appended run record."""
        with self._connect() as conn:
            row = conn.execute(
                "SELECT record FROM runs ORDER BY id DESC"
            ).fetchone()
        return json.loads(row[0]) if row else None

    def run_history(self) -> "StoreRunHistory":
        """A :class:`repro.obs.history.RunHistory`-shaped view of ``runs``.

        This is what lets ``obs compare --db`` / ``obs report --db``
        reuse the JSONL comparison code unchanged.
        """
        return StoreRunHistory(self)

    def import_runs_jsonl(
        self, path: Union[str, Path]
    ) -> "JsonlImportResult":
        """Migrate a ``runs.jsonl`` history into the store.

        Uses the history's tolerant loader, so the migration inherits
        its forgiveness: torn lines are counted and skipped,
        unknown-schema records are kept.  Append order is preserved.
        """
        loaded = RunHistory(path).load()
        for record in loaded.records:
            self.append_run(record)
        return JsonlImportResult(
            imported=len(loaded.records),
            dropped_lines=loaded.dropped_lines,
            unknown_schema=loaded.unknown_schema,
        )

    # -- worst-case records ----------------------------------------------------

    def import_wcdb_payload(
        self, payload: Dict[str, object], scope: str = ""
    ) -> int:
        """Import a worst-case database export (``export_payload`` shape).

        Deduplication key is ``(scope, test_name, condition)``: the same
        test at the same operating point appears once per scope.  On a
        duplicate, the *worse* record wins — a larger WCR replaces a
        smaller one, and a functional failure always replaces a
        parametric record (mirroring the paper's "store the worst case"
        intent).  Returns the number of rows inserted or updated.
        """
        changed = 0
        rows = list(payload.get("records") or [])
        rows += list(payload.get("functional_failures") or [])
        with self._connect() as conn:
            for summary in rows:
                changed += self._upsert_wc_record(conn, summary, scope)
        return changed

    def import_wcdb(self, database: WorstCaseDatabase, scope: str = "") -> int:
        """Import a live :class:`WorstCaseDatabase` (same dedup rules)."""
        return self.import_wcdb_payload(database.export_payload(), scope=scope)

    @staticmethod
    def _upsert_wc_record(
        conn: sqlite3.Connection, summary: Dict[str, object], scope: str
    ) -> int:
        condition = json.dumps(summary.get("condition") or {}, sort_keys=True)
        test_name = str(summary.get("test_name") or "")
        is_failure = 1 if summary.get("functional_failure") else 0
        wcr = summary.get("wcr")
        existing = conn.execute(
            "SELECT wcr, functional_failure FROM worst_case_records "
            "WHERE scope = ? AND test_name = ? AND condition = ?",
            (scope, test_name, condition),
        ).fetchone()
        if existing is not None:
            old_wcr, old_failure = existing
            keep_new = (
                (is_failure and not old_failure)
                or (
                    is_failure == old_failure
                    and wcr is not None
                    and (old_wcr is None or float(wcr) > float(old_wcr))
                )
            )
            if not keep_new:
                return 0
        conn.execute(
            "INSERT INTO worst_case_records (scope, test_name, condition, "
            "technique, cycles, measured_value, wcr, wcr_class, "
            "functional_failure, note) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?) "
            "ON CONFLICT (scope, test_name, condition) DO UPDATE SET "
            "technique = excluded.technique, cycles = excluded.cycles, "
            "measured_value = excluded.measured_value, wcr = excluded.wcr, "
            "wcr_class = excluded.wcr_class, "
            "functional_failure = excluded.functional_failure, "
            "note = excluded.note",
            (
                scope,
                test_name,
                condition,
                str(summary.get("technique") or ""),
                summary.get("cycles"),
                summary.get("measured_value"),
                wcr,
                summary.get("wcr_class"),
                is_failure,
                str(summary.get("note") or ""),
            ),
        )
        return 1

    def export_wcdb_payload(self, scope: Optional[str] = None) -> Dict[str, object]:
        """Rebuild the ``WorstCaseDatabase.export_payload`` shape.

        Parametric records come ranked worst-first (ties keep insertion
        order, like :meth:`WorstCaseDatabase.ranked`), functional
        failures in insertion order.  ``scope=None`` exports everything.
        """
        where, params = "", ()
        if scope is not None:
            where, params = "AND scope = ?", (scope,)
        with self._connect() as conn:
            records = conn.execute(
                "SELECT test_name, condition, technique, cycles, "
                "measured_value, wcr, wcr_class, functional_failure, note "
                f"FROM worst_case_records WHERE functional_failure = 0 {where} "
                "ORDER BY wcr DESC, id",
                params,
            ).fetchall()
            failures = conn.execute(
                "SELECT test_name, condition, technique, cycles, "
                "measured_value, wcr, wcr_class, functional_failure, note "
                f"FROM worst_case_records WHERE functional_failure = 1 {where} "
                "ORDER BY id",
                params,
            ).fetchall()
        return {
            "records": [self._wc_summary(row) for row in records],
            "functional_failures": [self._wc_summary(row) for row in failures],
        }

    @staticmethod
    def _wc_summary(row) -> Dict[str, object]:
        (test_name, condition, technique, cycles, measured_value, wcr,
         wcr_class, functional_failure, note) = row
        return {
            "test_name": test_name,
            "technique": technique,
            "cycles": cycles,
            "condition": json.loads(condition),
            "measured_value": measured_value,
            "wcr": wcr,
            "wcr_class": wcr_class,
            "functional_failure": bool(functional_failure),
            "note": note,
        }

    def wc_record_count(self, scope: Optional[str] = None) -> int:
        """Stored worst-case rows (failures included)."""
        where, params = "", ()
        if scope is not None:
            where, params = "WHERE scope = ?", (scope,)
        with self._connect() as conn:
            row = conn.execute(
                f"SELECT COUNT(*) FROM worst_case_records {where}", params
            ).fetchone()
        return int(row[0])

    # -- jobs ------------------------------------------------------------------

    def create_job(
        self,
        job_id: str,
        spec: Dict[str, object],
        job_dir: str = "",
        state: str = "queued",
        request_id: str = "",
    ) -> Dict[str, object]:
        """Insert a new job row; returns it as a dict."""
        if state not in JOB_STATES:
            raise ValueError(f"unknown job state {state!r}")
        with self._connect() as conn:
            conn.execute(
                "INSERT INTO jobs (job_id, state, spec, created_ts, job_dir, "
                "request_id) VALUES (?, ?, ?, ?, ?, ?)",
                (job_id, state, json.dumps(spec, sort_keys=True),
                 time.time(), job_dir, request_id),
            )
        job = self.get_job(job_id)
        assert job is not None
        return job

    def update_job(self, job_id: str, **fields: object) -> None:
        """Update job columns (``state``, ``started_ts``, ``error``, ...)."""
        allowed = {
            "state", "started_ts", "finished_ts", "exit_code", "error",
            "job_dir", "request_id",
        }
        unknown = set(fields) - allowed
        if unknown:
            raise ValueError(f"unknown job fields: {sorted(unknown)}")
        state = fields.get("state")
        if state is not None and state not in JOB_STATES:
            raise ValueError(f"unknown job state {state!r}")
        if not fields:
            return
        names = sorted(fields)
        assignments = ", ".join(f"{name} = ?" for name in names)
        with self._connect() as conn:
            conn.execute(
                f"UPDATE jobs SET {assignments} WHERE job_id = ?",
                tuple(fields[name] for name in names) + (job_id,),
            )

    def get_job(self, job_id: str) -> Optional[Dict[str, object]]:
        """One job row as a dict (spec parsed), or ``None``."""
        with self._connect() as conn:
            row = conn.execute(
                f"SELECT {_JOB_COLUMNS} FROM jobs WHERE job_id = ?",
                (job_id,),
            ).fetchone()
        return _job_row_to_dict(row) if row else None

    def list_jobs(
        self, states: Optional[List[str]] = None
    ) -> List[Dict[str, object]]:
        """All jobs (optionally filtered by state), oldest first."""
        query = f"SELECT {_JOB_COLUMNS} FROM jobs"
        params: tuple = ()
        if states:
            placeholders = ", ".join("?" for _ in states)
            query += f" WHERE state IN ({placeholders})"
            params = tuple(states)
        query += " ORDER BY created_ts, job_id"
        with self._connect() as conn:
            rows = conn.execute(query, params).fetchall()
        return [_job_row_to_dict(row) for row in rows]

    def fail_interrupted_jobs(
        self, error: str = "interrupted by server restart"
    ) -> List[str]:
        """Mark every queued/running job failed; returns their ids.

        Called by the service on startup: those jobs' worker threads
        died with the previous process, so the rows would otherwise
        claim progress forever.
        """
        interrupted = [
            str(job["job_id"])
            for job in self.list_jobs(states=list(ACTIVE_JOB_STATES))
        ]
        now = time.time()
        with self._connect() as conn:
            conn.execute(
                "UPDATE jobs SET state = 'failed', error = ?, "
                "finished_ts = ? WHERE state IN ('queued', 'running')",
                (error, now),
            )
        return interrupted

    # -- bench records ---------------------------------------------------------

    def import_bench_payload(
        self, payload: Dict[str, object], name: Optional[str] = None
    ) -> Dict[str, object]:
        """Store one ``BENCH_*.json`` payload.

        The raw payload lands in ``bench_records`` (provenance); the
        converted, gateable run record (see
        :func:`repro.obs.history.bench_run_record`) lands in ``runs`` so
        ``obs compare --db`` treats benches exactly like campaign runs.
        Returns the run record.
        """
        record = bench_run_record(payload, name=name)
        cpu_s = payload.get("cpu_s")
        with self._connect() as conn:
            conn.execute(
                "INSERT INTO bench_records (bench, imported_ts, wall_s, "
                "cpu_s, payload) VALUES (?, ?, ?, ?, ?)",
                (
                    str(payload.get("bench", "")),
                    time.time(),
                    float(payload.get("wall_s", 0.0) or 0.0),
                    float(cpu_s) if isinstance(cpu_s, (int, float)) else None,
                    json.dumps(payload, sort_keys=True),
                ),
            )
        self.append_run(record)
        return record

    def bench_payloads(self) -> List[Dict[str, object]]:
        """Every imported bench payload, oldest first."""
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT payload FROM bench_records ORDER BY id"
            ).fetchall()
        return [json.loads(row[0]) for row in rows]


_JOB_COLUMNS = (
    "job_id, state, spec, created_ts, started_ts, finished_ts, "
    "exit_code, error, job_dir, request_id"
)


def _job_row_to_dict(row) -> Dict[str, object]:
    (job_id, state, spec, created_ts, started_ts, finished_ts, exit_code,
     error, job_dir, request_id) = row
    return {
        "job_id": job_id,
        "state": state,
        "spec": json.loads(spec),
        "created_ts": created_ts,
        "started_ts": started_ts,
        "finished_ts": finished_ts,
        "exit_code": exit_code,
        "error": error,
        "job_dir": job_dir,
        "request_id": request_id,
    }


class JsonlImportResult:
    """Outcome of a ``runs.jsonl`` migration."""

    def __init__(
        self, imported: int, dropped_lines: int, unknown_schema: int
    ) -> None:
        self.imported = imported
        self.dropped_lines = dropped_lines
        self.unknown_schema = unknown_schema

    def describe(self) -> str:
        parts = [f"{self.imported} record(s) imported"]
        if self.dropped_lines:
            parts.append(f"{self.dropped_lines} malformed line(s) skipped")
        if self.unknown_schema:
            parts.append(
                f"{self.unknown_schema} unknown-schema record(s) kept"
            )
        return ", ".join(parts)


class StoreRunHistory:
    """:class:`ResultStore` adapter with the ``RunHistory`` interface.

    ``obs compare``/``obs report``/``obs bench-import`` accept either a
    JSONL history or this adapter; the comparison logic
    (:func:`repro.obs.history.compare_runs`) never knows which backend
    it is reading.
    """

    def __init__(self, store: ResultStore) -> None:
        self.store = store
        self.path = store.path  # compare_runs names this in errors

    def append(self, record: Dict[str, object]) -> None:
        self.store.append_run(record)

    def load(self) -> HistoryLoad:
        records = [
            record
            for record in self.store.runs()
            if record.get("kind") == RUN_KIND or "run" in record
        ]
        return HistoryLoad(records=records)

    def next_default_name(self) -> str:
        return f"run-{len(self.store.runs())}"

    def find(self, name: str) -> Optional[Dict[str, object]]:
        return self.store.find_run(name)

    def latest(self) -> Optional[Dict[str, object]]:
        return self.store.latest_run()


__all__ = [
    "ACTIVE_JOB_STATES",
    "JOB_STATES",
    "JsonlImportResult",
    "ResultStore",
    "SCHEMA_VERSION",
    "StoreRunHistory",
]
