"""Persistent result store for characterization runs (SQLite-backed).

The CLI's ad-hoc JSONL artifacts (``runs.jsonl`` histories, worst-case
database exports) work for one-shot runs; a long-running
characterization service needs a real store.  This package provides it:

* :class:`ResultStore` — one SQLite file with typed tables for run-cost
  records, worst-case test records (deduplicated on test + condition),
  service jobs, and imported benchmark payloads;
* :class:`StoreRunHistory` — a ``RunHistory``-shaped adapter so the
  existing ``obs compare`` / ``obs report`` machinery reads the store
  through its ``--db`` flag without new comparison code;
* ``repro store import`` (CLI) — migrates existing JSONL history into
  the store, inheriting the tolerant loader's crash-forgiveness.

The schema (:mod:`repro.store.schema`) is versioned and written in the
SQL subset SQLite shares with PostgreSQL, so scaling the store up is a
connection-string change, not a rewrite.  See ``docs/service.md``.
"""

from repro.store.db import (
    ACTIVE_JOB_STATES,
    JOB_STATES,
    JsonlImportResult,
    ResultStore,
    StoreRunHistory,
)
from repro.store.schema import SCHEMA_VERSION, ensure_schema, schema_version

__all__ = [
    "ACTIVE_JOB_STATES",
    "JOB_STATES",
    "JsonlImportResult",
    "ResultStore",
    "SCHEMA_VERSION",
    "StoreRunHistory",
    "ensure_schema",
    "schema_version",
]
