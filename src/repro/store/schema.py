"""Versioned SQL schema for the characterization result store.

One schema version, four typed tables plus a metadata table:

* ``runs`` — run-cost records, superseding the ad-hoc ``runs.jsonl``
  history (the full record is kept as a JSON document next to the
  indexed columns, so the tolerant-load guarantees of
  :class:`repro.obs.history.RunHistory` carry over);
* ``worst_case_records`` — :class:`repro.core.database.WorstCaseDatabase`
  rows, deduplicated on ``(scope, test_name, condition)``;
* ``jobs`` — the characterization-service job table (spec, state
  machine, artifact paths);
* ``bench_records`` — raw ``BENCH_*.json`` payloads as imported by
  ``repro obs bench-import`` (their *gateable* run records additionally
  land in ``runs`` so ``obs compare --db`` sees them).

Portability is a design constraint: every statement sticks to the SQL
subset SQLite and PostgreSQL share — ``TEXT``/``INTEGER``/``REAL``
columns, plain ``UNIQUE`` constraints, no SQLite-only pragmas in the
DDL, all parameter binding through the driver.  Porting the store is a
connection-string change plus swapping ``?`` placeholders for the
driver's style, not a schema rewrite.

Migrations are append-only: ``MIGRATIONS[n]`` upgrades a version-``n``
database to version ``n + 1``.  :func:`ensure_schema` creates a fresh
database at :data:`SCHEMA_VERSION` or walks an old one forward.
"""

from __future__ import annotations

import sqlite3
from typing import List, Sequence

SCHEMA_VERSION = 2

#: DDL for a fresh version-1 database.
SCHEMA_V1: Sequence[str] = (
    """
    CREATE TABLE IF NOT EXISTS store_meta (
        key   TEXT PRIMARY KEY,
        value TEXT NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS runs (
        id           INTEGER PRIMARY KEY,
        run          TEXT NOT NULL,
        campaign     TEXT NOT NULL DEFAULT '',
        command      TEXT NOT NULL DEFAULT '',
        ts           REAL NOT NULL DEFAULT 0,
        wall_s       REAL NOT NULL DEFAULT 0,
        cpu_s        REAL,
        measurements INTEGER NOT NULL DEFAULT 0,
        record       TEXT NOT NULL
    )
    """,
    "CREATE INDEX IF NOT EXISTS idx_runs_run ON runs (run)",
    """
    CREATE TABLE IF NOT EXISTS worst_case_records (
        id                 INTEGER PRIMARY KEY,
        scope              TEXT NOT NULL DEFAULT '',
        test_name          TEXT NOT NULL,
        condition          TEXT NOT NULL,
        technique          TEXT NOT NULL DEFAULT '',
        cycles             INTEGER,
        measured_value     REAL,
        wcr                REAL,
        wcr_class          TEXT,
        functional_failure INTEGER NOT NULL DEFAULT 0,
        note               TEXT NOT NULL DEFAULT '',
        UNIQUE (scope, test_name, condition)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS jobs (
        job_id      TEXT PRIMARY KEY,
        state       TEXT NOT NULL,
        spec        TEXT NOT NULL,
        created_ts  REAL NOT NULL DEFAULT 0,
        started_ts  REAL,
        finished_ts REAL,
        exit_code   INTEGER,
        error       TEXT NOT NULL DEFAULT '',
        job_dir     TEXT NOT NULL DEFAULT ''
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS bench_records (
        id          INTEGER PRIMARY KEY,
        bench       TEXT NOT NULL,
        imported_ts REAL NOT NULL DEFAULT 0,
        wall_s      REAL NOT NULL DEFAULT 0,
        cpu_s       REAL,
        payload     TEXT NOT NULL
    )
    """,
)

#: Version 1 -> 2: the service stamps the submitting HTTP request's id
#: onto the job row, joining it to the access log and the job's trace.
SCHEMA_V2: Sequence[str] = (
    "ALTER TABLE jobs ADD COLUMN request_id TEXT NOT NULL DEFAULT ''",
)

#: ``MIGRATIONS[n]`` is the statement list taking version n -> n + 1.
#: Version 0 means "empty database": the fresh-create path.
MIGRATIONS: List[Sequence[str]] = [SCHEMA_V1, SCHEMA_V2]


def schema_version(conn: sqlite3.Connection) -> int:
    """The schema version recorded in ``store_meta`` (0 when absent)."""
    try:
        row = conn.execute(
            "SELECT value FROM store_meta WHERE key = 'schema_version'"
        ).fetchone()
    except sqlite3.OperationalError:  # no store_meta table yet
        return 0
    return int(row[0]) if row else 0


def ensure_schema(conn: sqlite3.Connection) -> int:
    """Create or upgrade the schema; returns the resulting version.

    Raises
    ------
    RuntimeError
        When the database records a *newer* schema version than this
        build knows — refusing to write beats corrupting a newer
        store's invariants.
    """
    version = schema_version(conn)
    if version > SCHEMA_VERSION:
        raise RuntimeError(
            f"store schema version {version} is newer than this build "
            f"supports ({SCHEMA_VERSION}); upgrade repro instead of "
            f"downgrading the store"
        )
    while version < SCHEMA_VERSION:
        for statement in MIGRATIONS[version]:
            conn.execute(statement)
        version += 1
        conn.execute(
            "INSERT INTO store_meta (key, value) VALUES ('schema_version', ?) "
            "ON CONFLICT (key) DO UPDATE SET value = excluded.value",
            (str(version),),
        )
        conn.commit()
    return version
