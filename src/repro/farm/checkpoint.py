"""JSONL checkpoint store: interrupted campaigns resume where they stopped.

Every completed work unit is appended to the checkpoint file as one JSON
line the moment it finishes, so a run killed mid-lot loses at most the
units that were in flight.  Reopening the same path later (the CLI's
``--resume`` flag, or passing the store back into an executor) loads the
completed results and the executor skips those units entirely — no
re-measurement, same merged output.

File format (one JSON object per line):

* line 1 — header: ``{"schema": 1, "kind": "repro.farm.checkpoint",
  "campaign": "<id>"}``.  The campaign id ties a checkpoint to the run
  configuration that produced it; resuming under a different id raises
  :class:`CheckpointMismatch` instead of silently merging foreign results.
* following lines — one completed unit each: the unit key, execution
  metadata, and the pickled result value (base64), e.g.
  ``{"unit": "die/0003", "index": 3, "measurements": 412, "attempts": 1,
  "elapsed_s": 0.21, "rtp": 31.55, "value_b64": "..."}``.

A truncated final line (the process died mid-write) is detected and
dropped on load; everything before it is kept.
"""

from __future__ import annotations

import base64
import json
import logging
import pickle
from pathlib import Path
from typing import Dict, Optional, Union

from repro.ioutil import durable_append_line
from repro.farm.workunit import WorkResult
from repro.obs.events import FarmCheckpointDropped
from repro.obs.runtime import OBS

logger = logging.getLogger("repro.farm")

_SCHEMA = 1
_KIND = "repro.farm.checkpoint"


class CheckpointMismatch(RuntimeError):
    """The checkpoint on disk belongs to a different campaign."""


class CheckpointStore:
    """Append-only JSONL store of completed work-unit results.

    Parameters
    ----------
    path:
        Checkpoint file; created (with its header) on the first
        :meth:`record` if absent.
    campaign:
        Identity of the producing run (seed, die count, ...).  ``""``
        skips the header consistency check — any checkpoint is accepted.
    """

    def __init__(self, path: Union[str, Path], campaign: str = "") -> None:
        self.path = Path(path)
        self.campaign = campaign
        self._handle = None

    # -- loading -----------------------------------------------------------------
    def load(self) -> Dict[str, WorkResult]:
        """Completed results on disk, keyed by unit key.

        Corrupt or truncated lines are skipped with a warning — and,
        with telemetry enabled, counted on the
        ``farm.checkpoint.dropped_lines`` counter and announced by one
        :class:`~repro.obs.events.FarmCheckpointDropped` event, so a
        resume that silently lost results is visible in the trace.  A
        campaign header that does not match raises
        :class:`CheckpointMismatch`.
        """
        results: Dict[str, WorkResult] = {}
        if not self.path.exists():
            return results
        dropped = 0
        with self.path.open("r") as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    logger.warning(
                        "checkpoint %s: dropping corrupt line %d "
                        "(interrupted write?)", self.path, number,
                    )
                    dropped += 1
                    continue
                if payload.get("kind") == _KIND:
                    self._check_header(payload)
                    continue
                result = self._decode(payload, number)
                if result is not None:
                    results[result.unit_key] = result
                else:
                    dropped += 1
        if dropped and OBS.enabled:
            OBS.metrics.counter("farm.checkpoint.dropped_lines").inc(dropped)
            OBS.bus.emit(
                FarmCheckpointDropped(path=str(self.path), lines=dropped)
            )
        return results

    def completed_keys(self) -> "set[str]":
        """Unit keys already recorded in the checkpoint."""
        return set(self.load())

    def _check_header(self, header: Dict[str, object]) -> None:
        recorded = str(header.get("campaign", ""))
        if self.campaign and recorded and recorded != self.campaign:
            raise CheckpointMismatch(
                f"checkpoint {self.path} was written by campaign "
                f"{recorded!r}, refusing to resume campaign "
                f"{self.campaign!r}"
            )

    def _decode(
        self, payload: Dict[str, object], number: int
    ) -> Optional[WorkResult]:
        try:
            value = pickle.loads(base64.b64decode(str(payload["value_b64"])))
            return WorkResult(
                unit_key=str(payload["unit"]),
                index=int(payload["index"]),
                value=value,
                measurements=int(payload.get("measurements", 0)),
                rtp=payload.get("rtp"),  # type: ignore[arg-type]
                attempts=int(payload.get("attempts", 1)),
                elapsed_s=float(payload.get("elapsed_s", 0.0)),
                worker=str(payload.get("worker", "")),
                from_checkpoint=True,
            )
        except Exception:  # noqa: BLE001 — any undecodable line is dropped
            # pickle/base64 raise a zoo of types (EOFError, binascii.Error,
            # UnpicklingError, attribute lookups...); the tolerant-load
            # contract is the same for all of them.
            logger.warning(
                "checkpoint %s: dropping undecodable line %d",
                self.path, number,
            )
            return None

    # -- recording ---------------------------------------------------------------
    def record(self, result: WorkResult) -> None:
        """Append one completed unit, flushed immediately."""
        handle = self._open_for_append()
        payload = {
            "unit": result.unit_key,
            "index": result.index,
            "measurements": result.measurements,
            "attempts": result.attempts,
            "elapsed_s": round(result.elapsed_s, 6),
            "worker": result.worker,
            "rtp": result.rtp,
            "value_b64": base64.b64encode(
                pickle.dumps(result.value)
            ).decode("ascii"),
        }
        # flush + fsync: a unit the executor believes is checkpointed
        # must survive a crash — a torn line here would silently re-run
        # (or drop) the unit on resume.
        durable_append_line(handle, json.dumps(payload, sort_keys=True))

    def _open_for_append(self):
        if self._handle is None or self._handle.closed:
            is_new = not self.path.exists() or self.path.stat().st_size == 0
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a")
            if is_new:
                header = {
                    "schema": _SCHEMA,
                    "kind": _KIND,
                    "campaign": self.campaign,
                }
                durable_append_line(
                    self._handle, json.dumps(header, sort_keys=True)
                )
        return self._handle

    def close(self) -> None:
        """Close the append handle (idempotent; loading stays possible)."""
        if self._handle is not None and not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "CheckpointStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
