"""The socket worker: connect, steal units, heartbeat, deliver results.

A worker is a tiny synchronous loop around one broker connection:

1. ``hello`` (role ``worker``, protocol version, optional campaign pin);
   a ``reject`` — wrong protocol, or pinned to a stale campaign while
   another is active — raises :class:`WorkerRejected`.
2. ``request`` → either a ``unit`` (execute it) or ``idle`` (sleep the
   broker-suggested back-off and ask again).
3. While executing, a heartbeat thread extends the lease every third of
   the lease lifetime.  It is stopped and joined *before* the result
   frame is sent, so the main thread is always the only writer when a
   multi-frame exchange happens — no frame interleaving is possible.
4. ``result`` → ``ack``.  An ``ack accepted=false`` (duplicate, stale
   attempt, campaign gone) is not an error: the broker already has what
   it needs and the worker simply asks for the next unit.

Telemetry: when the dispatch carries a capture config, the unit runs
under :func:`repro.obs.collector.run_unit_captured` — the same spool
capture the process pool uses — and the resulting ``WorkerTelemetry``
rides back inside the result frame.  Remote traces therefore merge
event-comparable with serial and process-pool traces.

The global observability runtime is neutralised on startup exactly like
a process-pool worker: a remote worker never writes the host trace
directly, everything flows through the spool.
"""

from __future__ import annotations

import logging
import os
import socket
import threading
import time
from typing import Any, Callable, Dict, Optional, Tuple, Union

from repro.farm.remote.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    pack,
    parse_address,
    recv_frame,
    resolve_runner,
    send_frame,
    unpack,
)
from repro.farm.remote.telemetry import clock_stamp
from repro.obs.collector import run_unit_captured
from repro.obs.events import EventBus
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import OBS

logger = logging.getLogger("repro.farm.remote")


class WorkerRejected(RuntimeError):
    """The broker refused this worker's hello (version/campaign)."""


def _default_name() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


def _neutralize_observability() -> None:
    """Detach from any inherited OBS runtime (mirror of the pool worker)."""
    OBS.enabled = False
    OBS.bus = EventBus()
    OBS.metrics = MetricsRegistry()


def _connect(
    address: Tuple[str, int], connect_timeout_s: float
) -> socket.socket:
    """Dial the broker, retrying until the timeout window closes.

    Workers are often launched alongside the broker (CI, scripts); the
    retry window absorbs the broker's startup latency instead of making
    every launcher sequence the two.
    """
    deadline = time.monotonic() + connect_timeout_s
    last_error: Optional[Exception] = None
    while True:
        try:
            return socket.create_connection(address, timeout=5.0)
        except OSError as exc:
            last_error = exc
            if time.monotonic() >= deadline:
                raise WorkerRejected(
                    f"could not reach broker at {address[0]}:{address[1]} "
                    f"within {connect_timeout_s:g}s: {last_error}"
                ) from exc
            time.sleep(0.2)


class _HeartbeatPump:
    """Background thread that keeps one unit's lease alive."""

    def __init__(
        self,
        sock: socket.socket,
        send_lock: threading.Lock,
        key: str,
        attempt: int,
        interval_s: float,
    ) -> None:
        self._sock = sock
        self._lock = send_lock
        self._key = key
        self._attempt = attempt
        self._interval = max(0.05, interval_s)
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"heartbeat-{key}", daemon=True
        )

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            # A fresh frame per beat: the clock stamp must be taken at
            # send time for the broker's skew estimator to see real
            # wall/monotonic pairs, not the construction-time snapshot.
            frame = {
                "type": "heartbeat",
                "key": self._key,
                "attempt": self._attempt,
                "clock": clock_stamp(),
            }
            try:
                with self._lock:
                    send_frame(self._sock, frame)
            except OSError:
                return  # connection gone; the main loop will notice

    def __enter__(self) -> "_HeartbeatPump":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        # Stopped and joined BEFORE the result frame goes out: after
        # this returns, the main thread is the socket's only writer.
        self._stop.set()
        self._thread.join()


def _execute_unit(
    frame: Dict[str, Any],
    runners: Dict[str, Callable],
    name: str,
) -> Dict[str, Any]:
    """Run one leased unit; build the result frame (ok or error)."""
    key = str(frame["key"])
    attempt = int(frame.get("attempt") or 1)
    started = time.perf_counter()
    try:
        ref = str(frame["runner"])
        if ref not in runners:
            runners[ref] = resolve_runner(ref)
        runner = runners[ref]
        unit = unpack(str(frame["unit"]))
        config = unpack(str(frame["config"])) if frame.get("config") else None
        if config is not None and config.capture:
            outcome, telemetry = run_unit_captured(
                runner, unit, config, worker=name, attempt=attempt
            )
        else:
            outcome = runner(unit)
            telemetry = None
    except BaseException as exc:  # noqa: BLE001 — report, don't die
        logger.warning("unit %s attempt %d failed: %s", key, attempt, exc)
        return {
            "type": "result",
            "key": key,
            "attempt": attempt,
            "ok": False,
            "elapsed_s": time.perf_counter() - started,
            "error": f"{type(exc).__name__}: {exc}",
        }
    return {
        "type": "result",
        "key": key,
        "attempt": attempt,
        "ok": True,
        "elapsed_s": time.perf_counter() - started,
        "outcome": pack(outcome),
        "telemetry": pack(telemetry) if telemetry is not None else None,
    }


def run_worker(
    connect: Union[str, Tuple[str, int]],
    name: Optional[str] = None,
    campaign: Optional[str] = None,
    max_units: Optional[int] = None,
    connect_timeout_s: float = 10.0,
    max_idle_s: Optional[float] = None,
) -> int:
    """Serve one broker until shutdown; returns units completed.

    Parameters
    ----------
    connect:
        Broker address, ``"host:port"`` or ``(host, port)``.
    name:
        Worker display name (stamped into telemetry and results);
        defaults to ``hostname-pid``.
    campaign:
        Optional campaign pin: the broker refuses the hello if a
        *different* campaign is active (stale-rejoin protection), and
        the worker only ever receives units of the pinned campaign.
    max_units:
        Exit after completing this many units (useful in tests and for
        scripted churn); ``None`` serves until the broker goes away.
    connect_timeout_s:
        Retry window for the initial dial.
    max_idle_s:
        Exit after this long without any unit to steal; ``None`` polls
        forever.
    """
    _neutralize_observability()
    worker_name = name or _default_name()
    address = parse_address(connect) if isinstance(connect, str) else (
        connect[0], int(connect[1])
    )
    sock = _connect(address, connect_timeout_s)
    send_lock = threading.Lock()
    runners: Dict[str, Callable] = {}
    completed = 0
    idle_since: Optional[float] = None
    try:
        with send_lock:
            send_frame(sock, {
                "type": "hello",
                "role": "worker",
                "version": PROTOCOL_VERSION,
                "worker": worker_name,
                "campaign": campaign,
                "clock": clock_stamp(),
            })
        greeting = recv_frame(sock)
        if greeting is None:
            raise WorkerRejected("broker closed the connection during hello")
        if greeting.get("type") == "reject":
            raise WorkerRejected(str(greeting.get("reason") or "rejected"))
        if greeting.get("type") != "welcome":
            raise WorkerRejected(
                f"unexpected greeting {greeting.get('type')!r}"
            )
        logger.info("worker %s connected to %s:%d", worker_name, *address)
        while max_units is None or completed < max_units:
            with send_lock:
                send_frame(sock, {"type": "request"})
            frame = recv_frame(sock)
            if frame is None or frame.get("type") == "shutdown":
                break
            kind = frame.get("type")
            if kind == "idle":
                now = time.monotonic()
                if idle_since is None:
                    idle_since = now
                if (
                    max_idle_s is not None
                    and now - idle_since >= max_idle_s
                ):
                    logger.info(
                        "worker %s idle for %.1fs; leaving",
                        worker_name, now - idle_since,
                    )
                    break
                time.sleep(float(frame.get("poll_s") or 0.25))
                continue
            if kind != "unit":
                continue
            idle_since = None
            lease_s = float(frame.get("lease_s") or 30.0)
            pump = _HeartbeatPump(
                sock, send_lock,
                key=str(frame["key"]),
                attempt=int(frame.get("attempt") or 1),
                interval_s=lease_s / 3.0,
            )
            with pump:
                result = _execute_unit(frame, runners, worker_name)
            with send_lock:
                send_frame(sock, result)
            ack = recv_frame(sock)
            if ack is None:
                break
            if result.get("ok") and ack.get("accepted"):
                completed += 1
        try:
            with send_lock:
                send_frame(sock, {"type": "goodbye"})
        except OSError:
            pass
    except ProtocolError as exc:
        logger.warning("worker %s: protocol error: %s", worker_name, exc)
    finally:
        sock.close()
    return completed
