"""Broker control-plane telemetry: metrics, events, clock skew, stats.

The farm broker is the one component that sees the whole fleet — every
lease, heartbeat, duplicate and worker (dis)connect crosses it — but
until this module it kept that knowledge in a private ``stats`` dict.
Here the control plane becomes observable through the same three
surfaces the rest of the repo already speaks:

* **Metrics** — :class:`BrokerTelemetry` owns a thread-safe
  :class:`~repro.obs.metrics.MetricsRegistry` (lease counters, lease-age
  and unit-latency histograms, per-worker throughput) rendered as
  Prometheus text by :class:`MetricsHTTPServer` for
  ``farm-broker --metrics-port`` and for the ``serve --broker`` proxy.
* **Events** — typed :mod:`repro.obs.events` payloads
  (``lease_issued`` … ``spool_restored``), pre-stamped with ``ts`` and
  trace context (trace_id=campaign, span_id=unit key, worker=worker
  name) because the broker emits from many connection threads and the
  process-global trace context is not thread-safe.  Payloads are
  buffered per campaign so the ``campaign_done`` frame can ship them to
  the submitting client, whose trace then tells the broker-side story.
* **Clock skew** — :class:`ClockEstimator` turns the paired
  wall+monotonic stamps carried by hello/heartbeat frames into a
  min-filtered per-worker offset (the classic min-RTT argument: the
  smallest observed ``send→receive`` delta is the true offset plus the
  best-case one-way delay), so :mod:`repro.obs.timeline` can align
  multi-host tracks onto one axis.

Everything here is stdlib-only and import-safe from the lowest layers.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs import OBS
from repro.obs.events import Event
from repro.obs.exposition import render_exposition
from repro.obs.metrics import MetricsRegistry
from repro.farm.remote.protocol import (
    PROTOCOL_VERSION,
    parse_address,
    recv_frame,
    send_frame,
)

#: A wall-clock step that disagrees with the monotonic clock by more
#: than this many seconds is treated as a clock jump (NTP step, manual
#: adjustment) and resets the offset estimator.
CLOCK_JUMP_TOLERANCE_S = 0.25

#: Cap on buffered broker events per campaign; beyond it the oldest
#: story is preserved (first events kept) and the overflow counted.
EVENT_BUFFER_LIMIT = 20_000


def clock_stamp() -> Dict[str, float]:
    """The paired wall+monotonic stamp carried by hello/heartbeat frames."""
    return {"wall": time.time(), "mono": time.monotonic()}


class ClockEstimator:
    """Min-filter estimate of one remote clock's offset from ours.

    Every stamped frame yields one sample ``delta = local_wall_at_receive
    − remote_wall_at_send = −offset + network_delay`` where ``offset`` is
    the remote clock minus ours.  Network delay is non-negative and
    varies; the offset (absent jumps) does not — so the *minimum* delta
    over many samples converges on ``−offset`` plus the best-case
    one-way delay.  :attr:`offset_s` therefore reports
    ``remote − local`` seconds, biased by at most that delay.

    The paired monotonic stamp guards against wall-clock steps: between
    consecutive samples ``Δwall`` must track ``Δmono``; a disagreement
    beyond :data:`CLOCK_JUMP_TOLERANCE_S` means the remote wall clock
    jumped, so the filter restarts (and counts the jump).
    """

    __slots__ = ("_min_delta", "samples", "jumps", "_last_wall", "_last_mono")

    def __init__(self) -> None:
        self._min_delta: Optional[float] = None
        self.samples = 0
        self.jumps = 0
        self._last_wall: Optional[float] = None
        self._last_mono: Optional[float] = None

    def observe(
        self,
        wall_sent: float,
        mono_sent: float,
        wall_received: Optional[float] = None,
    ) -> None:
        """Fold in one stamped frame (received now unless given)."""
        if wall_received is None:
            wall_received = time.time()
        if self._last_wall is not None and self._last_mono is not None:
            wall_step = wall_sent - self._last_wall
            mono_step = mono_sent - self._last_mono
            if abs(wall_step - mono_step) > CLOCK_JUMP_TOLERANCE_S:
                self._min_delta = None
                self.jumps += 1
        self._last_wall = wall_sent
        self._last_mono = mono_sent
        delta = wall_received - wall_sent
        if self._min_delta is None or delta < self._min_delta:
            self._min_delta = delta
        self.samples += 1

    @property
    def offset_s(self) -> float:
        """Estimated ``remote − local`` wall-clock offset in seconds."""
        if self._min_delta is None:
            return 0.0
        return -self._min_delta


class BrokerTelemetry:
    """The broker's observability hub: registry + events + clocks.

    One instance per broker, always on — counters are cheap, and the
    event buffer only fills while a campaign runs.  Events additionally
    flow to the local :data:`~repro.obs.OBS` sinks when observability is
    enabled in the broker process (``farm-broker --trace``).
    """

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()
        self._lock = threading.Lock()
        self._events: List[Dict[str, object]] = []
        self._events_dropped = 0
        self._clocks: Dict[str, ClockEstimator] = {}

    # -- events ----------------------------------------------------------------

    def emit(
        self,
        event: Event,
        campaign: Optional[str] = None,
        span_id: Optional[str] = None,
    ) -> Dict[str, object]:
        """Stamp, buffer and (if enabled) publish one broker event.

        The payload is pre-stamped so :class:`~repro.obs.events.
        TraceWriter`'s ``setdefault`` calls leave it untouched — the
        broker's threads never touch the global trace context.
        """
        payload = event.to_dict()
        payload["ts"] = time.time()
        if campaign is not None:
            payload["trace_id"] = campaign
        if span_id is not None:
            payload["span_id"] = span_id
        worker = payload.get("worker")
        if worker is None:
            payload["worker"] = "broker"
        with self._lock:
            if len(self._events) < EVENT_BUFFER_LIMIT:
                self._events.append(payload)
            else:
                self._events_dropped += 1
        if OBS.enabled:
            OBS.bus.emit(payload)
        return payload

    def drain_events(self) -> List[Dict[str, object]]:
        """Hand over (and clear) the buffered event payloads."""
        with self._lock:
            events, self._events = self._events, []
            self._events_dropped = 0
            return events

    @property
    def events_dropped(self) -> int:
        """Events discarded because the campaign buffer overflowed."""
        with self._lock:
            return self._events_dropped

    # -- clock skew ------------------------------------------------------------

    def observe_clock(self, name: str, stamp: object) -> None:
        """Fold a frame's ``clock`` stamp into ``name``'s estimator."""
        if not isinstance(stamp, dict):
            return
        try:
            wall = float(stamp["wall"])
            mono = float(stamp["mono"])
        except (KeyError, TypeError, ValueError):
            return
        with self._lock:
            estimator = self._clocks.get(name)
            if estimator is None:
                estimator = self._clocks[name] = ClockEstimator()
        estimator.observe(wall, mono)

    def clock_offsets(self) -> Dict[str, float]:
        """Current ``name → remote − broker`` offset estimates."""
        with self._lock:
            estimators = dict(self._clocks)
        return {name: est.offset_s for name, est in estimators.items()}

    def forget_clock(self, name: str) -> None:
        """Drop ``name``'s estimator (client disconnected)."""
        with self._lock:
            self._clocks.pop(name, None)


class _MetricsHandler(BaseHTTPRequestHandler):
    """``GET /metrics`` (Prometheus text) and ``GET /healthz``."""

    server: "MetricsHTTPServer"
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            body = self.server.render().encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        elif path == "/healthz":
            body = b'{"status": "ok"}\n'
            content_type = "application/json"
        else:
            body = b"not found\n"
            self.send_response(404)
            self.send_header("Content-Type", "text/plain")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass  # scrapes are not worth a stderr line each


class MetricsHTTPServer:
    """Tiny embedded scrape endpoint for the broker's registry.

    ``render`` is called per scrape, so the broker can set
    sampled-at-scrape-time gauges (queue depth, rates) before handing
    the registry to :func:`~repro.obs.exposition.render_exposition`.
    """

    def __init__(
        self, host: str, port: int, render: Callable[[], str]
    ) -> None:
        self.render = render
        self._httpd = ThreadingHTTPServer((host, port), _MetricsHandler)
        self._httpd.daemon_threads = True
        self._httpd.render = render  # type: ignore[attr-defined]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="broker-metrics",
            daemon=True,
        )

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — port resolved when 0 was requested."""
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    def start(self) -> None:
        """Serve scrapes on a daemon thread."""
        self._thread.start()

    def shutdown(self) -> None:
        """Stop serving and release the socket."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread.is_alive():
            self._thread.join(timeout=5.0)


def fetch_broker_stats(
    address: str, timeout_s: float = 5.0
) -> Dict[str, object]:
    """One ``stats`` frame from a running broker, over the farm protocol.

    Speaks the same hello handshake as workers/clients (role
    ``stats``), asks once, and hangs up — the transport behind
    ``repro farm-top`` and the ``serve --broker`` gauge proxy.
    """
    host, port = parse_address(address)
    with socket.create_connection((host, port), timeout=timeout_s) as sock:
        send_frame(
            sock,
            {
                "type": "hello",
                "role": "stats",
                "version": PROTOCOL_VERSION,
                "worker": "farm-top",
                "clock": clock_stamp(),
            },
        )
        welcome = recv_frame(sock)
        if welcome is None or welcome.get("type") != "welcome":
            raise ConnectionError(
                f"broker at {address} refused the stats handshake: {welcome!r}"
            )
        send_frame(sock, {"type": "stats"})
        frame = recv_frame(sock)
        if frame is None or frame.get("type") != "stats":
            raise ConnectionError(
                f"broker at {address} sent no stats frame: {frame!r}"
            )
        try:
            send_frame(sock, {"type": "goodbye"})
        except OSError:
            pass
    payload = frame.get("stats")
    if not isinstance(payload, dict):
        raise ConnectionError(f"malformed stats frame from {address}")
    return payload


def render_metrics_json(stats: Dict[str, object]) -> str:
    """``stats`` payload as stable JSON (for ``farm-top --once --json``)."""
    return json.dumps(stats, sort_keys=True, indent=2)
