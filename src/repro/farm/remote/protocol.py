"""Wire protocol of the distributed tester farm.

Everything on a farm socket is a **frame**: a 4-byte big-endian length
prefix followed by one UTF-8 JSON object.  Binary payloads — pickled
:class:`~repro.farm.workunit.WorkUnit`\\ s, outcomes, capture configs and
:class:`~repro.obs.collector.WorkerTelemetry` — travel as base64 strings
inside the JSON (the same encoding the checkpoint layer uses), so a
frame is always inspectable with nothing but ``json.loads``.

Frame vocabulary (the ``type`` field):

===============  =========  ====================================================
frame            direction  meaning
===============  =========  ====================================================
``hello``        →  broker  first frame of every connection; declares
                            ``role`` (``client``/``worker``/``stats``),
                            protocol ``version``, a ``worker`` name, an
                            optional ``campaign`` pin and a ``clock``
                            stamp (see below)
``welcome``      broker  →  hello accepted (carries the active campaign id)
``reject``       broker  →  hello refused (version/campaign mismatch)
``submit``       client  →  a batch of units + runner reference + capture
                            config + retry/lease policy
``accepted``     broker  →  submit acknowledged (pending/restored counts)
``request``      worker  →  pull one unit (work-stealing: workers ask,
                            the broker never pushes ahead of demand)
``unit``         broker  →  one leased unit (key, attempt, lease seconds)
``idle``         broker  →  nothing to steal right now; poll again later
``heartbeat``    worker  →  still executing (one-way, extends the lease)
``result``       worker  →  unit finished (outcome + telemetry) or failed
``ack``          broker  →  result accepted or suppressed as a duplicate
``leased``       broker  →  (to client) a worker took a unit
``retry``        broker  →  (to client) a unit will be re-issued
``done``         broker  →  (to client) a unit's accepted result
``unit_failed``  broker  →  (to client) a unit exhausted its attempts
``campaign_done`` broker →  (to client) every unit is done or failed;
                            also carries the broker's buffered telemetry
                            events and per-worker ``clock`` offsets
``stats``        both       (role ``stats``) observer asks; broker
                            answers with the live farm snapshot that
                            ``repro farm-top`` renders
``shutdown``     broker  →  the broker is going away; workers exit
``goodbye``      both    →  orderly connection close
===============  =========  ====================================================

The protocol is deliberately synchronous on the worker side — every
``request``/``result`` gets exactly one reply, and ``heartbeat`` gets
none — so a worker needs no frame correlation: the main thread is the
only reader, and the heartbeat thread only ever writes.

Clock stamps: ``hello``, ``submit`` and ``heartbeat`` frames may carry
``"clock": {"wall": time.time(), "mono": time.monotonic()}`` taken at
send time.  The broker folds each stamp into a per-peer min-filter
offset estimate (:mod:`repro.farm.remote.telemetry`) so multi-host
timelines can be aligned; peers that omit the stamp simply get no
correction.  All of these additions are *additive* — unknown frame
types and extra keys are ignored by every peer — so the protocol
version stays 1.

Trust model: workers execute the module-level callable the dispatch
frame *names* (``"package.module:function"``) and unpickle unit
payloads.  A farm is a trusted cluster of identical checkouts — never
point a worker at a broker you do not control.
"""

from __future__ import annotations

import base64
import importlib
import json
import pickle
import socket
import struct
from typing import Any, Callable, Dict, Optional, Tuple

#: Protocol revision; bumped on any incompatible frame change.  The
#: broker refuses hellos from another revision instead of mis-parsing.
PROTOCOL_VERSION = 1

#: Upper bound on one frame.  Generous — a frame carries at most one
#: unit's pickled payload plus its telemetry spool — but finite, so a
#: corrupt length prefix cannot make a peer try to allocate gigabytes.
MAX_FRAME_BYTES = 128 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class ProtocolError(RuntimeError):
    """A malformed, oversized or mid-frame-truncated frame."""


def send_frame(sock: socket.socket, frame: Dict[str, Any]) -> None:
    """Serialize and send one frame (length prefix + JSON body)."""
    body = json.dumps(frame, sort_keys=True).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte bound"
        )
    sock.sendall(_LENGTH.pack(len(body)) + body)


def _recv_exact(sock: socket.socket, size: int) -> Optional[bytes]:
    """``size`` bytes, ``None`` on clean EOF *before* the first byte."""
    chunks = []
    received = 0
    while received < size:
        chunk = sock.recv(min(65536, size - received))
        if not chunk:
            if received == 0:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({received}/{size} bytes)"
            )
        chunks.append(chunk)
        received += len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on a clean EOF between frames.

    Raises
    ------
    ProtocolError
        Truncated frame, oversized length prefix, or a body that is not
        a JSON object.
    """
    prefix = _recv_exact(sock, _LENGTH.size)
    if prefix is None:
        return None
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte bound"
        )
    body = _recv_exact(sock, length)
    if body is None:
        raise ProtocolError("connection closed between length and body")
    try:
        frame = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame body is not JSON: {exc}") from exc
    if not isinstance(frame, dict):
        raise ProtocolError(
            f"frame body must be a JSON object, got {type(frame).__name__}"
        )
    return frame


def pack(obj: Any) -> str:
    """Pickle + base64: how binary payloads ride inside JSON frames."""
    return base64.b64encode(pickle.dumps(obj)).decode("ascii")


def unpack(text: str) -> Any:
    """Inverse of :func:`pack`."""
    return pickle.loads(base64.b64decode(text.encode("ascii")))


def runner_ref(runner: Callable) -> str:
    """The ``"module:qualname"`` reference a dispatch frame carries.

    Only module-level callables qualify — the same restriction the
    process pool's pickle-by-reference already imposes.
    """
    qualname = getattr(runner, "__qualname__", getattr(runner, "__name__", ""))
    module = getattr(runner, "__module__", "")
    if not module or not qualname or "<" in qualname or "." in qualname:
        raise ValueError(
            f"runner {runner!r} is not a module-level callable; remote "
            f"workers import runners by 'module:name' reference"
        )
    return f"{module}:{qualname}"


def resolve_runner(ref: str) -> Callable:
    """Import the callable a ``"module:name"`` reference names."""
    module_name, sep, attr = ref.partition(":")
    if not sep or not module_name or not attr or "." in attr:
        raise ProtocolError(f"malformed runner reference {ref!r}")
    module = importlib.import_module(module_name)
    runner = getattr(module, attr, None)
    if not callable(runner):
        raise ProtocolError(f"runner reference {ref!r} is not callable")
    return runner


def parse_address(address: str) -> Tuple[str, int]:
    """``"host:port"`` → ``(host, port)`` with a helpful error."""
    host, sep, port_text = address.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"broker address must be HOST:PORT, got {address!r}"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"broker address must be HOST:PORT, got {address!r}"
        ) from None
    if not 0 < port < 65536:
        raise ValueError(f"broker port out of range: {port}")
    return host, port
