"""Distributed tester farm: TCP broker, socket workers, remote backend.

The remote farm stretches :mod:`repro.farm` past one host:

* :class:`FarmBroker` (CLI: ``repro farm-broker``) — the hub.  Holds the
  campaign's pending queue, leases units to workers that pull them
  (work-stealing), expires silent leases, suppresses duplicate results
  and spools accepted ones for broker-restart resume.
* :func:`run_worker` (CLI: ``repro farm-worker --connect HOST:PORT``) —
  a socket worker.  Joins and leaves at any time; heartbeats while
  executing; ships outcome + :class:`~repro.obs.collector.
  WorkerTelemetry` back over the wire.
* :class:`RemoteExecutor` (CLI: ``--backend remote --broker HOST:PORT``)
  — the client-side :class:`~repro.farm.executor.ExecutorBackend`.
  Same deterministic-merge/checkpoint/RTP/telemetry contract as the
  serial and process-pool executors.
* :mod:`~repro.farm.remote.telemetry` — the broker's observability:
  typed control-plane events, a thread-safe metrics registry served as
  Prometheus text (``farm-broker --metrics-port``), per-worker clock
  offset estimation, and the ``stats`` frame behind ``repro farm-top``.

See :mod:`repro.farm.remote.protocol` for the frame vocabulary and
``docs/parallelism.md`` for the failure matrix.
"""

from repro.farm.remote.broker import (
    DEFAULT_LEASE_TIMEOUT_S,
    DEFAULT_POLL_S,
    FarmBroker,
    ResultSpool,
)
from repro.farm.remote.executor import RemoteExecutor, RemoteFarmError
from repro.farm.remote.leases import Lease, LeaseTable
from repro.farm.remote.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    pack,
    parse_address,
    recv_frame,
    resolve_runner,
    runner_ref,
    send_frame,
    unpack,
)
from repro.farm.remote.telemetry import (
    BrokerTelemetry,
    ClockEstimator,
    MetricsHTTPServer,
    clock_stamp,
    fetch_broker_stats,
)
from repro.farm.remote.worker import WorkerRejected, run_worker

__all__ = [
    "BrokerTelemetry",
    "ClockEstimator",
    "MetricsHTTPServer",
    "clock_stamp",
    "fetch_broker_stats",
    "DEFAULT_LEASE_TIMEOUT_S",
    "DEFAULT_POLL_S",
    "FarmBroker",
    "Lease",
    "LeaseTable",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RemoteExecutor",
    "RemoteFarmError",
    "ResultSpool",
    "WorkerRejected",
    "pack",
    "parse_address",
    "recv_frame",
    "resolve_runner",
    "run_worker",
    "runner_ref",
    "send_frame",
    "unpack",
]
