"""The farm broker: a TCP hub matching campaign units to socket workers.

One broker serves one campaign at a time (the submitting client owns it
until it finishes or the client disconnects) and any number of workers,
which may join and leave at any point:

* **Work-stealing dispatch** — workers *pull*: a ``request`` frame takes
  the next pending unit, so a fast worker simply asks more often and no
  static plan can strand a long unit behind a slow host.  The client
  still submits units in scheduler order (longest-expected-first), which
  seeds the queue well; after that, completion order is whatever the
  workers make of it — the client's executor merges deterministically
  by submission order regardless.
* **Leases + heartbeats** — every dispatched unit is leased (see
  :mod:`repro.farm.remote.leases`); workers heartbeat while executing.
  A lease that expires (worker killed, network gone, heartbeats too
  slow) re-queues the unit as a new attempt, up to the campaign's
  ``max_attempts``; exhaustion fails the unit and the client raises the
  same :class:`~repro.farm.executor.FarmExecutionError` a process pool
  would.
* **Duplicate suppression** — results are accepted once per unit,
  keyed on unit id + attempt bookkeeping in the lease table.  A
  presumed-dead worker delivering late, or a worker delivering the same
  frame twice, gets ``ack accepted=false`` and the result is dropped,
  so a unit can never be double-merged.
* **Shared result spool** — with a spool directory, accepted results
  are appended to a per-campaign JSONL file (same torn-line-tolerant
  discipline as the checkpoint layer).  A restarted broker serves those
  results straight from the spool when the same campaign is submitted
  again — any worker can resume any shard, and none of the finished
  ones re-run.

Pushes to the client happen under a per-campaign send lock from
whichever thread accepted the result; the client executor is always
draining its socket, so these sends cannot back up in practice (the
frames are small and the peer reads eagerly).
"""

from __future__ import annotations

import hashlib
import json
import logging
import socket
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Tuple, Union

from repro.farm.remote.leases import LeaseTable
from repro.farm.remote.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    recv_frame,
    send_frame,
)
from repro.ioutil import durable_append_line

logger = logging.getLogger("repro.farm.remote")

#: How long an idle worker is told to wait before asking again.
DEFAULT_POLL_S = 0.25

#: Default lease lifetime; generous against heartbeat jitter, small
#: enough that a SIGKILLed worker's units re-issue promptly.
DEFAULT_LEASE_TIMEOUT_S = 30.0

_SPOOL_SCHEMA = 1
_SPOOL_KIND = "repro.farm.remote.spool"


class ResultSpool:
    """Broker-side shared checkpoint: accepted results, one JSON line each.

    Stores the pickled-outcome payload exactly as it arrived (base64 in
    JSON) without ever unpickling it — the broker stays agnostic of the
    domain types inside.  Telemetry is *not* spooled: a spool-restored
    unit behaves like a checkpoint-skipped one (result present, worker
    trace absent), which is the existing resume semantics.
    """

    def __init__(self, path: Union[str, Path], campaign: str) -> None:
        self.path = Path(path)
        self.campaign = campaign
        self._handle = None

    def load(self) -> Dict[str, Dict[str, Any]]:
        """Spooled results keyed by unit key (torn lines dropped)."""
        results: Dict[str, Dict[str, Any]] = {}
        if not self.path.exists():
            return results
        with self.path.open("r") as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    logger.warning(
                        "spool %s: dropping corrupt line %d",
                        self.path, number,
                    )
                    continue
                if payload.get("kind") == _SPOOL_KIND:
                    continue
                if "key" in payload and "outcome" in payload:
                    results[str(payload["key"])] = payload
        return results

    def record(self, payload: Dict[str, Any]) -> None:
        """Append one accepted result, fsynced like a checkpoint line."""
        if self._handle is None or self._handle.closed:
            is_new = not self.path.exists() or self.path.stat().st_size == 0
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a")
            if is_new:
                header = {
                    "schema": _SPOOL_SCHEMA,
                    "kind": _SPOOL_KIND,
                    "campaign": self.campaign,
                }
                durable_append_line(
                    self._handle, json.dumps(header, sort_keys=True)
                )
        durable_append_line(
            self._handle, json.dumps(payload, sort_keys=True)
        )

    def close(self) -> None:
        if self._handle is not None and not self._handle.closed:
            self._handle.close()


class _Campaign:
    """State of the one active campaign: queue, leases, client socket."""

    def __init__(
        self,
        campaign_id: str,
        units: Dict[str, str],
        order: List[str],
        runner: str,
        config: Optional[str],
        max_attempts: int,
        lease_timeout_s: float,
        client: socket.socket,
        spool: Optional[ResultSpool],
    ) -> None:
        self.id = campaign_id
        self.units = units          # key -> packed WorkUnit
        self.order = order          # submission order (scheduler's)
        self.runner = runner
        self.config = config
        self.max_attempts = max_attempts
        self.leases = LeaseTable(lease_timeout_s)
        self.pending: Deque[str] = deque(order)
        self.failed: Dict[str, str] = {}
        self.client = client
        self.client_lock = threading.Lock()
        self.client_alive = True
        self.spool = spool
        self.reissues = 0

    @property
    def finished(self) -> bool:
        return (
            len(self.leases.completed) + len(self.failed) >= len(self.units)
        )

    def push(self, frame: Dict[str, Any]) -> None:
        """Send one frame to the campaign's client (best-effort)."""
        if not self.client_alive:
            return
        try:
            with self.client_lock:
                send_frame(self.client, frame)
        except OSError:
            self.client_alive = False


class FarmBroker:
    """Accepts client and worker connections; owns the campaign state.

    Parameters
    ----------
    host / port:
        Listen address; port 0 picks a free port (read it back from
        :attr:`address` after :meth:`start`).
    lease_timeout_s:
        Default lease lifetime; a client's ``submit`` may override it
        per campaign (``lease_s``).
    poll_s:
        Back-off told to idle workers, and the granularity of the
        lease-expiry sweep.
    spool_dir:
        Directory for per-campaign result spools (shared checkpoint);
        ``None`` disables spooling.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_timeout_s: float = DEFAULT_LEASE_TIMEOUT_S,
        poll_s: float = DEFAULT_POLL_S,
        spool_dir: Union[None, str, Path] = None,
    ) -> None:
        if lease_timeout_s <= 0:
            raise ValueError("lease_timeout_s must be positive")
        self.host = host
        self.port = port
        self.lease_timeout_s = lease_timeout_s
        self.poll_s = poll_s
        self.spool_dir = Path(spool_dir) if spool_dir is not None else None
        self._sock: Optional[socket.socket] = None
        self._stop = threading.Event()
        self._lock = threading.RLock()
        self._campaign: Optional[_Campaign] = None
        self._threads: List[threading.Thread] = []
        self._conn_seq = 0
        self.stats = {
            "campaigns": 0,
            "units_dispatched": 0,
            "units_completed": 0,
            "units_failed": 0,
            "units_restored": 0,
            "reissues": 0,
            "duplicates_dropped": 0,
            "stale_heartbeats": 0,
            "workers_seen": 0,
            "workers_rejected": 0,
        }

    # -- lifecycle --------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (valid after :meth:`start`)."""
        if self._sock is None:
            raise RuntimeError("broker is not started")
        addr = self._sock.getsockname()
        return addr[0], addr[1]

    def start(self) -> Tuple[str, int]:
        """Bind, listen, spawn accept + sweep threads; returns address."""
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self.host, self.port))
        sock.listen(64)
        sock.settimeout(0.2)
        self._sock = sock
        accept = threading.Thread(
            target=self._accept_loop, name="broker-accept", daemon=True
        )
        sweep = threading.Thread(
            target=self._sweep_loop, name="broker-sweep", daemon=True
        )
        self._threads = [accept, sweep]
        accept.start()
        sweep.start()
        return self.address

    def serve_forever(self) -> None:
        """Block until :meth:`shutdown` (for the CLI entry point)."""
        while not self._stop.wait(0.5):
            pass

    def shutdown(self) -> None:
        """Stop accepting, drop the campaign, join the service threads."""
        self._stop.set()
        with self._lock:
            campaign = self._campaign
            self._campaign = None
        if campaign is not None and campaign.spool is not None:
            campaign.spool.close()
        for thread in self._threads:
            thread.join(timeout=2.0)
        if self._sock is not None:
            self._sock.close()

    def __enter__(self) -> "FarmBroker":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- accept / sweep threads -------------------------------------------------
    def _accept_loop(self) -> None:
        assert self._sock is not None
        while not self._stop.is_set():
            try:
                conn, peer = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            with self._lock:
                self._conn_seq += 1
                ident = self._conn_seq
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn, peer, ident),
                name=f"broker-conn-{ident}",
                daemon=True,
            )
            thread.start()

    def _sweep_loop(self) -> None:
        while not self._stop.is_set():
            interval = max(0.05, min(self.poll_s, self.lease_timeout_s / 4))
            if self._stop.wait(interval):
                return
            with self._lock:
                campaign = self._campaign
                if campaign is None or campaign.finished:
                    continue
                for lease in campaign.leases.expire(time.monotonic()):
                    self._requeue_or_fail(
                        campaign,
                        lease.key,
                        lease.attempt,
                        f"lease expired after {campaign.leases.timeout_s:g}s "
                        f"on {lease.worker}",
                    )
                self._maybe_finish(campaign)

    # -- connection handling ----------------------------------------------------
    def _serve_connection(
        self, conn: socket.socket, peer, ident: int
    ) -> None:
        try:
            try:
                hello = recv_frame(conn)
            except ProtocolError:
                return
            if hello is None or hello.get("type") != "hello":
                return
            if hello.get("version") != PROTOCOL_VERSION:
                send_frame(conn, {
                    "type": "reject",
                    "reason": (
                        f"protocol version {hello.get('version')!r} != "
                        f"{PROTOCOL_VERSION}"
                    ),
                })
                return
            role = hello.get("role")
            if role == "worker":
                self._serve_worker(conn, hello, ident)
            elif role == "client":
                self._serve_client(conn, hello)
            else:
                send_frame(
                    conn, {"type": "reject", "reason": f"unknown role {role!r}"}
                )
        except (OSError, ProtocolError) as exc:
            logger.debug("connection %d (%s) dropped: %s", ident, peer, exc)
        finally:
            conn.close()

    # -- client side ------------------------------------------------------------
    def _serve_client(self, conn: socket.socket, hello: Dict[str, Any]) -> None:
        with self._lock:
            active = self._campaign
            if (
                active is not None
                and not active.finished
                and active.client_alive
            ):
                send_frame(conn, {
                    "type": "reject",
                    "reason": (
                        f"campaign {active.id!r} is still active; "
                        f"one campaign at a time"
                    ),
                })
                return
        send_frame(conn, {"type": "welcome", "version": PROTOCOL_VERSION})
        submit = recv_frame(conn)
        if submit is None:
            return
        if submit.get("type") != "submit":
            send_frame(conn, {
                "type": "reject",
                "reason": f"expected submit, got {submit.get('type')!r}",
            })
            return
        campaign = self._accept_submit(conn, submit)
        if campaign is None:
            return
        try:
            # The client sends nothing else until the campaign ends; a
            # frame of None (EOF) or a goodbye means it is gone.  Either
            # way the campaign dies with its client.
            while True:
                frame = recv_frame(conn)
                if frame is None or frame.get("type") == "goodbye":
                    return
        except ProtocolError:
            return
        finally:
            with self._lock:
                campaign.client_alive = False
                if self._campaign is campaign:
                    if not campaign.finished:
                        logger.warning(
                            "client for campaign %r disconnected with "
                            "%d unit(s) unfinished; campaign dropped",
                            campaign.id,
                            len(campaign.units)
                            - len(campaign.leases.completed)
                            - len(campaign.failed),
                        )
                    self._campaign = None
            if campaign.spool is not None:
                campaign.spool.close()

    def _spool_for(self, campaign_id: str) -> Optional[ResultSpool]:
        if self.spool_dir is None:
            return None
        digest = hashlib.sha256(campaign_id.encode("utf-8")).hexdigest()[:16]
        return ResultSpool(
            self.spool_dir / f"spool-{digest}.jsonl", campaign_id
        )

    def _accept_submit(
        self, conn: socket.socket, submit: Dict[str, Any]
    ) -> Optional[_Campaign]:
        campaign_id = str(submit.get("campaign") or "farm")
        raw_units = submit.get("units")
        if not isinstance(raw_units, list):
            send_frame(
                conn, {"type": "reject", "reason": "submit carries no units"}
            )
            return None
        units: Dict[str, str] = {}
        order: List[str] = []
        for entry in raw_units:
            key = str(entry["key"])
            units[key] = str(entry["unit"])
            order.append(key)
        max_attempts = max(1, int(submit.get("max_attempts") or 1))
        lease_s = float(submit.get("lease_s") or self.lease_timeout_s)
        spool = self._spool_for(campaign_id)
        campaign = _Campaign(
            campaign_id=campaign_id,
            units=units,
            order=order,
            runner=str(submit.get("runner") or ""),
            config=submit.get("config"),
            max_attempts=max_attempts,
            lease_timeout_s=lease_s,
            client=conn,
            spool=spool,
        )
        restored: List[Dict[str, Any]] = []
        if spool is not None:
            for key, payload in spool.load().items():
                if key in units and key not in campaign.leases.completed:
                    campaign.leases.completed[key] = int(
                        payload.get("attempt", 1)
                    )
                    restored.append(payload)
            if restored:
                done = set(campaign.leases.completed)
                campaign.pending = deque(
                    key for key in order if key not in done
                )
        with self._lock:
            self._campaign = campaign
            self.stats["campaigns"] += 1
            self.stats["units_restored"] += len(restored)
        logger.info(
            "campaign %r accepted: %d unit(s), %d restored from spool",
            campaign_id, len(units), len(restored),
        )
        send_frame(conn, {
            "type": "accepted",
            "campaign": campaign_id,
            "pending": len(campaign.pending),
            "restored": len(restored),
        })
        for payload in restored:
            campaign.push({
                "type": "done",
                "key": payload["key"],
                "attempt": int(payload.get("attempt", 1)),
                "worker": str(payload.get("worker", "spool")),
                "elapsed_s": float(payload.get("elapsed_s", 0.0)),
                "outcome": payload["outcome"],
                "telemetry": None,
                "restored": True,
            })
        with self._lock:
            self._maybe_finish(campaign)
        return campaign

    # -- worker side ------------------------------------------------------------
    def _serve_worker(
        self, conn: socket.socket, hello: Dict[str, Any], ident: int
    ) -> None:
        name = str(hello.get("worker") or f"worker-{ident}")
        pin = hello.get("campaign")
        worker_id = f"{name}#{ident}"
        with self._lock:
            active = self._campaign
            if (
                pin
                and active is not None
                and not active.finished
                and active.id != pin
            ):
                self.stats["workers_rejected"] += 1
                send_frame(conn, {
                    "type": "reject",
                    "reason": (
                        f"stale campaign {pin!r}; the active campaign is "
                        f"{active.id!r}"
                    ),
                })
                return
            self.stats["workers_seen"] += 1
        send_frame(conn, {"type": "welcome", "version": PROTOCOL_VERSION})
        logger.info("worker %s connected", worker_id)
        try:
            while not self._stop.is_set():
                frame = recv_frame(conn)
                if frame is None or frame.get("type") == "goodbye":
                    return
                kind = frame.get("type")
                if kind == "request":
                    send_frame(conn, self._next_unit(worker_id, name, pin))
                elif kind == "result":
                    send_frame(conn, self._take_result(worker_id, name, frame))
                elif kind == "heartbeat":
                    self._take_heartbeat(worker_id, frame)
                # unknown frame types are ignored (forward compatibility)
        finally:
            self._release_worker(worker_id)
            logger.info("worker %s disconnected", worker_id)

    def _next_unit(
        self, worker_id: str, name: str, pin: Optional[str]
    ) -> Dict[str, Any]:
        with self._lock:
            campaign = self._campaign
            if (
                campaign is None
                or campaign.finished
                or (pin and campaign.id != pin)
                or not campaign.pending
            ):
                return {"type": "idle", "poll_s": self.poll_s}
            key = campaign.pending.popleft()
            lease = campaign.leases.issue(key, worker_id, time.monotonic())
            self.stats["units_dispatched"] += 1
            frame = {
                "type": "unit",
                "campaign": campaign.id,
                "key": key,
                "attempt": lease.attempt,
                "unit": campaign.units[key],
                "runner": campaign.runner,
                "config": campaign.config,
                "lease_s": campaign.leases.timeout_s,
            }
        campaign.push({
            "type": "leased",
            "key": key,
            "attempt": lease.attempt,
            "worker": name,
        })
        return frame

    def _take_result(
        self, worker_id: str, name: str, frame: Dict[str, Any]
    ) -> Dict[str, Any]:
        key = str(frame.get("key"))
        attempt = int(frame.get("attempt") or 0)
        with self._lock:
            campaign = self._campaign
            if campaign is None or key not in campaign.units:
                return {
                    "type": "ack", "accepted": False,
                    "reason": "no active campaign for this unit",
                }
            if not frame.get("ok"):
                released = campaign.leases.release(key, attempt)
                if released is None:
                    # the lease already expired and was handled
                    return {
                        "type": "ack", "accepted": False,
                        "reason": "attempt is no longer leased",
                    }
                self._requeue_or_fail(
                    campaign, key, attempt,
                    str(frame.get("error") or "unit runner failed"),
                )
                self._maybe_finish(campaign)
                return {"type": "ack", "accepted": True}
            if not campaign.leases.complete(key, attempt):
                self.stats["duplicates_dropped"] += 1
                return {
                    "type": "ack", "accepted": False,
                    "reason": "duplicate delivery suppressed",
                }
            # A late result can race its own re-issue: the unit may be
            # back in pending (expired, not yet re-leased).  Completing
            # it must also pull it from the queue or a worker would run
            # a completed unit.
            if key in campaign.pending:
                campaign.pending.remove(key)
            campaign.failed.pop(key, None)
            self.stats["units_completed"] += 1
            payload = {
                "key": key,
                "attempt": attempt,
                "worker": name,
                "elapsed_s": float(frame.get("elapsed_s") or 0.0),
                "outcome": str(frame.get("outcome")),
            }
            if campaign.spool is not None:
                try:
                    campaign.spool.record(payload)
                except OSError as exc:
                    logger.warning("spool write failed: %s", exc)
        campaign.push({
            "type": "done",
            "key": key,
            "attempt": attempt,
            "worker": name,
            "elapsed_s": payload["elapsed_s"],
            "outcome": payload["outcome"],
            "telemetry": frame.get("telemetry"),
        })
        with self._lock:
            self._maybe_finish(campaign)
        return {"type": "ack", "accepted": True}

    def _take_heartbeat(self, worker_id: str, frame: Dict[str, Any]) -> None:
        with self._lock:
            campaign = self._campaign
            if campaign is None:
                return
            extended = campaign.leases.heartbeat(
                str(frame.get("key")),
                int(frame.get("attempt") or 0),
                worker_id,
                time.monotonic(),
            )
            if not extended:
                self.stats["stale_heartbeats"] += 1

    def _release_worker(self, worker_id: str) -> None:
        with self._lock:
            campaign = self._campaign
            if campaign is None:
                return
            for lease in campaign.leases.release_worker(worker_id):
                self._requeue_or_fail(
                    campaign, lease.key, lease.attempt,
                    f"worker {lease.worker} disconnected",
                )
            self._maybe_finish(campaign)

    # -- shared campaign bookkeeping (call with the lock held) -----------------
    def _requeue_or_fail(
        self, campaign: _Campaign, key: str, attempt: int, reason: str
    ) -> None:
        if key in campaign.leases.completed or key in campaign.failed:
            return
        if campaign.leases.attempts.get(key, 0) >= campaign.max_attempts:
            campaign.failed[key] = reason
            self.stats["units_failed"] += 1
            campaign.push({"type": "unit_failed", "key": key, "reason": reason})
            return
        campaign.pending.append(key)
        campaign.reissues += 1
        self.stats["reissues"] += 1
        campaign.push({
            "type": "retry", "key": key, "attempt": attempt, "reason": reason,
        })

    def _maybe_finish(self, campaign: _Campaign) -> None:
        if not campaign.finished or getattr(campaign, "_announced", False):
            return
        campaign._announced = True
        campaign.push({
            "type": "campaign_done",
            "campaign": campaign.id,
            "completed": len(campaign.leases.completed),
            "failed": sorted(campaign.failed),
            "duplicates_dropped": campaign.leases.duplicates,
            "reissues": campaign.reissues,
        })
        logger.info(
            "campaign %r finished: %d completed, %d failed, %d reissue(s)",
            campaign.id, len(campaign.leases.completed),
            len(campaign.failed), campaign.reissues,
        )
