"""The farm broker: a TCP hub matching campaign units to socket workers.

One broker serves one campaign at a time (the submitting client owns it
until it finishes or the client disconnects) and any number of workers,
which may join and leave at any point:

* **Work-stealing dispatch** — workers *pull*: a ``request`` frame takes
  the next pending unit, so a fast worker simply asks more often and no
  static plan can strand a long unit behind a slow host.  The client
  still submits units in scheduler order (longest-expected-first), which
  seeds the queue well; after that, completion order is whatever the
  workers make of it — the client's executor merges deterministically
  by submission order regardless.
* **Leases + heartbeats** — every dispatched unit is leased (see
  :mod:`repro.farm.remote.leases`); workers heartbeat while executing.
  A lease that expires (worker killed, network gone, heartbeats too
  slow) re-queues the unit as a new attempt, up to the campaign's
  ``max_attempts``; exhaustion fails the unit and the client raises the
  same :class:`~repro.farm.executor.FarmExecutionError` a process pool
  would.
* **Duplicate suppression** — results are accepted once per unit,
  keyed on unit id + attempt bookkeeping in the lease table.  A
  presumed-dead worker delivering late, or a worker delivering the same
  frame twice, gets ``ack accepted=false`` and the result is dropped,
  so a unit can never be double-merged.
* **Shared result spool** — with a spool directory, accepted results
  are appended to a per-campaign JSONL file (same torn-line-tolerant
  discipline as the checkpoint layer).  A restarted broker serves those
  results straight from the spool when the same campaign is submitted
  again — any worker can resume any shard, and none of the finished
  ones re-run.

Pushes to the client happen under a per-campaign send lock from
whichever thread accepted the result; the client executor is always
draining its socket, so these sends cannot back up in practice (the
frames are small and the peer reads eagerly).
"""

from __future__ import annotations

import hashlib
import json
import logging
import socket
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Tuple, Union

from repro.farm.remote.leases import LeaseTable
from repro.farm.remote.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    recv_frame,
    send_frame,
)
from repro.farm.remote.telemetry import BrokerTelemetry, MetricsHTTPServer
from repro.ioutil import durable_append_line
from repro.obs.events import (
    BrokerCampaignStarted,
    DuplicateSuppressed,
    LeaseCompleted,
    LeaseExpired,
    LeaseHeartbeat,
    LeaseIssued,
    LeaseReissued,
    SpoolRestored,
    WorkerJoined,
    WorkerLeft,
)
from repro.obs.exposition import render_exposition

logger = logging.getLogger("repro.farm.remote")

#: How long an idle worker is told to wait before asking again.
DEFAULT_POLL_S = 0.25

#: Default lease lifetime; generous against heartbeat jitter, small
#: enough that a SIGKILLed worker's units re-issue promptly.
DEFAULT_LEASE_TIMEOUT_S = 30.0

_SPOOL_SCHEMA = 1
_SPOOL_KIND = "repro.farm.remote.spool"


class ResultSpool:
    """Broker-side shared checkpoint: accepted results, one JSON line each.

    Stores the pickled-outcome payload exactly as it arrived (base64 in
    JSON) without ever unpickling it — the broker stays agnostic of the
    domain types inside.  Telemetry is *not* spooled: a spool-restored
    unit behaves like a checkpoint-skipped one (result present, worker
    trace absent), which is the existing resume semantics.
    """

    def __init__(self, path: Union[str, Path], campaign: str) -> None:
        self.path = Path(path)
        self.campaign = campaign
        self._handle = None

    def load(self) -> Tuple[Dict[str, Dict[str, Any]], int]:
        """Spooled results keyed by unit key, plus the dropped-line count.

        Tolerant reader, same discipline as ``read_trace``: a torn or
        corrupt line (truncated JSON from a crash mid-append, a payload
        that is not a result record) is counted and skipped, never
        fatal — the campaign re-runs those units instead of refusing to
        start.  The count surfaces in the ``spool_restored`` event so a
        recovering operator can see how much the spool lost.
        """
        results: Dict[str, Dict[str, Any]] = {}
        dropped = 0
        if not self.path.exists():
            return results, dropped
        with self.path.open("r") as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    logger.warning(
                        "spool %s: dropping corrupt line %d",
                        self.path, number,
                    )
                    dropped += 1
                    continue
                if not isinstance(payload, dict):
                    logger.warning(
                        "spool %s: dropping non-record line %d",
                        self.path, number,
                    )
                    dropped += 1
                    continue
                if payload.get("kind") == _SPOOL_KIND:
                    continue
                if "key" in payload and "outcome" in payload:
                    results[str(payload["key"])] = payload
                else:
                    logger.warning(
                        "spool %s: dropping incomplete record on line %d",
                        self.path, number,
                    )
                    dropped += 1
        return results, dropped

    def record(self, payload: Dict[str, Any]) -> None:
        """Append one accepted result, fsynced like a checkpoint line."""
        if self._handle is None or self._handle.closed:
            is_new = not self.path.exists() or self.path.stat().st_size == 0
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a")
            if is_new:
                header = {
                    "schema": _SPOOL_SCHEMA,
                    "kind": _SPOOL_KIND,
                    "campaign": self.campaign,
                }
                durable_append_line(
                    self._handle, json.dumps(header, sort_keys=True)
                )
        durable_append_line(
            self._handle, json.dumps(payload, sort_keys=True)
        )

    def close(self) -> None:
        if self._handle is not None and not self._handle.closed:
            self._handle.close()


class _WorkerState:
    """Per-connection worker bookkeeping for stats and throughput."""

    __slots__ = (
        "name", "worker_id", "connected_mono", "completed", "failed",
        "last_seen_mono",
    )

    def __init__(self, name: str, worker_id: str) -> None:
        self.name = name
        self.worker_id = worker_id
        self.connected_mono = time.monotonic()
        self.completed = 0
        self.failed = 0
        self.last_seen_mono = self.connected_mono


class _Campaign:
    """State of the one active campaign: queue, leases, client socket."""

    def __init__(
        self,
        campaign_id: str,
        units: Dict[str, str],
        order: List[str],
        runner: str,
        config: Optional[str],
        max_attempts: int,
        lease_timeout_s: float,
        client: socket.socket,
        spool: Optional[ResultSpool],
    ) -> None:
        self.id = campaign_id
        self.units = units          # key -> packed WorkUnit
        self.order = order          # submission order (scheduler's)
        self.runner = runner
        self.config = config
        self.max_attempts = max_attempts
        self.leases = LeaseTable(lease_timeout_s)
        self.pending: Deque[str] = deque(order)
        self.failed: Dict[str, str] = {}
        self.client = client
        self.client_lock = threading.Lock()
        self.client_alive = True
        self.spool = spool
        self.reissues = 0
        #: The hello name of the submitting client — keys its clock
        #: offset estimate in the broker telemetry.
        self.client_name = "client"

    @property
    def finished(self) -> bool:
        return (
            len(self.leases.completed) + len(self.failed) >= len(self.units)
        )

    def push(self, frame: Dict[str, Any]) -> None:
        """Send one frame to the campaign's client (best-effort)."""
        if not self.client_alive:
            return
        try:
            with self.client_lock:
                send_frame(self.client, frame)
        except OSError:
            self.client_alive = False


class FarmBroker:
    """Accepts client and worker connections; owns the campaign state.

    Parameters
    ----------
    host / port:
        Listen address; port 0 picks a free port (read it back from
        :attr:`address` after :meth:`start`).
    lease_timeout_s:
        Default lease lifetime; a client's ``submit`` may override it
        per campaign (``lease_s``).
    poll_s:
        Back-off told to idle workers, and the granularity of the
        lease-expiry sweep.
    spool_dir:
        Directory for per-campaign result spools (shared checkpoint);
        ``None`` disables spooling.
    metrics_port:
        When given, :meth:`start` also binds a tiny HTTP endpoint on
        this port (0 picks a free one; see :attr:`metrics_address`)
        serving ``GET /metrics`` as Prometheus text.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_timeout_s: float = DEFAULT_LEASE_TIMEOUT_S,
        poll_s: float = DEFAULT_POLL_S,
        spool_dir: Union[None, str, Path] = None,
        metrics_port: Optional[int] = None,
    ) -> None:
        if lease_timeout_s <= 0:
            raise ValueError("lease_timeout_s must be positive")
        self.host = host
        self.port = port
        self.lease_timeout_s = lease_timeout_s
        self.poll_s = poll_s
        self.spool_dir = Path(spool_dir) if spool_dir is not None else None
        self.metrics_port = metrics_port
        self.telemetry = BrokerTelemetry()
        self._metrics_server: Optional[MetricsHTTPServer] = None
        self._sock: Optional[socket.socket] = None
        self._stop = threading.Event()
        self._lock = threading.RLock()
        self._campaign: Optional[_Campaign] = None
        self._threads: List[threading.Thread] = []
        self._conn_seq = 0
        self._started_mono = time.monotonic()
        self._last_dispatch_mono: Optional[float] = None
        self._workers: Dict[str, _WorkerState] = {}
        self.stats = {
            "campaigns": 0,
            "units_dispatched": 0,
            "units_completed": 0,
            "units_failed": 0,
            "units_restored": 0,
            "spool_dropped": 0,
            "reissues": 0,
            "duplicates_dropped": 0,
            "stale_heartbeats": 0,
            "workers_seen": 0,
            "workers_left": 0,
            "workers_rejected": 0,
        }

    # -- lifecycle --------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (valid after :meth:`start`)."""
        if self._sock is None:
            raise RuntimeError("broker is not started")
        addr = self._sock.getsockname()
        return addr[0], addr[1]

    @property
    def metrics_address(self) -> Tuple[str, int]:
        """The metrics endpoint's ``(host, port)`` (needs ``metrics_port``)."""
        if self._metrics_server is None:
            raise RuntimeError("broker has no metrics endpoint")
        return self._metrics_server.address

    def start(self) -> Tuple[str, int]:
        """Bind, listen, spawn accept + sweep threads; returns address."""
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self.host, self.port))
        sock.listen(64)
        sock.settimeout(0.2)
        self._sock = sock
        self._started_mono = time.monotonic()
        if self.metrics_port is not None:
            self._metrics_server = MetricsHTTPServer(
                self.host, self.metrics_port, self.metrics_exposition
            )
            self._metrics_server.start()
        accept = threading.Thread(
            target=self._accept_loop, name="broker-accept", daemon=True
        )
        sweep = threading.Thread(
            target=self._sweep_loop, name="broker-sweep", daemon=True
        )
        self._threads = [accept, sweep]
        accept.start()
        sweep.start()
        return self.address

    def serve_forever(self) -> None:
        """Block until :meth:`shutdown` (for the CLI entry point)."""
        while not self._stop.wait(0.5):
            pass

    def shutdown(self) -> None:
        """Stop accepting, drop the campaign, join the service threads."""
        self._stop.set()
        with self._lock:
            campaign = self._campaign
            self._campaign = None
        if campaign is not None and campaign.spool is not None:
            campaign.spool.close()
        if self._metrics_server is not None:
            self._metrics_server.shutdown()
            self._metrics_server = None
        for thread in self._threads:
            thread.join(timeout=2.0)
        if self._sock is not None:
            self._sock.close()

    def __enter__(self) -> "FarmBroker":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- observability surfaces -------------------------------------------------
    def metrics_exposition(self) -> str:
        """The ``/metrics`` body: counters/histograms + live gauges.

        Counter and histogram families accumulate as the campaign runs
        (``farm.lease_issued``, ``farm.lease_age_seconds``, …); queue
        depth, rates and per-worker throughput are sampled at scrape
        time, because gauges describe *now*.
        """
        metrics = self.telemetry.metrics
        gauge = metrics.gauge
        now = time.monotonic()
        with self._lock:
            campaign = self._campaign
            dispatched = self.stats["units_dispatched"]
            seen = self.stats["workers_seen"]
            gauge("farm.uptime_seconds").set(max(0.0, now - self._started_mono))
            gauge("farm.workers_connected").set(float(len(self._workers)))
            gauge("farm.campaign_active").set(
                1.0 if campaign is not None and not campaign.finished else 0.0
            )
            queue_depth = len(campaign.pending) if campaign is not None else 0
            leases_active = (
                campaign.leases.active() if campaign is not None else 0
            )
            gauge("farm.queue_depth").set(float(queue_depth))
            gauge("farm.leases_active").set(float(leases_active))
            gauge("farm.reissue_rate").set(
                self.stats["reissues"] / dispatched if dispatched else 0.0
            )
            gauge("farm.duplicate_rate").set(
                self.stats["duplicates_dropped"] / dispatched
                if dispatched else 0.0
            )
            # Churn only signals while work is outstanding: after a
            # campaign finishes, workers idling out is normal, not an
            # incident.
            campaign_active = campaign is not None and not campaign.finished
            gauge("farm.worker_churn").set(
                self.stats["workers_left"] / seen
                if seen and campaign_active else 0.0
            )
            stalled = (
                queue_depth > 0
                and not self._workers
                and self._last_dispatch_mono is not None
            )
            gauge("farm.queue_stall_seconds").set(
                max(0.0, now - self._last_dispatch_mono) if stalled else 0.0
            )
            for state in self._workers.values():
                minutes = max(1e-9, (now - state.connected_mono) / 60.0)
                gauge(f"farm.worker.upm.{state.name}").set(
                    state.completed / minutes
                )
        return render_exposition(metrics)

    def stats_payload(self) -> Dict[str, Any]:
        """The ``stats`` protocol frame's body (``farm-top``'s feed)."""
        now = time.monotonic()
        offsets = self.telemetry.clock_offsets()
        with self._lock:
            campaign = self._campaign
            leases = (
                dict(campaign.leases.leases)
                if campaign is not None else {}
            )
            by_worker: Dict[str, Dict[str, Any]] = {}
            for lease in leases.values():
                by_worker[lease.worker] = {
                    "key": lease.key,
                    "attempt": lease.attempt,
                    "age_s": max(0.0, now - lease.issued_ts),
                }
            workers = []
            for state in sorted(
                self._workers.values(), key=lambda s: s.name
            ):
                minutes = max(1e-9, (now - state.connected_mono) / 60.0)
                workers.append({
                    "name": state.name,
                    "worker_id": state.worker_id,
                    "completed": state.completed,
                    "failed": state.failed,
                    "units_per_minute": state.completed / minutes,
                    "connected_s": max(0.0, now - state.connected_mono),
                    "idle_s": max(0.0, now - state.last_seen_mono),
                    "clock_offset_s": offsets.get(state.name, 0.0),
                    "lease": by_worker.get(state.worker_id),
                })
            payload: Dict[str, Any] = {
                "uptime_s": max(0.0, now - self._started_mono),
                "queue_depth": len(campaign.pending) if campaign else 0,
                "leases_active": len(leases),
                "workers_connected": len(self._workers),
                "workers": workers,
                "totals": dict(self.stats),
                "campaign": None,
            }
            if campaign is not None:
                payload["campaign"] = {
                    "id": campaign.id,
                    "units": len(campaign.units),
                    "pending": len(campaign.pending),
                    "leased": len(leases),
                    "completed": len(campaign.leases.completed),
                    "failed": len(campaign.failed),
                    "reissues": campaign.reissues,
                    "duplicates_dropped": campaign.leases.duplicates,
                    "max_attempts": campaign.max_attempts,
                    "lease_s": campaign.leases.timeout_s,
                    "finished": campaign.finished,
                }
        return payload

    def _serve_stats(self, conn: socket.socket, hello: Dict[str, Any]) -> None:
        """Serve ``stats`` frames to an observer (``repro farm-top``)."""
        self.telemetry.observe_clock(
            str(hello.get("worker") or "observer"), hello.get("clock")
        )
        send_frame(conn, {"type": "welcome", "version": PROTOCOL_VERSION})
        while not self._stop.is_set():
            frame = recv_frame(conn)
            if frame is None or frame.get("type") == "goodbye":
                return
            if frame.get("type") == "stats":
                send_frame(
                    conn, {"type": "stats", "stats": self.stats_payload()}
                )
            # unknown frame types are ignored (forward compatibility)

    # -- accept / sweep threads -------------------------------------------------
    def _accept_loop(self) -> None:
        assert self._sock is not None
        while not self._stop.is_set():
            try:
                conn, peer = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            with self._lock:
                self._conn_seq += 1
                ident = self._conn_seq
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn, peer, ident),
                name=f"broker-conn-{ident}",
                daemon=True,
            )
            thread.start()

    def _sweep_loop(self) -> None:
        while not self._stop.is_set():
            interval = max(0.05, min(self.poll_s, self.lease_timeout_s / 4))
            if self._stop.wait(interval):
                return
            with self._lock:
                campaign = self._campaign
                if campaign is None or campaign.finished:
                    continue
                now = time.monotonic()
                for lease in campaign.leases.expire(now):
                    self._note_lease_expired(campaign, lease, now)
                    self._requeue_or_fail(
                        campaign,
                        lease.key,
                        lease.attempt,
                        f"lease expired after {campaign.leases.timeout_s:g}s "
                        f"on {lease.worker}",
                    )
                self._maybe_finish(campaign)

    # -- connection handling ----------------------------------------------------
    def _serve_connection(
        self, conn: socket.socket, peer, ident: int
    ) -> None:
        try:
            try:
                hello = recv_frame(conn)
            except ProtocolError:
                return
            if hello is None or hello.get("type") != "hello":
                return
            if hello.get("version") != PROTOCOL_VERSION:
                send_frame(conn, {
                    "type": "reject",
                    "reason": (
                        f"protocol version {hello.get('version')!r} != "
                        f"{PROTOCOL_VERSION}"
                    ),
                })
                return
            role = hello.get("role")
            if role == "worker":
                self._serve_worker(conn, hello, ident)
            elif role == "client":
                self._serve_client(conn, hello)
            elif role == "stats":
                self._serve_stats(conn, hello)
            else:
                send_frame(
                    conn, {"type": "reject", "reason": f"unknown role {role!r}"}
                )
        except (OSError, ProtocolError) as exc:
            logger.debug("connection %d (%s) dropped: %s", ident, peer, exc)
        finally:
            conn.close()

    # -- client side ------------------------------------------------------------
    def _serve_client(self, conn: socket.socket, hello: Dict[str, Any]) -> None:
        with self._lock:
            active = self._campaign
            if (
                active is not None
                and not active.finished
                and active.client_alive
            ):
                send_frame(conn, {
                    "type": "reject",
                    "reason": (
                        f"campaign {active.id!r} is still active; "
                        f"one campaign at a time"
                    ),
                })
                return
        client_name = str(hello.get("worker") or "client")
        self.telemetry.observe_clock(client_name, hello.get("clock"))
        send_frame(conn, {"type": "welcome", "version": PROTOCOL_VERSION})
        submit = recv_frame(conn)
        if submit is None:
            return
        if submit.get("type") != "submit":
            send_frame(conn, {
                "type": "reject",
                "reason": f"expected submit, got {submit.get('type')!r}",
            })
            return
        self.telemetry.observe_clock(client_name, submit.get("clock"))
        campaign = self._accept_submit(conn, submit, client_name)
        if campaign is None:
            return
        try:
            # The client sends nothing else until the campaign ends; a
            # frame of None (EOF) or a goodbye means it is gone.  Either
            # way the campaign dies with its client.
            while True:
                frame = recv_frame(conn)
                if frame is None or frame.get("type") == "goodbye":
                    return
        except ProtocolError:
            return
        finally:
            with self._lock:
                campaign.client_alive = False
                if self._campaign is campaign:
                    if not campaign.finished:
                        logger.warning(
                            "client for campaign %r disconnected with "
                            "%d unit(s) unfinished; campaign dropped",
                            campaign.id,
                            len(campaign.units)
                            - len(campaign.leases.completed)
                            - len(campaign.failed),
                        )
                    self._campaign = None
            if campaign.spool is not None:
                campaign.spool.close()

    def _spool_for(self, campaign_id: str) -> Optional[ResultSpool]:
        if self.spool_dir is None:
            return None
        digest = hashlib.sha256(campaign_id.encode("utf-8")).hexdigest()[:16]
        return ResultSpool(
            self.spool_dir / f"spool-{digest}.jsonl", campaign_id
        )

    def _accept_submit(
        self,
        conn: socket.socket,
        submit: Dict[str, Any],
        client_name: str = "client",
    ) -> Optional[_Campaign]:
        campaign_id = str(submit.get("campaign") or "farm")
        raw_units = submit.get("units")
        if not isinstance(raw_units, list):
            send_frame(
                conn, {"type": "reject", "reason": "submit carries no units"}
            )
            return None
        units: Dict[str, str] = {}
        order: List[str] = []
        for entry in raw_units:
            key = str(entry["key"])
            units[key] = str(entry["unit"])
            order.append(key)
        max_attempts = max(1, int(submit.get("max_attempts") or 1))
        lease_s = float(submit.get("lease_s") or self.lease_timeout_s)
        spool = self._spool_for(campaign_id)
        campaign = _Campaign(
            campaign_id=campaign_id,
            units=units,
            order=order,
            runner=str(submit.get("runner") or ""),
            config=submit.get("config"),
            max_attempts=max_attempts,
            lease_timeout_s=lease_s,
            client=conn,
            spool=spool,
        )
        campaign.client_name = client_name
        restored: List[Dict[str, Any]] = []
        spool_dropped = 0
        if spool is not None:
            spooled, spool_dropped = spool.load()
            for key, payload in spooled.items():
                if key in units and key not in campaign.leases.completed:
                    campaign.leases.completed[key] = int(
                        payload.get("attempt", 1)
                    )
                    restored.append(payload)
            if restored:
                done = set(campaign.leases.completed)
                campaign.pending = deque(
                    key for key in order if key not in done
                )
        with self._lock:
            self._campaign = campaign
            self.stats["campaigns"] += 1
            self.stats["units_restored"] += len(restored)
            self.stats["spool_dropped"] += spool_dropped
        metrics = self.telemetry.metrics
        metrics.counter("farm.campaigns").inc()
        self.telemetry.emit(
            BrokerCampaignStarted(
                campaign=campaign_id,
                units=len(units),
                restored=len(restored),
                max_attempts=max_attempts,
                lease_s=lease_s,
            ),
            campaign=campaign_id,
        )
        if spool is not None and (restored or spool_dropped):
            metrics.counter("farm.spool_restored").inc(len(restored))
            metrics.counter("farm.spool_dropped").inc(spool_dropped)
            self.telemetry.emit(
                SpoolRestored(
                    campaign=campaign_id,
                    restored=len(restored),
                    dropped=spool_dropped,
                ),
                campaign=campaign_id,
            )
        logger.info(
            "campaign %r accepted: %d unit(s), %d restored from spool "
            "(%d spool line(s) dropped)",
            campaign_id, len(units), len(restored), spool_dropped,
        )
        send_frame(conn, {
            "type": "accepted",
            "campaign": campaign_id,
            "pending": len(campaign.pending),
            "restored": len(restored),
        })
        for payload in restored:
            campaign.push({
                "type": "done",
                "key": payload["key"],
                "attempt": int(payload.get("attempt", 1)),
                "worker": str(payload.get("worker", "spool")),
                "elapsed_s": float(payload.get("elapsed_s", 0.0)),
                "outcome": payload["outcome"],
                "telemetry": None,
                "restored": True,
            })
        with self._lock:
            self._maybe_finish(campaign)
        return campaign

    # -- worker side ------------------------------------------------------------
    def _serve_worker(
        self, conn: socket.socket, hello: Dict[str, Any], ident: int
    ) -> None:
        name = str(hello.get("worker") or f"worker-{ident}")
        pin = hello.get("campaign")
        worker_id = f"{name}#{ident}"
        with self._lock:
            active = self._campaign
            if (
                pin
                and active is not None
                and not active.finished
                and active.id != pin
            ):
                self.stats["workers_rejected"] += 1
                send_frame(conn, {
                    "type": "reject",
                    "reason": (
                        f"stale campaign {pin!r}; the active campaign is "
                        f"{active.id!r}"
                    ),
                })
                return
            self.stats["workers_seen"] += 1
            self._workers[worker_id] = _WorkerState(name, worker_id)
            campaign_id = active.id if active is not None else None
        self.telemetry.observe_clock(name, hello.get("clock"))
        self.telemetry.metrics.counter("farm.workers_joined").inc()
        self.telemetry.emit(
            WorkerJoined(worker=name, worker_id=worker_id),
            campaign=campaign_id,
        )
        send_frame(conn, {"type": "welcome", "version": PROTOCOL_VERSION})
        logger.info("worker %s connected", worker_id)
        try:
            while not self._stop.is_set():
                frame = recv_frame(conn)
                if frame is None or frame.get("type") == "goodbye":
                    return
                kind = frame.get("type")
                if kind == "request":
                    send_frame(conn, self._next_unit(worker_id, name, pin))
                elif kind == "result":
                    send_frame(conn, self._take_result(worker_id, name, frame))
                elif kind == "heartbeat":
                    self._take_heartbeat(worker_id, name, frame)
                # unknown frame types are ignored (forward compatibility)
        finally:
            self._release_worker(worker_id)
            logger.info("worker %s disconnected", worker_id)

    def _next_unit(
        self, worker_id: str, name: str, pin: Optional[str]
    ) -> Dict[str, Any]:
        with self._lock:
            campaign = self._campaign
            if (
                campaign is None
                or campaign.finished
                or (pin and campaign.id != pin)
                or not campaign.pending
            ):
                return {"type": "idle", "poll_s": self.poll_s}
            now = time.monotonic()
            key = campaign.pending.popleft()
            lease = campaign.leases.issue(key, worker_id, now)
            self.stats["units_dispatched"] += 1
            self._last_dispatch_mono = now
            state = self._workers.get(worker_id)
            if state is not None:
                state.last_seen_mono = now
            frame = {
                "type": "unit",
                "campaign": campaign.id,
                "key": key,
                "attempt": lease.attempt,
                "unit": campaign.units[key],
                "runner": campaign.runner,
                "config": campaign.config,
                "lease_s": campaign.leases.timeout_s,
            }
        self.telemetry.metrics.counter("farm.lease_issued").inc()
        self.telemetry.emit(
            LeaseIssued(key=key, attempt=lease.attempt, worker=name),
            campaign=campaign.id,
            span_id=key,
        )
        campaign.push({
            "type": "leased",
            "key": key,
            "attempt": lease.attempt,
            "worker": name,
        })
        return frame

    def _take_result(
        self, worker_id: str, name: str, frame: Dict[str, Any]
    ) -> Dict[str, Any]:
        key = str(frame.get("key"))
        attempt = int(frame.get("attempt") or 0)
        with self._lock:
            campaign = self._campaign
            now = time.monotonic()
            state = self._workers.get(worker_id)
            if state is not None:
                state.last_seen_mono = now
            if campaign is None or key not in campaign.units:
                return {
                    "type": "ack", "accepted": False,
                    "reason": "no active campaign for this unit",
                }
            if not frame.get("ok"):
                released = campaign.leases.release(key, attempt)
                if released is None:
                    # the lease already expired and was handled
                    return {
                        "type": "ack", "accepted": False,
                        "reason": "attempt is no longer leased",
                    }
                if state is not None:
                    state.failed += 1
                age_s = max(0.0, now - released.issued_ts)
                self.telemetry.metrics.histogram(
                    "farm.lease_age_seconds"
                ).observe(age_s)
                self.telemetry.emit(
                    LeaseCompleted(
                        key=key, attempt=attempt, worker=name,
                        age_s=age_s, ok=False,
                    ),
                    campaign=campaign.id,
                    span_id=key,
                )
                self._requeue_or_fail(
                    campaign, key, attempt,
                    str(frame.get("error") or "unit runner failed"),
                )
                self._maybe_finish(campaign)
                return {"type": "ack", "accepted": True}
            lease = campaign.leases.leases.get(key)
            lease_age_s = (
                max(0.0, now - lease.issued_ts)
                if lease is not None and lease.attempt == attempt
                else 0.0
            )
            if not campaign.leases.complete(key, attempt):
                self.stats["duplicates_dropped"] += 1
                self.telemetry.metrics.counter(
                    "farm.duplicate_suppressed"
                ).inc()
                self.telemetry.emit(
                    DuplicateSuppressed(key=key, attempt=attempt, worker=name),
                    campaign=campaign.id,
                    span_id=key,
                )
                return {
                    "type": "ack", "accepted": False,
                    "reason": "duplicate delivery suppressed",
                }
            # A late result can race its own re-issue: the unit may be
            # back in pending (expired, not yet re-leased).  Completing
            # it must also pull it from the queue or a worker would run
            # a completed unit.
            if key in campaign.pending:
                campaign.pending.remove(key)
            campaign.failed.pop(key, None)
            self.stats["units_completed"] += 1
            if state is not None:
                state.completed += 1
            payload = {
                "key": key,
                "attempt": attempt,
                "worker": name,
                "elapsed_s": float(frame.get("elapsed_s") or 0.0),
                "outcome": str(frame.get("outcome")),
            }
            if campaign.spool is not None:
                try:
                    campaign.spool.record(payload)
                except OSError as exc:
                    logger.warning("spool write failed: %s", exc)
        metrics = self.telemetry.metrics
        metrics.counter("farm.units_completed").inc()
        metrics.counter("farm.worker_units").inc(label=name)
        metrics.histogram("farm.lease_age_seconds").observe(lease_age_s)
        metrics.histogram("farm.unit_seconds").observe(payload["elapsed_s"])
        self.telemetry.emit(
            LeaseCompleted(
                key=key, attempt=attempt, worker=name,
                age_s=lease_age_s, ok=True,
            ),
            campaign=campaign.id,
            span_id=key,
        )
        campaign.push({
            "type": "done",
            "key": key,
            "attempt": attempt,
            "worker": name,
            "elapsed_s": payload["elapsed_s"],
            "outcome": payload["outcome"],
            "telemetry": frame.get("telemetry"),
        })
        with self._lock:
            self._maybe_finish(campaign)
        return {"type": "ack", "accepted": True}

    def _take_heartbeat(
        self, worker_id: str, name: str, frame: Dict[str, Any]
    ) -> None:
        self.telemetry.observe_clock(name, frame.get("clock"))
        key = str(frame.get("key"))
        attempt = int(frame.get("attempt") or 0)
        with self._lock:
            campaign = self._campaign
            state = self._workers.get(worker_id)
            if state is not None:
                state.last_seen_mono = time.monotonic()
            if campaign is None:
                return
            extended = campaign.leases.heartbeat(
                key, attempt, worker_id, time.monotonic()
            )
            if not extended:
                self.stats["stale_heartbeats"] += 1
            campaign_id = campaign.id
        self.telemetry.metrics.counter(
            "farm.stale_heartbeats" if not extended else "farm.heartbeats"
        ).inc()
        self.telemetry.emit(
            LeaseHeartbeat(
                key=key, attempt=attempt, worker=name, fresh=extended
            ),
            campaign=campaign_id,
            span_id=key,
        )

    def _release_worker(self, worker_id: str) -> None:
        with self._lock:
            state = self._workers.pop(worker_id, None)
            if state is not None:
                self.stats["workers_left"] += 1
            campaign = self._campaign
            campaign_id = campaign.id if campaign is not None else None
            dropped = (
                campaign.leases.release_worker(worker_id)
                if campaign is not None else []
            )
            now = time.monotonic()
            for lease in dropped:
                self._note_lease_expired(campaign, lease, now)
                self._requeue_or_fail(
                    campaign, lease.key, lease.attempt,
                    f"worker {lease.worker} disconnected",
                )
            if campaign is not None:
                self._maybe_finish(campaign)
        # Clock estimates are deliberately kept after disconnect: the
        # campaign_done frame still needs the dead worker's offset so
        # the timeline can align its events.
        if state is not None:
            self.telemetry.metrics.counter("farm.workers_left").inc()
            self.telemetry.emit(
                WorkerLeft(
                    worker=state.name,
                    worker_id=worker_id,
                    completed=state.completed,
                    failed=state.failed,
                ),
                campaign=campaign_id,
            )

    # -- shared campaign bookkeeping (call with the lock held) -----------------
    def _note_lease_expired(
        self, campaign: _Campaign, lease, now: float
    ) -> None:
        """Count and announce one reclaimed lease (lock held)."""
        state = self._workers.get(lease.worker)
        name = state.name if state is not None else str(lease.worker)
        age_s = max(0.0, now - lease.issued_ts)
        self.telemetry.metrics.counter("farm.lease_expired").inc()
        self.telemetry.metrics.histogram("farm.lease_age_seconds").observe(
            age_s
        )
        self.telemetry.emit(
            LeaseExpired(
                key=lease.key, attempt=lease.attempt, worker=name, age_s=age_s
            ),
            campaign=campaign.id,
            span_id=lease.key,
        )

    def _requeue_or_fail(
        self, campaign: _Campaign, key: str, attempt: int, reason: str
    ) -> None:
        if key in campaign.leases.completed or key in campaign.failed:
            return
        if campaign.leases.attempts.get(key, 0) >= campaign.max_attempts:
            campaign.failed[key] = reason
            self.stats["units_failed"] += 1
            self.telemetry.metrics.counter("farm.units_failed").inc()
            campaign.push({"type": "unit_failed", "key": key, "reason": reason})
            return
        campaign.pending.append(key)
        campaign.reissues += 1
        self.stats["reissues"] += 1
        self.telemetry.metrics.counter("farm.lease_reissued").inc()
        self.telemetry.emit(
            LeaseReissued(key=key, attempt=attempt, reason=reason),
            campaign=campaign.id,
            span_id=key,
        )
        campaign.push({
            "type": "retry", "key": key, "attempt": attempt, "reason": reason,
        })

    def _maybe_finish(self, campaign: _Campaign) -> None:
        if not campaign.finished or getattr(campaign, "_announced", False):
            return
        campaign._announced = True
        offsets = self.telemetry.clock_offsets()
        client_offset = offsets.pop(campaign.client_name, 0.0)
        campaign.push({
            "type": "campaign_done",
            "campaign": campaign.id,
            "completed": len(campaign.leases.completed),
            "failed": sorted(campaign.failed),
            "duplicates_dropped": campaign.leases.duplicates,
            "reissues": campaign.reissues,
            "telemetry": self.telemetry.drain_events(),
            "clock": {
                "offsets": offsets,
                "client_offset_s": client_offset,
            },
        })
        logger.info(
            "campaign %r finished: %d completed, %d failed, %d reissue(s)",
            campaign.id, len(campaign.leases.completed),
            len(campaign.failed), campaign.reissues,
        )
