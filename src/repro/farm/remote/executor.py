"""The client-side remote backend: submit to a broker, merge the stream.

:class:`RemoteExecutor` is the third :class:`~repro.farm.executor.
ExecutorBackend` next to :class:`~repro.farm.executor.SerialExecutor`
and :class:`~repro.farm.executor.ParallelExecutor`.  It keeps every
guarantee of the base contract — deterministic merge in submission
order, checkpoint skip/record, pilot RTP broadcast, telemetry replay —
and delegates only the *scheduling* to the broker's work-stealing queue:

* Units are submitted in the scheduler's order (longest-expected-first),
  which seeds the broker's pending queue; workers then pull in whatever
  order their speed dictates.
* Completion frames arrive in real completion order and are folded into
  the same ``results`` dict keyed by unit, so the returned list — and
  the checkpoint, and the merged trace — are byte-identical to a serial
  run with the same seeds.
* Retries are broker-side (lease expiry, worker death, runner errors);
  the client only narrates them as the usual
  :class:`~repro.obs.events.FarmUnitRetried` events.  A unit that
  exhausts ``max_attempts`` raises the same
  :class:`~repro.farm.executor.FarmExecutionError`.

Losing the broker mid-campaign raises :class:`RemoteFarmError`; every
unit completed before the loss is already checkpointed, so re-running
the same command resumes instead of restarting.
"""

from __future__ import annotations

import os
import socket
from typing import List, Optional, Tuple, Union

from repro.farm.executor import FarmExecutionError, _ExecutorBase
from repro.farm.remote.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    pack,
    parse_address,
    recv_frame,
    runner_ref,
    send_frame,
    unpack,
)
from repro.farm.remote.telemetry import clock_stamp
from repro.farm.scheduler import Scheduler
from repro.obs.events import BrokerClockSync
from repro.obs.runtime import OBS

#: Default lease lifetime requested from the broker, mirroring
#: :data:`repro.farm.remote.broker.DEFAULT_LEASE_TIMEOUT_S`.
DEFAULT_LEASE_S = 30.0


class RemoteFarmError(RuntimeError):
    """The broker connection failed mid-campaign.

    Completed units are already in the checkpoint (when one is
    configured); re-running the same campaign resumes from there.
    """


class RemoteExecutor(_ExecutorBase):
    """Executes a campaign on a farm broker's socket workers.

    Parameters
    ----------
    broker:
        Broker address: ``"host:port"`` or ``(host, port)``.
    scheduler:
        Submission-order policy (longest-expected-first by default);
        seeds the broker's work-stealing queue.
    max_attempts:
        Total dispatches allowed per unit across all workers.
    lease_timeout_s:
        Lease lifetime requested for this campaign: how long a silent
        worker may hold a unit before it is re-issued.
    connect_timeout_s:
        Dial timeout for reaching the broker.
    """

    name = "remote"

    def __init__(
        self,
        broker: Union[str, Tuple[str, int]],
        scheduler: Optional[Scheduler] = None,
        max_attempts: int = 2,
        lease_timeout_s: float = DEFAULT_LEASE_S,
        connect_timeout_s: float = 10.0,
    ) -> None:
        super().__init__(scheduler=scheduler, max_attempts=max_attempts)
        if isinstance(broker, str):
            self.address = parse_address(broker)
        else:
            self.address = (broker[0], int(broker[1]))
        if lease_timeout_s <= 0:
            raise ValueError("lease_timeout_s must be positive")
        self.lease_timeout_s = lease_timeout_s
        self.connect_timeout_s = connect_timeout_s
        #: Elastic pool: the worker count is whatever joins the broker.
        self.workers = 0
        self._campaign_id = ""
        self._batch = 0

    def run(self, units, runner, checkpoint=None, rtp_broadcast=False,
            campaign=""):
        # The base template may call _execute twice (pilot batch, then
        # the broadcast-stamped rest).  Each batch is one broker
        # campaign; suffixing keeps their ids — and therefore their
        # spool files — distinct while staying stable across re-runs.
        self._campaign_id = campaign or "farm"
        self._batch = 0
        return super().run(
            units, runner, checkpoint=checkpoint,
            rtp_broadcast=rtp_broadcast, campaign=campaign,
        )

    # -- wire plumbing ----------------------------------------------------------
    def _connect(self) -> socket.socket:
        try:
            sock = socket.create_connection(
                self.address, timeout=self.connect_timeout_s
            )
        except OSError as exc:
            raise RemoteFarmError(
                f"cannot reach farm broker at "
                f"{self.address[0]}:{self.address[1]}: {exc}"
            ) from exc
        # Campaign frames can be minutes apart on long units; only the
        # dial is bounded.  A dead broker still surfaces as EOF/reset.
        sock.settimeout(None)
        return sock

    def _handshake(self, sock: socket.socket, campaign_id: str) -> None:
        send_frame(sock, {
            "type": "hello",
            "role": "client",
            "version": PROTOCOL_VERSION,
            "worker": f"client-{os.getpid()}",
            "campaign": campaign_id,
            "clock": clock_stamp(),
        })
        greeting = recv_frame(sock)
        if greeting is None:
            raise RemoteFarmError("broker closed the connection during hello")
        if greeting.get("type") != "welcome":
            raise RemoteFarmError(
                f"broker refused the campaign: "
                f"{greeting.get('reason') or greeting.get('type')!r}"
            )

    def _submit(self, sock, campaign_id, units, runner, collector) -> None:
        config = collector.worker_config() if collector is not None else None
        send_frame(sock, {
            "type": "submit",
            "campaign": campaign_id,
            "units": [
                {"key": unit.key, "unit": pack(unit)} for unit in units
            ],
            "runner": runner_ref(runner),
            "config": pack(config) if config is not None else None,
            "max_attempts": self.max_attempts,
            "lease_s": self.lease_timeout_s,
            "clock": clock_stamp(),
        })
        reply = recv_frame(sock)
        if reply is None or reply.get("type") != "accepted":
            reason = (reply or {}).get("reason") or "no accept frame"
            raise RemoteFarmError(f"broker refused the submit: {reason}")

    # -- campaign loop ----------------------------------------------------------
    def _execute(self, units, runner, results, checkpoint, broadcast,
                 collector):
        self._batch += 1
        campaign_id = (
            self._campaign_id if self._batch == 1
            else f"{self._campaign_id}#b{self._batch}"
        )
        by_key = {unit.key: unit for unit in units}
        failures: List[Tuple] = []
        sock = self._connect()
        try:
            self._handshake(sock, campaign_id)
            self._submit(sock, campaign_id, units, runner, collector)
            remaining = set(by_key)
            while True:
                frame = recv_frame(sock)
                if frame is None:
                    raise RemoteFarmError(
                        f"broker connection closed with "
                        f"{len(remaining)} unit(s) outstanding"
                    )
                kind = frame.get("type")
                unit = by_key.get(str(frame.get("key")))
                if kind == "leased" and unit is not None:
                    self._note_dispatch(unit, int(frame.get("attempt") or 1))
                elif kind == "retry" and unit is not None:
                    self._note_retry(
                        unit,
                        int(frame.get("attempt") or 1),
                        str(frame.get("reason") or "re-issued"),
                    )
                elif kind == "done" and unit is not None:
                    outcome = unpack(str(frame["outcome"]))
                    telemetry = (
                        unpack(str(frame["telemetry"]))
                        if frame.get("telemetry") else None
                    )
                    if collector is not None and telemetry is not None:
                        collector.collect(telemetry)
                    self._complete(
                        unit, outcome,
                        int(frame.get("attempt") or 1),
                        float(frame.get("elapsed_s") or 0.0),
                        str(frame.get("worker") or "remote"),
                        results, checkpoint, broadcast,
                    )
                    remaining.discard(unit.key)
                elif kind == "unit_failed" and unit is not None:
                    failures.append(
                        (unit, str(frame.get("reason") or "failed"))
                    )
                    remaining.discard(unit.key)
                elif kind == "campaign_done":
                    self._replay_broker_telemetry(campaign_id, frame)
                    break
            try:
                send_frame(sock, {"type": "goodbye"})
            except OSError:
                pass
        except (OSError, ProtocolError) as exc:
            raise RemoteFarmError(
                f"lost the farm broker at "
                f"{self.address[0]}:{self.address[1]} mid-campaign: {exc}; "
                f"completed units are checkpointed and a re-run resumes"
            ) from exc
        finally:
            sock.close()
        if failures:
            raise FarmExecutionError(failures)

    def _replay_broker_telemetry(self, campaign_id: str, frame) -> None:
        """Fold the broker's shipped control-plane story into our trace.

        The ``campaign_done`` frame carries the broker's buffered event
        payloads (pre-stamped with the *broker's* wall clock) and the
        per-worker clock offsets it estimated.  Replaying them here puts
        lease lifetimes, re-issues and duplicates into the client trace;
        the closing ``broker_clock_sync`` event gives ``obs timeline``
        what it needs to align every track onto the client's axis.
        """
        if not OBS.enabled:
            return
        events = frame.get("telemetry")
        if isinstance(events, list):
            for payload in events:
                if isinstance(payload, dict) and payload.get("type"):
                    OBS.bus.emit(payload)
        clock = frame.get("clock")
        if isinstance(clock, dict):
            offsets = {
                str(name): float(offset)
                for name, offset in (clock.get("offsets") or {}).items()
            }
            OBS.bus.emit(BrokerClockSync(
                campaign=campaign_id,
                offsets=offsets,
                client_offset_s=float(clock.get("client_offset_s") or 0.0),
            ))
