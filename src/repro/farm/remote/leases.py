"""Lease bookkeeping: who is running what, until when, which attempt.

The broker hands every dispatched unit out under a **lease**: worker
``w`` owns unit ``k``'s attempt ``n`` until ``deadline``.  Heartbeats
extend the deadline; a lease that reaches its deadline without a result
is *expired* — the unit is re-issued to whichever worker asks next, as
a new attempt.  The table is the single source of truth for the three
races worker churn creates:

* **late result** — the unit was re-issued, then the presumed-dead
  worker delivers after all.  First accepted result wins; every later
  delivery (same or different attempt) is suppressed and counted, so a
  unit can never be merged twice.
* **late heartbeat** — a heartbeat for an attempt that is no longer
  leased (expired, re-issued, or already complete) is refused and
  counted rather than resurrecting a stale lease.
* **completion at expiry** — whichever of ``complete`` and ``expire``
  runs first wins atomically (the caller holds one lock around the
  table); the loser sees the key gone and does nothing.

The table is pure bookkeeping — no threads, no clock of its own.  The
broker passes ``now`` explicitly, which is also what makes the chaos
edge cases (a result landing exactly at the deadline) unit-testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass
class Lease:
    """One outstanding dispatch: unit ``key``, attempt ``attempt``,
    owned by ``worker`` until ``deadline``."""

    key: str
    attempt: int
    worker: str
    issued_ts: float
    deadline: float


class LeaseTable:
    """Per-campaign lease state with duplicate/stale accounting.

    Parameters
    ----------
    timeout_s:
        Lease lifetime granted at issue and on every heartbeat.
    """

    def __init__(self, timeout_s: float) -> None:
        if timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        self.timeout_s = timeout_s
        self.leases: Dict[str, Lease] = {}
        #: Total dispatches per unit key (1 = first issue).
        self.attempts: Dict[str, int] = {}
        #: Accepted attempt per completed unit key.
        self.completed: Dict[str, int] = {}
        self.duplicates = 0
        self.stale_heartbeats = 0

    # -- dispatch ---------------------------------------------------------------
    def issue(self, key: str, worker: str, now: float) -> Lease:
        """Lease ``key`` to ``worker``; increments the attempt counter."""
        if key in self.completed:
            raise ValueError(f"unit {key!r} is already complete")
        if key in self.leases:
            raise ValueError(f"unit {key!r} is already leased")
        attempt = self.attempts.get(key, 0) + 1
        self.attempts[key] = attempt
        lease = Lease(
            key=key,
            attempt=attempt,
            worker=worker,
            issued_ts=now,
            deadline=now + self.timeout_s,
        )
        self.leases[key] = lease
        return lease

    # -- keep-alive -------------------------------------------------------------
    def heartbeat(
        self, key: str, attempt: int, worker: str, now: float
    ) -> bool:
        """Extend the lease; ``False`` (and counted) when stale.

        A heartbeat is stale when the unit already completed, is no
        longer leased, or the lease belongs to a different attempt or
        worker — i.e. the unit was re-issued while the heartbeat was in
        flight.  Stale heartbeats never extend anything.
        """
        lease = self.leases.get(key)
        if (
            key in self.completed
            or lease is None
            or lease.attempt != attempt
            or lease.worker != worker
        ):
            self.stale_heartbeats += 1
            return False
        lease.deadline = now + self.timeout_s
        return True

    # -- completion -------------------------------------------------------------
    def complete(self, key: str, attempt: int) -> bool:
        """Accept a delivered result; ``False`` for duplicates.

        First result wins regardless of attempt number (unit outcomes
        are deterministic functions of the unit's derived seed, so any
        attempt's result is *the* result).  Every later delivery for the
        same key — the re-issued attempt finishing after the original,
        or a worker delivering the same frame twice — is suppressed.
        """
        if key in self.completed:
            self.duplicates += 1
            return False
        self.completed[key] = attempt
        self.leases.pop(key, None)
        return True

    # -- expiry / churn ---------------------------------------------------------
    def expire(self, now: float) -> List[Lease]:
        """Pop and return every lease whose deadline has passed."""
        expired = [
            lease for lease in self.leases.values() if lease.deadline <= now
        ]
        for lease in expired:
            del self.leases[lease.key]
        return expired

    def release_worker(self, worker: str) -> List[Lease]:
        """Pop and return the leases a departing worker still holds."""
        dropped = [
            lease for lease in self.leases.values() if lease.worker == worker
        ]
        for lease in dropped:
            del self.leases[lease.key]
        return dropped

    def release(self, key: str, attempt: int) -> Optional[Lease]:
        """Pop the lease for a failed attempt (worker reported an error).

        Returns the lease, or ``None`` when the attempt is no longer
        current (already expired and re-issued).
        """
        lease = self.leases.get(key)
        if lease is None or lease.attempt != attempt:
            return None
        del self.leases[key]
        return lease

    def active(self) -> int:
        """Number of outstanding leases."""
        return len(self.leases)
