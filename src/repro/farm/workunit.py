"""Deterministic, serializable units of characterization work.

A tester farm splits a campaign into :class:`WorkUnit`\\ s — one die and its
test set, one environmental-grid cell, one wafer site — that are complete
descriptions of the measurement they stand for: every unit carries its own
payload (device instance, tests, search configuration) plus a **derived
seed**.  Seeds come from :func:`derive_seed`, a stable hash of
``(campaign_seed, unit_key)``, so the noise stream a unit sees depends only
on its identity — never on which worker ran it, in which order, or how many
workers the farm had.  That is what makes a farm run bit-identical to a
serial run.

Units are plain picklable dataclasses: a :class:`~repro.farm.executor.
ParallelExecutor` ships them to worker processes as-is, and a
:class:`~repro.farm.checkpoint.CheckpointStore` writes their results to
disk for resume.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional, Tuple

#: Mask keeping derived seeds inside the non-negative 63-bit range every
#: seedable RNG in the stack (``numpy.random.default_rng``) accepts.
_SEED_MASK = (1 << 63) - 1


def derive_seed(campaign_seed: int, unit_key: str) -> int:
    """Stable per-unit seed from the campaign seed and the unit's key.

    The derivation is a SHA-256 of ``"<campaign_seed>:<unit_key>"`` reduced
    to 63 bits — stable across processes, platforms and Python versions
    (unlike ``hash()``, which is salted per process).  Two units of the
    same campaign never share a seed unless they share a key.
    """
    digest = hashlib.sha256(
        f"{campaign_seed}:{unit_key}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") & _SEED_MASK


@dataclass(frozen=True)
class WorkUnit:
    """One shard of a characterization campaign.

    Attributes
    ----------
    key:
        Unique identity within the campaign (e.g. ``"die/0007"``,
        ``"cell/v02/t01"``).  The checkpoint store and the deterministic
        seed both hang off this string.
    kind:
        Work-unit family (``"lot_die"``, ``"env_cell"``, ``"shmoo_test"``,
        ...); selects the runner and groups farm metrics.
    payload:
        Everything the runner needs to execute the unit, as picklable
        values.
    seed:
        Per-unit RNG seed, normally :func:`derive_seed` of the campaign
        seed and :attr:`key`.
    index:
        Submission position; results are merged back in this order no
        matter how the farm scheduled the units.
    cost_hint:
        Static relative cost estimate (e.g. test count x cycles) used by
        the scheduler when the metrics registry has no history yet.
    test_names:
        Names of the tests the unit will measure; lets the scheduler
        refine its estimate from per-test measurement counters.
    rtp_hint:
        Reference trip point broadcast by an earlier unit (section 4):
        the runner may bootstrap its SUTP walk from it instead of paying
        a full-range search.  ``None`` means bootstrap conventionally.
    """

    key: str
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)
    seed: int = 0
    index: int = 0
    cost_hint: float = 1.0
    test_names: Tuple[str, ...] = ()
    rtp_hint: Optional[float] = None

    def with_rtp_hint(self, rtp: Optional[float]) -> "WorkUnit":
        """Copy carrying a broadcast reference trip point."""
        if rtp is None:
            return self
        return replace(self, rtp_hint=float(rtp))


@dataclass(frozen=True)
class UnitOutcome:
    """What a unit runner returns from the (possibly remote) worker.

    Attributes
    ----------
    value:
        The unit's domain result (a ``DieResult``, a grid-cell tuple, a
        shmoo row, ...); must be picklable.
    measurements:
        Tester measurements the unit charged (cost accounting survives
        the process boundary through this field — worker-side telemetry
        is off).
    rtp:
        The reference trip point the unit established, offered to the
        farm's RTP broadcast for units dispatched later.
    """

    value: Any
    measurements: int = 0
    rtp: Optional[float] = None


@dataclass(frozen=True)
class WorkResult:
    """A completed unit: the outcome plus farm-side execution metadata.

    ``value``/``measurements``/``rtp`` mirror :class:`UnitOutcome`;
    ``attempts`` counts dispatches (1 = first try succeeded), and
    ``elapsed_s``/``worker`` describe where and how long the unit actually
    ran — diagnostic only, deliberately excluded from determinism
    guarantees.
    """

    unit_key: str
    index: int
    value: Any
    measurements: int = 0
    rtp: Optional[float] = None
    attempts: int = 1
    elapsed_s: float = 0.0
    worker: str = ""
    from_checkpoint: bool = False
