"""Serial and multi-process execution of work units behind one interface.

Both executors implement the same contract::

    executor.run(units, runner, checkpoint=None, rtp_broadcast=False)
        -> List[WorkResult]   # one per unit, in submission order

where ``runner`` is a picklable module-level callable
``(WorkUnit) -> UnitOutcome``.  The guarantees:

* **Deterministic merge** — results come back ordered by the units'
  submission order regardless of scheduling, worker count or completion
  order.
* **Checkpoint/resume** — with a :class:`~repro.farm.checkpoint.
  CheckpointStore`, completed units are recorded as they finish and
  skipped (result loaded, nothing re-measured) on a later run.
* **Bounded retry** — a unit that times out or whose worker dies is
  re-dispatched up to ``max_attempts`` times; a broken or stalled pool is
  recycled between passes.  Exhausted units raise
  :class:`FarmExecutionError` naming every casualty.
* **Pilot RTP broadcast** — with ``rtp_broadcast=True`` the first
  *submitted* unit runs alone first; the reference trip point it
  establishes is stamped onto every later unit as ``rtp_hint``
  (section 4).  Pinning the pilot to submission order (not completion
  order) keeps results identical for any worker count.

:class:`SerialExecutor` runs units in the parent process;
:class:`ParallelExecutor` fans them out over a
``ProcessPoolExecutor``.  Telemetry crosses the process boundary: when
the parent's switchboard is enabled, every unit — serial or remote —
runs under a :class:`~repro.obs.collector.UnitCapture` that spools its
events and metric observations, and the parent replays all spools in
submission order after the batch (:class:`~repro.obs.collector.
FarmCollector.merge`), so a 4-worker run's merged trace and metric
histograms are identical to the serial run's.  When the parent is
profiling (``--profile``), the capture config ships the
:class:`~repro.obs.profile.ProfileConfig` too, so every unit runs its
own sampling profiler and resource sampler inside the executing process
and the profile/resource events merge with the rest.  Farm lifecycle
events (dispatch/complete/retry, pool lifecycle) stay live on the
parent's :mod:`repro.obs` bus in real completion order — they drive
progress reporting and the Perfetto timeline.
"""

from __future__ import annotations

import concurrent.futures
import time
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from repro.farm.checkpoint import CheckpointStore
from repro.farm.scheduler import RTPBroadcast, Scheduler
from repro.farm.workunit import UnitOutcome, WorkResult, WorkUnit
from repro.obs.collector import (
    FarmCollector,
    WorkerCaptureConfig,
    run_unit_captured,
)
from repro.obs.events import (
    EventBus,
    FarmRunStarted,
    FarmUnitCompleted,
    FarmUnitDispatched,
    FarmUnitRetried,
    FarmUnitSkipped,
    FarmWorkerPool,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import OBS

#: A unit runner: executes one unit, returns its outcome.  Must be a
#: module-level callable so the process pool can pickle it by reference.
UnitRunner = Callable[[WorkUnit], UnitOutcome]


@runtime_checkable
class ExecutorBackend(Protocol):
    """What every farm backend — serial, process pool, remote — promises.

    A backend executes a batch of work units and returns one
    :class:`~repro.farm.workunit.WorkResult` per unit **in submission
    order**, honouring the checkpoint-skip, pilot-RTP-broadcast and
    telemetry-merge conventions described in this module's docstring.
    ``name`` identifies the backend in events and traces
    (``"serial"``/``"parallel"``/``"remote"``).

    The protocol is ``runtime_checkable`` so call sites that accept an
    ``executor=`` override can validate it with ``isinstance`` without
    importing a concrete class.
    """

    name: str

    def run(
        self,
        units: Sequence[WorkUnit],
        runner: "UnitRunner",
        checkpoint: Optional[CheckpointStore] = None,
        rtp_broadcast: bool = False,
        campaign: str = "",
    ) -> List[WorkResult]:
        """Execute every unit; results in submission order."""
        ...


class FarmExecutionError(RuntimeError):
    """One or more units failed every allowed attempt."""

    def __init__(self, failures: Sequence[Tuple[WorkUnit, str]]) -> None:
        self.failed_units = [unit for unit, _ in failures]
        detail = "; ".join(
            f"{unit.key}: {reason}" for unit, reason in failures
        )
        super().__init__(
            f"{len(self.failed_units)} work unit(s) failed after retries: "
            f"{detail}"
        )


def _observe_unit(result: WorkResult, kind: str) -> None:
    """Parent-side metrics for one completed unit."""
    metrics = OBS.metrics
    metrics.counter("farm.units").inc(label=kind)
    metrics.histogram(f"farm.unit_seconds.{kind}").observe(result.elapsed_s)
    metrics.histogram(f"farm.unit_measurements.{kind}").observe(
        result.measurements
    )


class _ExecutorBase:
    """Shared orchestration: checkpoint skip, pilot broadcast, merge."""

    name = "farm"

    def __init__(
        self,
        scheduler: Optional[Scheduler] = None,
        max_attempts: int = 2,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.scheduler = scheduler if scheduler is not None else Scheduler()
        self.max_attempts = max_attempts

    def run(
        self,
        units: Sequence[WorkUnit],
        runner: UnitRunner,
        checkpoint: Optional[CheckpointStore] = None,
        rtp_broadcast: bool = False,
        campaign: str = "",
    ) -> List[WorkResult]:
        """Execute every unit; results in submission order.

        ``campaign`` names the run for telemetry: it becomes the trace
        id stamped onto every worker-side event and the
        :class:`~repro.obs.events.FarmRunStarted` announcement.
        """
        units = list(units)
        if not units:
            return []
        results: Dict[str, WorkResult] = {}
        wanted = {unit.key for unit in units}

        collector: Optional[FarmCollector] = None
        if OBS.enabled:
            collector = FarmCollector(
                campaign=campaign, unit_keys=[unit.key for unit in units]
            )
            OBS.bus.emit(
                FarmRunStarted(
                    campaign=collector.campaign,
                    units=len(units),
                    executor=self.name,
                    workers=getattr(self, "workers", 1),
                )
            )

        if checkpoint is not None:
            for key, done in checkpoint.load().items():
                if key in wanted:
                    results[key] = done
                    if OBS.enabled:
                        OBS.metrics.counter("farm.units_skipped").inc()
                        OBS.bus.emit(FarmUnitSkipped(key=key))
        pending = [unit for unit in units if unit.key not in results]

        broadcast = RTPBroadcast()
        try:
            if rtp_broadcast and pending:
                # Deterministic pilot: always the first *submitted* pending
                # unit, so the broadcast value cannot depend on scheduling.
                pilot, pending = pending[0], pending[1:]
                self._execute(
                    [pilot], runner, results, checkpoint, broadcast, collector
                )
            if pending:
                ordered = [
                    broadcast.apply(unit)
                    for unit in self.scheduler.order(pending)
                ]
                self._execute(
                    ordered, runner, results, checkpoint, broadcast, collector
                )
        finally:
            # Merge even on FarmExecutionError: the units that did
            # complete flush their telemetry, in submission order.
            if collector is not None:
                collector.merge()
        return [results[unit.key] for unit in units]

    # -- template methods -----------------------------------------------------
    def _execute(
        self,
        units: Sequence[WorkUnit],
        runner: UnitRunner,
        results: Dict[str, WorkResult],
        checkpoint: Optional[CheckpointStore],
        broadcast: RTPBroadcast,
        collector: Optional[FarmCollector],
    ) -> None:
        raise NotImplementedError

    def _complete(
        self,
        unit: WorkUnit,
        outcome: UnitOutcome,
        attempts: int,
        elapsed_s: float,
        worker: str,
        results: Dict[str, WorkResult],
        checkpoint: Optional[CheckpointStore],
        broadcast: RTPBroadcast,
    ) -> None:
        result = WorkResult(
            unit_key=unit.key,
            index=unit.index,
            value=outcome.value,
            measurements=outcome.measurements,
            rtp=outcome.rtp,
            attempts=attempts,
            elapsed_s=elapsed_s,
            worker=worker,
        )
        results[unit.key] = result
        broadcast.offer(outcome.rtp)
        if checkpoint is not None:
            checkpoint.record(result)
        if OBS.enabled:
            _observe_unit(result, unit.kind)
            OBS.bus.emit(
                FarmUnitCompleted(
                    key=unit.key,
                    kind=unit.kind,
                    attempt=attempts,
                    elapsed_s=elapsed_s,
                    measurements=outcome.measurements,
                    worker=worker,
                )
            )

    def _note_dispatch(self, unit: WorkUnit, attempt: int) -> None:
        if OBS.enabled:
            OBS.bus.emit(
                FarmUnitDispatched(
                    key=unit.key,
                    kind=unit.kind,
                    attempt=attempt,
                    executor=self.name,
                )
            )

    def _note_retry(self, unit: WorkUnit, attempt: int, reason: str) -> None:
        if OBS.enabled:
            OBS.metrics.counter("farm.unit_retries").inc(label=unit.kind)
            OBS.bus.emit(
                FarmUnitRetried(key=unit.key, attempt=attempt, error=reason)
            )


class SerialExecutor(_ExecutorBase):
    """Runs every unit in the parent process, in scheduled order.

    The degenerate farm: same sharding, same merge, same checkpointing —
    and full in-process telemetry, since nothing crosses a process
    boundary.  ``ParallelExecutor(workers=1)`` and ``SerialExecutor()``
    produce identical results by construction.
    """

    name = "serial"

    def _execute(self, units, runner, results, checkpoint, broadcast,
                 collector):
        failures: List[Tuple[WorkUnit, str]] = []
        for unit in units:
            reason = ""
            for attempt in range(1, self.max_attempts + 1):
                self._note_dispatch(unit, attempt)
                start = time.perf_counter()
                try:
                    if collector is not None:
                        # Identical capture path to a pool worker, so the
                        # merged trace cannot depend on the worker count.
                        with collector.capture_unit(unit.key, attempt=attempt):
                            outcome = runner(unit)
                    else:
                        outcome = runner(unit)
                except Exception as error:  # noqa: BLE001 — retried below
                    reason = f"{type(error).__name__}: {error}"
                    if attempt < self.max_attempts:
                        self._note_retry(unit, attempt, reason)
                    continue
                self._complete(
                    unit, outcome, attempt,
                    time.perf_counter() - start, "serial",
                    results, checkpoint, broadcast,
                )
                break
            else:
                failures.append((unit, reason))
        if failures:
            raise FarmExecutionError(failures)


def _worker_call(
    runner: UnitRunner,
    unit: WorkUnit,
    config: Optional[WorkerCaptureConfig] = None,
    attempt: int = 1,
):
    """Per-unit entry point inside a pool worker.

    The inherited switchboard is neutralized first: under the ``fork``
    start method the child inherits the parent's enabled switchboard
    *and* its open trace file descriptors, and concurrent writes would
    interleave garbage.  The parent's sinks are detached (never closed —
    the file handles belong to the parent) and, when a capture config
    was shipped with the dispatch, the unit runs under a fresh
    :class:`~repro.obs.collector.UnitCapture` whose spool travels back
    with the outcome.
    """
    import multiprocessing

    OBS.enabled = False
    OBS.bus = EventBus()
    OBS.metrics = MetricsRegistry()
    worker = multiprocessing.current_process().name
    start = time.perf_counter()
    if config is not None and config.capture:
        outcome, telemetry = run_unit_captured(
            runner, unit, config, worker, attempt=attempt
        )
    else:
        outcome = runner(unit)
        telemetry = None
    return outcome, time.perf_counter() - start, worker, telemetry


class ParallelExecutor(_ExecutorBase):
    """Fans units out over a ``concurrent.futures.ProcessPoolExecutor``.

    Parameters
    ----------
    workers:
        Worker process count.
    timeout_s:
        Per-unit result deadline; a unit still running when its deadline
        expires counts as a failed attempt and the pool is recycled so
        the stalled worker cannot starve the retry pass.  ``None`` (the
        default) waits indefinitely.
    scheduler:
        Dispatch-order policy (longest-expected-first by default).
    max_attempts:
        Total dispatches allowed per unit (first try + retries).
    """

    name = "parallel"

    def __init__(
        self,
        workers: int,
        timeout_s: Optional[float] = None,
        scheduler: Optional[Scheduler] = None,
        max_attempts: int = 2,
    ) -> None:
        super().__init__(scheduler=scheduler, max_attempts=max_attempts)
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        self.workers = workers
        self.timeout_s = timeout_s

    def _pool(self) -> concurrent.futures.ProcessPoolExecutor:
        if OBS.enabled:
            OBS.bus.emit(
                FarmWorkerPool(status="started", workers=self.workers)
            )
        return concurrent.futures.ProcessPoolExecutor(
            max_workers=self.workers
        )

    def _shutdown(self, pool, status: str = "stopped") -> None:
        pool.shutdown(wait=False, cancel_futures=True)
        if OBS.enabled:
            OBS.bus.emit(FarmWorkerPool(status=status, workers=self.workers))

    def _execute(self, units, runner, results, checkpoint, broadcast,
                 collector):
        pending: List[WorkUnit] = list(units)
        failures: List[Tuple[WorkUnit, str]] = []
        config = collector.worker_config() if collector is not None else None
        pool = self._pool()
        try:
            for attempt in range(1, self.max_attempts + 1):
                failures = []
                recycle = False
                futures = []
                for unit in pending:
                    self._note_dispatch(unit, attempt)
                    try:
                        futures.append(
                            (
                                unit,
                                # `attempt` rides along so retried units
                                # stamp attempt=2... on their trace
                                # context instead of replaying as a
                                # second attempt=1.
                                pool.submit(
                                    _worker_call, runner, unit, config,
                                    attempt,
                                ),
                            )
                        )
                    except concurrent.futures.process.BrokenProcessPool:
                        # An earlier unit already killed the pool; count
                        # this one as failed without a future.
                        failures.append((unit, "worker process died"))
                        recycle = True
                for unit, future in futures:
                    try:
                        outcome, elapsed, worker, telemetry = future.result(
                            timeout=self.timeout_s
                        )
                    except concurrent.futures.TimeoutError:
                        failures.append(
                            (unit, f"timed out after {self.timeout_s}s")
                        )
                        recycle = True
                        continue
                    except concurrent.futures.process.BrokenProcessPool:
                        failures.append((unit, "worker process died"))
                        recycle = True
                        continue
                    except Exception as error:  # noqa: BLE001 — retried
                        failures.append(
                            (unit, f"{type(error).__name__}: {error}")
                        )
                        continue
                    if collector is not None:
                        collector.collect(telemetry)
                    self._complete(
                        unit, outcome, attempt, elapsed, worker,
                        results, checkpoint, broadcast,
                    )
                pending = []
                if failures:
                    if recycle:
                        # Stalled or dead workers poison the pool; start a
                        # fresh one for the retry pass.
                        self._shutdown(pool, status="recycled")
                        pool = self._pool()
                    if attempt < self.max_attempts:
                        for unit, reason in failures:
                            self._note_retry(unit, attempt, reason)
                        pending = [unit for unit, _ in failures]
                if not pending:
                    break
        finally:
            self._shutdown(pool)
        if failures:
            raise FarmExecutionError(failures)


def make_executor(
    workers: Optional[int] = None,
    executor: Optional[ExecutorBackend] = None,
    backend: Optional[str] = None,
    broker: Optional[str] = None,
    **kwargs,
) -> ExecutorBackend:
    """Resolve the executor convenience parameters to a backend.

    Precedence:

    1. An explicit ``executor`` instance wins outright.
    2. ``backend`` names one of ``"serial"``, ``"process"`` or
       ``"remote"`` (the latter requires ``broker="host:port"``).
    3. Otherwise ``workers`` > 1 builds a :class:`ParallelExecutor` and
       anything else a :class:`SerialExecutor` — the historical default.
    """
    if executor is not None:
        return executor
    if backend:
        if backend == "remote":
            # Imported lazily: repro.farm.remote imports this module.
            from repro.farm.remote.executor import RemoteExecutor

            if not broker:
                raise ValueError(
                    "backend 'remote' needs a broker address (HOST:PORT)"
                )
            return RemoteExecutor(broker=broker, **kwargs)
        if backend == "process":
            return ParallelExecutor(workers=workers or 2, **kwargs)
        if backend == "serial":
            return SerialExecutor(**kwargs)
        raise ValueError(
            f"unknown farm backend {backend!r}; "
            f"expected serial, process or remote"
        )
    if workers is not None and workers > 1:
        return ParallelExecutor(workers=workers, **kwargs)
    return SerialExecutor(**kwargs)
