"""Parallel tester-farm execution for characterization campaigns.

Real characterization floors get their throughput from two levers: making
each measurement cheaper (the paper's SUTP, section 4) and running many
testers at once over a lot.  This package is the second lever:

* :mod:`repro.farm.workunit` — deterministic, serializable shards of a
  campaign (one die x test set, one environmental-grid cell, one wafer
  site) with per-unit seeds derived from ``(campaign_seed, unit_key)``;
* :mod:`repro.farm.executor` — :class:`SerialExecutor` and the process-
  pool :class:`ParallelExecutor` behind one interface, with per-unit
  timeouts, bounded retry and order-deterministic result merge;
* :mod:`repro.farm.scheduler` — longest-expected-first dispatch fed by
  the :mod:`repro.obs` metrics registry, plus the section-4 reference-
  trip-point broadcast;
* :mod:`repro.farm.checkpoint` — JSONL checkpoint store so an
  interrupted lot, wafer or sweep resumes without re-measuring finished
  units;
* :mod:`repro.farm.remote` — the distributed farm: a TCP broker with
  work-stealing dispatch, leases and heartbeats, elastic socket workers
  (``repro farm-worker``) and the :class:`~repro.farm.remote.
  RemoteExecutor` backend, all behind the same
  :class:`~repro.farm.executor.ExecutorBackend` contract.

``LotCharacterizer``, ``EnvironmentalSweep``, ``WaferProber`` and
``run_campaign`` accept ``workers=`` / ``executor=`` / ``checkpoint=``;
the CLI exposes the same as global ``--workers N``, ``--resume FILE``
and ``--backend/--broker`` flags.  See ``docs/parallelism.md``.
"""

from repro.farm.checkpoint import CheckpointMismatch, CheckpointStore
from repro.farm.executor import (
    ExecutorBackend,
    FarmExecutionError,
    ParallelExecutor,
    SerialExecutor,
    make_executor,
)
from repro.farm.scheduler import CostModel, RTPBroadcast, Scheduler
from repro.farm.workunit import (
    UnitOutcome,
    WorkResult,
    WorkUnit,
    derive_seed,
)

__all__ = [
    "CheckpointMismatch",
    "CheckpointStore",
    "CostModel",
    "ExecutorBackend",
    "FarmExecutionError",
    "ParallelExecutor",
    "RTPBroadcast",
    "Scheduler",
    "SerialExecutor",
    "UnitOutcome",
    "WorkResult",
    "WorkUnit",
    "derive_seed",
    "make_executor",
]
