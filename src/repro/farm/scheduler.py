"""Dispatch-order policy and reference-trip-point broadcast.

Two farm-level levers from the paper's measurement-time argument live here:

* **Longest-expected-first dispatch** — on a pool of ``W`` workers the
  makespan is dominated by whatever long unit starts last, so
  :class:`Scheduler` orders the queue by expected cost, descending.
  Expectations come from the :mod:`repro.obs` metrics registry when it has
  history (per-test ``ate.measurements`` label counts, per-kind
  ``farm.unit_measurements.*`` histograms from earlier farm runs in the
  process) and fall back to the unit's static ``cost_hint``.
* **RTP broadcast** (section 4) — the first unit to complete a full-range
  bootstrap search offers its reference trip point to
  :class:`RTPBroadcast`; units dispatched afterwards carry the value as
  ``rtp_hint`` and start their SUTP walk from it instead of paying the
  full characterization-range search again.

Reordering never changes results — unit seeds are derived from unit keys,
and the executors pin the broadcast pilot to submission order — so the
scheduler is free to chase wall-clock time only.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.farm.workunit import WorkUnit
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import OBS


class CostModel:
    """Expected-cost estimator backed by the metrics registry.

    Parameters
    ----------
    registry:
        Registry to read history from; the global ``OBS.metrics`` when
        omitted.  An empty registry degrades gracefully to the units'
        static ``cost_hint``.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self._registry = registry

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else OBS.metrics

    def estimate(self, unit: WorkUnit) -> float:
        """Expected cost of ``unit`` in tester measurements (relative)."""
        registry = self.registry
        per_test = registry.counters.get("ate.measurements")
        if per_test is not None and unit.test_names:
            known = [
                per_test.by_label[name]
                for name in unit.test_names
                if name in per_test.by_label
            ]
            if known:
                # Unseen tests are charged the mean of the seen ones.
                mean = sum(known) / len(known)
                return sum(known) + mean * (len(unit.test_names) - len(known))
        history = registry.histograms.get(f"farm.unit_measurements.{unit.kind}")
        if history is not None and history.count:
            return history.mean
        return unit.cost_hint


class Scheduler:
    """Longest-expected-first ordering with a deterministic tie-break."""

    def __init__(self, cost_model: Optional[CostModel] = None) -> None:
        self.cost_model = cost_model if cost_model is not None else CostModel()

    def order(self, units: Sequence[WorkUnit]) -> List[WorkUnit]:
        """Dispatch order: largest expected cost first, ties by submission."""
        return sorted(
            units,
            key=lambda u: (-self.cost_model.estimate(u), u.index, u.key),
        )


class RTPBroadcast:
    """First-writer-wins holder for the farm-wide reference trip point."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value: Optional[float] = None

    @property
    def value(self) -> Optional[float]:
        """The broadcast RTP (``None`` until a unit offers one)."""
        return self._value

    def offer(self, rtp: Optional[float]) -> None:
        """Record ``rtp`` if no unit has established a reference yet."""
        if rtp is not None and self._value is None:
            self._value = float(rtp)

    def apply(self, unit: WorkUnit) -> WorkUnit:
        """The unit, carrying the current broadcast value (if any)."""
        return unit.with_rtp_hint(self._value)
