"""Conventional trip-point search methods.

The paper's section 1 surveys the searches industrial ATE offers for finding
a trip point — linear search, binary search and successive approximation —
and section 4 builds Search-Until-Trip-Point on top of them.  All searchers
share one contract (:class:`~repro.search.base.TripPointSearcher`): they
probe a scalar pass/fail *oracle* over a bracketing range and return a
:class:`~repro.search.base.SearchOutcome` with the trip point and the exact
number of oracle measurements spent.
"""

from repro.search.base import (
    PassRegion,
    SearchError,
    SearchOutcome,
    TripPointSearcher,
)
from repro.search.binary import BinarySearch
from repro.search.linear import LinearSearch
from repro.search.oracles import CountingOracle, make_ate_oracle
from repro.search.successive import SuccessiveApproximation

__all__ = [
    "PassRegion",
    "SearchError",
    "SearchOutcome",
    "TripPointSearcher",
    "BinarySearch",
    "LinearSearch",
    "CountingOracle",
    "make_ate_oracle",
    "SuccessiveApproximation",
]
