"""Oracle adapters: from tester or synthetic models to search oracles.

Searchers probe a plain ``Callable[[float], bool]``.  This module provides
the adapter that binds an :class:`~repro.ate.tester.ATE` and a test case
into such an oracle (the production configuration) and a counting wrapper
for cost studies on synthetic oracles.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.patterns.testcase import TestCase
from repro.search.base import Oracle

if TYPE_CHECKING:  # avoid a runtime repro.ate <-> repro.search import cycle
    from repro.ate.tester import ATE


def make_ate_oracle(ate: "ATE", test: TestCase) -> Oracle:
    """Bind a tester and a test case into a strobe pass/fail oracle.

    Probing the oracle at ``x`` applies the pattern with the output strobe at
    ``x`` ns and returns the tester's decision; every probe is one charged
    measurement.
    """

    def oracle(strobe_ns: float) -> bool:
        return ate.apply(test, strobe_ns)

    return oracle


def majority_oracle(oracle: Oracle, votes: int = 3) -> Oracle:
    """Wrap an oracle with per-point repeated-measurement voting.

    Near a noisy trip point single measurements flicker; deciding each
    probed value by the majority of ``votes`` repeated measurements trades
    tester time for boundary stability (the classic "average N strobes"
    characterization setting).

    Note on accounting: a :class:`~repro.search.base.SearchOutcome` built
    over a voted oracle counts *decisions*; the tester's own
    ``measurement_count`` remains the ground truth for cost (it sees every
    underlying application).
    """
    if votes < 1 or votes % 2 == 0:
        raise ValueError("votes must be a positive odd number")
    if votes == 1:
        return oracle

    def voted(value: float) -> bool:
        passes = sum(1 for _ in range(votes) if oracle(value))
        return passes * 2 > votes

    return voted


class CountingOracle:
    """Wrap any oracle, counting probes (synthetic cost experiments)."""

    def __init__(self, oracle: Oracle) -> None:
        self._oracle = oracle
        self.count = 0

    def __call__(self, value: float) -> bool:
        self.count += 1
        return self._oracle(value)

    def reset(self) -> None:
        """Zero the probe counter."""
        self.count = 0
