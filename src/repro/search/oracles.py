"""Oracle adapters: from tester or synthetic models to search oracles.

Searchers probe a plain ``Callable[[float], bool]``.  This module provides
the adapter that binds an :class:`~repro.ate.tester.ATE` and a test case
into such an oracle (the production configuration) and a counting wrapper
for cost studies on synthetic oracles.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence

from repro.patterns.testcase import TestCase
from repro.search.base import Oracle, probe_batch

if TYPE_CHECKING:  # avoid a runtime repro.ate <-> repro.search import cycle
    from repro.ate.tester import ATE


class ATEOracle:
    """Tester-bound strobe oracle implementing the batch-oracle protocol.

    Probing at ``x`` applies the pattern with the output strobe at ``x`` ns
    and returns the tester's decision; every probe is one charged
    measurement.  :meth:`probe_many` routes a whole batch of levels through
    :meth:`~repro.ate.tester.ATE.apply_batch` — same results and counts as
    elementwise probes, one pattern load.
    """

    def __init__(self, ate: "ATE", test: TestCase) -> None:
        self.ate = ate
        self.test = test

    def __call__(self, strobe_ns: float) -> bool:
        return self.ate.apply(self.test, strobe_ns)

    def probe_many(self, strobes_ns: Sequence[float]) -> List[bool]:
        """Batch face: pass/fail of every level, in request order."""
        return [bool(p) for p in self.ate.apply_batch(self.test, strobes_ns)]


def make_ate_oracle(ate: "ATE", test: TestCase) -> Oracle:
    """Bind a tester and a test case into a strobe pass/fail oracle."""
    return ATEOracle(ate, test)


def majority_oracle(oracle: Oracle, votes: int = 3) -> Oracle:
    """Wrap an oracle with per-point repeated-measurement voting.

    Near a noisy trip point single measurements flicker; deciding each
    probed value by the majority of ``votes`` repeated measurements trades
    tester time for boundary stability (the classic "average N strobes"
    characterization setting).

    Note on accounting: a :class:`~repro.search.base.SearchOutcome` built
    over a voted oracle counts *decisions*; the tester's own
    ``measurement_count`` remains the ground truth for cost (it sees every
    underlying application).
    """
    if votes < 1 or votes % 2 == 0:
        raise ValueError("votes must be a positive odd number")
    if votes == 1:
        return oracle
    return _MajorityOracle(oracle, votes)


class _MajorityOracle:
    """Per-point repeated-measurement voting, batch-protocol aware.

    All ``votes`` repeated measurements are always taken (no short
    circuit), exactly like the historical scalar implementation, so the
    underlying measurement stream is identical whichever face is probed.
    """

    def __init__(self, oracle: Oracle, votes: int) -> None:
        self._oracle = oracle
        self.votes = votes

    def __call__(self, value: float) -> bool:
        passes = sum(probe_batch(self._oracle, [value] * self.votes))
        return passes * 2 > self.votes

    def probe_many(self, values: Sequence[float]) -> List[bool]:
        """Vote every value; one flattened batch when the oracle allows."""
        votes = self.votes
        flat = [value for value in values for _ in range(votes)]
        raw = probe_batch(self._oracle, flat)
        return [
            sum(raw[i * votes : (i + 1) * votes]) * 2 > votes
            for i in range(len(values))
        ]


class CountingOracle:
    """Wrap any oracle, counting probes (synthetic cost experiments)."""

    def __init__(self, oracle: Oracle) -> None:
        self._oracle = oracle
        self.count = 0

    def __call__(self, value: float) -> bool:
        self.count += 1
        return self._oracle(value)

    def probe_many(self, values: Sequence[float]) -> List[bool]:
        """Count and forward a whole batch."""
        self.count += len(values)
        return probe_batch(self._oracle, values)

    def reset(self) -> None:
        """Zero the probe counter."""
        self.count = 0
