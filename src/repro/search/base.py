"""Common contract of all trip-point searchers.

A *trip point* is "the pass/fail point of an associated parameter" (section
1): the boundary of the device pass region along one swept scalar (a strobe
edge, a frequency, a voltage).  A searcher probes a pass/fail oracle at
chosen sweep values and reports the boundary to a requested resolution.

Orientation
-----------
:class:`PassRegion` states which side of the boundary passes.  ``LOW`` is the
paper's eq. (3) situation (pass region below the fail region — e.g. strobe
time: strobing early passes, strobing past the valid window fails).  ``HIGH``
is eq. (4) (e.g. supply voltage: high Vdd passes, low fails).  The reported
trip point is always the *last passing* value, i.e. the edge of the pass
region, within one resolution step.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.obs.events import SearchConverged, SearchStarted
from repro.obs.runtime import OBS

#: A pass/fail probe of the device at one sweep value.
Oracle = Callable[[float], bool]


def probe_batch(oracle: Oracle, values: Sequence[float]) -> List[bool]:
    """Probe an oracle at a batch of sweep values, in request order.

    The *batch-oracle protocol*: an oracle exposing a ``probe_many(values)``
    method evaluates the whole batch in one call (one pattern load, one
    vectorized device evaluation, one block of noise draws — see
    ``docs/performance.md``); a plain callable is probed elementwise.
    Either way the result is one bool per value and the measurement cost is
    exactly ``len(values)``, so batching never changes counts or results.
    """
    batch = getattr(oracle, "probe_many", None)
    if batch is not None:
        return [bool(p) for p in batch(values)]
    return [bool(oracle(v)) for v in values]


class SearchError(RuntimeError):
    """Raised when a search cannot run (bad bracket, no state change...)."""


class PassRegion(enum.Enum):
    """Which side of the trip point is the device pass region."""

    LOW = "low"  # eq. (3): pass below, fail above
    HIGH = "high"  # eq. (4): pass above, fail below

    def toward_fail(self) -> float:
        """Unit direction from pass region toward fail region."""
        return 1.0 if self is PassRegion.LOW else -1.0


@dataclass(frozen=True)
class SearchOutcome:
    """Result of one trip-point search.

    Attributes
    ----------
    trip_point:
        Last passing sweep value (edge of the pass region), or ``None`` when
        no boundary exists in the bracket.
    measurements:
        Oracle probes spent — the cost metric of the whole paper.
    history:
        ``(value, passed)`` per probe, in order (used to draw fig. 1-style
        search traces).
    bracket:
        Final ``(pass_side, fail_side)`` bracket, when one was established.
    """

    trip_point: Optional[float]
    measurements: int
    history: Tuple[Tuple[float, bool], ...] = ()
    bracket: Optional[Tuple[float, float]] = None

    @property
    def found(self) -> bool:
        """True when a trip point was located."""
        return self.trip_point is not None


class _ProbeRecorder:
    """Wraps an oracle, counting and recording every probe."""

    def __init__(self, oracle: Oracle) -> None:
        self._oracle = oracle
        self.history: List[Tuple[float, bool]] = []

    def __call__(self, value: float) -> bool:
        passed = bool(self._oracle(value))
        self.history.append((value, passed))
        return passed

    def probe_many(self, values: Sequence[float]) -> List[bool]:
        """Record a batch of probes; delegates to the oracle's batch face."""
        results = probe_batch(self._oracle, values)
        self.history.extend(zip(values, results))
        return results

    @property
    def measurements(self) -> int:
        return len(self.history)

    def outcome(
        self,
        trip_point: Optional[float],
        bracket: Optional[Tuple[float, float]] = None,
    ) -> SearchOutcome:
        """Package the recorded probes into a :class:`SearchOutcome`."""
        return SearchOutcome(
            trip_point=trip_point,
            measurements=self.measurements,
            history=tuple(self.history),
            bracket=bracket,
        )


class TripPointSearcher(abc.ABC):
    """Base class of every search method.

    Parameters
    ----------
    resolution:
        Termination resolution: the returned trip point is within one
        resolution step of the true boundary (for a noise-free monotone
        oracle).
    pass_region:
        Boundary orientation, see :class:`PassRegion`.
    """

    def __init__(
        self,
        resolution: float = 0.1,
        pass_region: PassRegion = PassRegion.LOW,
    ) -> None:
        if resolution <= 0:
            raise ValueError("resolution must be positive")
        self.resolution = resolution
        self.pass_region = pass_region

    def search(self, oracle: Oracle, low: float, high: float) -> SearchOutcome:
        """Locate the trip point of ``oracle`` inside ``[low, high]``."""
        if low >= high:
            raise SearchError(f"invalid bracket [{low}, {high}]")
        if OBS.enabled:
            method = type(self).__name__
            OBS.bus.emit(SearchStarted(method=method, low=low, high=high))
        recorder = _ProbeRecorder(oracle)
        outcome = self._run(recorder, low, high)
        if OBS.enabled:
            method = type(self).__name__
            OBS.metrics.counter("search.searches").inc(label=method)
            OBS.metrics.histogram("search.probes_per_trip").observe(
                outcome.measurements
            )
            OBS.bus.emit(
                SearchConverged(
                    method=method,
                    trip_point=outcome.trip_point,
                    measurements=outcome.measurements,
                )
            )
        return outcome

    @abc.abstractmethod
    def _run(
        self, probe: _ProbeRecorder, low: float, high: float
    ) -> SearchOutcome:
        """Method-specific search body."""

    # -- shared helpers ----------------------------------------------------------
    def _pass_end(self, low: float, high: float) -> float:
        """The bracket end expected to pass."""
        return low if self.pass_region is PassRegion.LOW else high

    def _fail_end(self, low: float, high: float) -> float:
        """The bracket end expected to fail."""
        return high if self.pass_region is PassRegion.LOW else low
