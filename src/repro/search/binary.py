"""Binary trip-point search.

"A binary search method uses a divide-by-two approach.  The delta between
the last known true and last known false condition are halved until the trip
point is found." (section 1.)  Cost is logarithmic in range over resolution,
but the method assumes the bracket genuinely straddles the boundary and that
the parameter holds still during the search.
"""

from __future__ import annotations

from repro.search.base import (
    SearchOutcome,
    TripPointSearcher,
    _ProbeRecorder,
)


class BinarySearch(TripPointSearcher):
    """Classic bisection between a passing and a failing boundary value.

    The two bracket ends are probed first; if either does not have the
    expected state the search reports no trip point (the paper's advice:
    "Very generous starting ranges should be selected").
    """

    def _run(
        self, probe: _ProbeRecorder, low: float, high: float
    ) -> SearchOutcome:
        pass_side = self._pass_end(low, high)
        fail_side = self._fail_end(low, high)

        if not probe(pass_side):
            return probe.outcome(None)
        if probe(fail_side):
            return probe.outcome(None)

        while abs(fail_side - pass_side) > self.resolution:
            middle = 0.5 * (pass_side + fail_side)
            if probe(middle):
                pass_side = middle
            else:
                fail_side = middle
        return probe.outcome(pass_side, (pass_side, fail_side))
