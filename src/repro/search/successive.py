"""Successive approximation trip-point search.

"The successive approximation searches between two values, using one of the
boundary values and a value half way in between.  If both produce the same
results, the search continues to the other end of boundary. ... the
successive approximation uses an algorithm that can sense a drifting
specification parameter and make a judgment as to the direction and span of
the search.  This method is recommended for device performance
characterization at most of the ATE today." (section 1.)

The drift sensing is what distinguishes it from plain bisection: after
converging, the pass side is re-verified; a contradiction (the parameter
moved while we were searching, e.g. from self-heating) re-opens the bracket
in the drift direction with a doubling span and the refinement continues.
"""

from __future__ import annotations

from repro.search.base import (
    PassRegion,
    SearchOutcome,
    TripPointSearcher,
    _ProbeRecorder,
)


class SuccessiveApproximation(TripPointSearcher):
    """Boundary-and-midpoint bisection with drift re-verification.

    Parameters
    ----------
    max_reverifications:
        How many converge-and-verify rounds to run before accepting the
        answer (each round costs one extra probe when no drift occurred).
    """

    def __init__(
        self,
        resolution: float = 0.1,
        pass_region: PassRegion = PassRegion.LOW,
        max_reverifications: int = 2,
    ) -> None:
        super().__init__(resolution, pass_region)
        if max_reverifications < 0:
            raise ValueError("max_reverifications must be >= 0")
        self.max_reverifications = max_reverifications

    def _run(
        self, probe: _ProbeRecorder, low: float, high: float
    ) -> SearchOutcome:
        pass_side = self._pass_end(low, high)
        fail_side = self._fail_end(low, high)
        middle = 0.5 * (pass_side + fail_side)

        # Both openers are probed unconditionally in the scalar algorithm,
        # so they form a legal batch: one pattern load, identical results
        # and measurement counts (the batch-oracle protocol contract).
        first, second = probe.probe_many([pass_side, middle])
        if not first:
            # Expected-pass boundary failed: no pass region reachable from
            # this end of the bracket.
            return probe.outcome(None)
        if second:
            # Both produced the same result: "the search continues to the
            # other end of boundary".
            if probe(fail_side):
                return probe.outcome(None)  # the whole range passes
            pass_side = middle
        else:
            fail_side = middle

        pass_side, fail_side = self._bisect(probe, pass_side, fail_side)

        # Drift sensing: re-verify the converged pass side.  A contradiction
        # means the parameter moved while we were searching; judge the
        # direction (toward the pass region) and walk back with a doubling
        # span until the device passes again, then refine.
        direction = self.pass_region.toward_fail()
        range_low, range_high = min(low, high), max(low, high)
        for _ in range(self.max_reverifications):
            if probe(pass_side):
                break
            fail_side = pass_side
            span = 4.0 * self.resolution
            recovered = False
            while True:
                candidate = fail_side - direction * span
                if not range_low <= candidate <= range_high:
                    break  # drifted out of the characterization range
                if probe(candidate):
                    pass_side = candidate
                    recovered = True
                    break
                fail_side = candidate
                span *= 2.0
            if not recovered:
                return probe.outcome(None)
            pass_side, fail_side = self._bisect(probe, pass_side, fail_side)

        return probe.outcome(pass_side, (pass_side, fail_side))

    def _bisect(self, probe, pass_side: float, fail_side: float):
        """Halve the pass/fail bracket down to the resolution."""
        while abs(fail_side - pass_side) > self.resolution:
            middle = 0.5 * (pass_side + fail_side)
            if probe(middle):
                pass_side = middle
            else:
                fail_side = middle
        return pass_side, fail_side
