"""Linear trip-point search.

"A linear search starts at one boundary and steps through a specified
resolution until the stage changes or the end boundary is reached.  The trip
point is a device pass." (section 1.)  Its cost is proportional to the
distance from the starting boundary to the trip point divided by the
resolution — the paper's motivating example of why full-range
re-characterization per test is too expensive.
"""

from __future__ import annotations

from typing import Optional

from repro.search.base import (
    PassRegion,
    SearchOutcome,
    TripPointSearcher,
    _ProbeRecorder,
)


class LinearSearch(TripPointSearcher):
    """Step from the pass end toward the fail end at fixed resolution.

    Parameters
    ----------
    start_from_pass:
        When True (default), stepping starts at the expected-pass boundary
        and walks toward the fail region; the trip point is the last passing
        step.  When False the walk starts in the fail region and the trip
        point is the first passing step — both variants exist on real ATE.
    """

    def __init__(
        self,
        resolution: float = 0.1,
        pass_region: PassRegion = PassRegion.LOW,
        start_from_pass: bool = True,
    ) -> None:
        super().__init__(resolution, pass_region)
        self.start_from_pass = start_from_pass

    def _run(
        self, probe: _ProbeRecorder, low: float, high: float
    ) -> SearchOutcome:
        direction = self.pass_region.toward_fail()
        if self.start_from_pass:
            start, stop = self._pass_end(low, high), self._fail_end(low, high)
            step = direction * self.resolution
        else:
            start, stop = self._fail_end(low, high), self._pass_end(low, high)
            step = -direction * self.resolution

        value = start
        last_pass: Optional[float] = None
        last_state: Optional[bool] = None
        steps_limit = int(abs(stop - start) / self.resolution) + 2
        for _ in range(steps_limit):
            passed = probe(value)
            if passed:
                last_pass = value
            if last_state is not None and passed != last_state:
                # State changed: boundary crossed between previous and
                # current step.
                break
            last_state = passed
            next_value = value + step
            if (step > 0 and next_value > stop) or (step < 0 and next_value < stop):
                break
            value = next_value

        saw_pass = any(passed for _, passed in probe.history)
        saw_fail = any(not passed for _, passed in probe.history)
        if not (saw_pass and saw_fail) or last_pass is None:
            # Entire range passed (or failed): the boundary is outside the
            # bracket and "the entire search must be run for several
            # different ranges" (section 1).
            return probe.outcome(None)
        fail_side = last_pass + direction * self.resolution
        return probe.outcome(last_pass, (last_pass, fail_side))
