"""Crash-safe file primitives shared by the JSONL stores.

Three writers persist campaign state as it happens — the ``runs.jsonl``
run history, the farm's checkpoint store, and the worst-case database
export.  All of them feed the :mod:`repro.store` migration path, so a
torn line or half-written file is not just a local nuisance: it is a
corrupt record a later ``repro store import`` would have to forgive.
This module centralizes the two disciplines that prevent torn data
(the same ones ``benchmarks/conftest.py`` applies to BENCH records):

* **appends** — :func:`durable_append_line`: write the whole line, then
  ``flush`` + ``os.fsync`` so the line either exists completely after a
  crash or not at all (JSONL framing makes a missing trailing line
  recoverable; a buffered half-line is not distinguishable from data);
* **rewrites** — :func:`atomic_write_text`: write to a same-directory
  temp file and ``os.replace`` it over the target, so readers never see
  a truncated file even if the writer dies mid-write.

Deliberately dependency-free (stdlib only, no ``repro`` imports) so any
layer — ``repro.obs``, ``repro.farm``, ``repro.core``, ``repro.store``
— can use it without import cycles.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import IO, Union


def fsync_handle(handle: IO[str]) -> None:
    """Flush python *and* OS buffers for an open text handle.

    Files without a real descriptor (``io.StringIO`` in tests, pipes on
    exotic platforms) just flush — the durability guarantee is
    best-effort there, matching what the OS can offer.
    """
    handle.flush()
    try:
        os.fsync(handle.fileno())
    except (OSError, ValueError, AttributeError):
        pass


def durable_append_line(handle: IO[str], line: str) -> None:
    """Append one newline-terminated record and make it durable.

    Accepts the record with or without its trailing newline (JSONL
    records never embed one); writing line + terminator in a single call
    keeps the torn-write window to one buffer flush instead of two.
    """
    if not line.endswith("\n"):
        line += "\n"
    handle.write(line)
    fsync_handle(handle)


def atomic_write_text(path: Union[str, Path], text: str) -> Path:
    """Replace ``path`` with ``text`` atomically (write-temp + rename).

    The temp file lives next to the target (``os.replace`` must not
    cross filesystems) and is named per-pid so concurrent writers cannot
    collide on the staging file.  Returns the target path.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    staging = target.with_name(target.name + f".tmp{os.getpid()}")
    with staging.open("w") as handle:
        handle.write(text)
        fsync_handle(handle)
    os.replace(staging, target)
    return target
