"""Typed telemetry events and the bus that carries them.

Every hot path of the characterization stack emits a small frozen event —
one ATE measurement, one SUTP walk step, one GA generation, one NN epoch,
one campaign phase boundary — onto a process-local :class:`EventBus`.
Sinks subscribe to the bus:

* :class:`TraceWriter` appends one JSON object per event to a ``.jsonl``
  file (the ``--trace`` CLI flag), timestamped at write time;
* :class:`RingBufferSink` keeps the last N events in memory (tests,
  interactive inspection);
* :class:`LoggingSink` mirrors events onto stdlib :mod:`logging`
  (the ``-v`` CLI flag).

The bus itself knows nothing about the instruments — enable/disable policy
lives in :mod:`repro.obs.runtime`, and instrumented code guards every emit
behind a single ``OBS.enabled`` attribute check so the disabled path costs
nothing measurable.
"""

from __future__ import annotations

import collections
import contextlib
import json
import logging
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, ClassVar, Deque, Dict, List, Optional, Tuple, Union

logger = logging.getLogger("repro.obs")


#: Process-local trace context: ``trace_id`` (campaign), ``span_id`` (work
#: unit) and ``worker`` (process name).  Set by the farm collector around
#: unit execution — in the parent *and* inside worker processes — so every
#: serialized event can be attributed to the campaign and unit that
#: produced it, across process boundaries.
_TRACE_CONTEXT: Optional[Dict[str, object]] = None


def set_trace_context(
    trace_id: Optional[str] = None,
    span_id: Optional[str] = None,
    worker: Optional[str] = None,
    attempt: Optional[int] = None,
) -> None:
    """Install the current trace context (``None`` fields are omitted).

    ``attempt`` distinguishes re-dispatches of the same unit (attempt 1
    is the first try): a retried unit's events carry ``attempt: 2`` so
    duplicate-delivery suppression and Perfetto retry instants can tell
    the attempts apart even though trace/span ids are identical.
    """
    global _TRACE_CONTEXT
    context = {
        key: value
        for key, value in (
            ("trace_id", trace_id),
            ("span_id", span_id),
            ("worker", worker),
            ("attempt", attempt),
        )
        if value
    }
    _TRACE_CONTEXT = context or None


def clear_trace_context() -> None:
    """Drop the current trace context."""
    global _TRACE_CONTEXT
    _TRACE_CONTEXT = None


def current_trace_context() -> Optional[Dict[str, object]]:
    """The installed trace context (a copy), or ``None``."""
    return dict(_TRACE_CONTEXT) if _TRACE_CONTEXT else None


@contextlib.contextmanager
def trace_context(
    trace_id: Optional[str] = None,
    span_id: Optional[str] = None,
    worker: Optional[str] = None,
    attempt: Optional[int] = None,
):
    """Scoped :func:`set_trace_context`; restores the previous context."""
    global _TRACE_CONTEXT
    saved = _TRACE_CONTEXT
    set_trace_context(
        trace_id=trace_id, span_id=span_id, worker=worker, attempt=attempt
    )
    try:
        yield
    finally:
        _TRACE_CONTEXT = saved


@dataclass(frozen=True)
class Event:
    """Base telemetry event; subclasses set :attr:`type`."""

    type: ClassVar[str] = "event"

    def to_dict(self) -> Dict[str, object]:
        """Plain-data form: the fields plus a ``type`` discriminator."""
        payload: Dict[str, object] = {"type": self.type}
        payload.update(asdict(self))
        return payload


@dataclass(frozen=True)
class MeasurementEvent(Event):
    """One strobed pass/fail measurement charged by :meth:`ATE.apply`."""

    type: ClassVar[str] = "measurement"

    index: int
    test_name: str
    strobe_ns: float
    passed: bool


@dataclass(frozen=True)
class SearchStarted(Event):
    """A trip-point searcher began a bracketed search."""

    type: ClassVar[str] = "search_started"

    method: str
    low: float
    high: float


@dataclass(frozen=True)
class SearchConverged(Event):
    """A trip-point searcher finished (trip point or ``None``)."""

    type: ClassVar[str] = "search_converged"

    method: str
    trip_point: Optional[float]
    measurements: int


@dataclass(frozen=True)
class SUTPWalkStep(Event):
    """One incremental ±SF(IT) probe of the SUTP walk (eqs. 3/4)."""

    type: ClassVar[str] = "sutp_walk_step"

    iteration: int
    value: float
    passed: bool


@dataclass(frozen=True)
class SUTPFallback(Event):
    """The SUTP walk left the characterization range; full search follows."""

    type: ClassVar[str] = "sutp_fallback"

    iteration: int
    value: float


@dataclass(frozen=True)
class SUTPWindowEscalated(Event):
    """The incremental walk needed more than one ±SF step (eqs. 3/4).

    Emitted once per incremental search whose bracketing took ``IT >= 2``
    (or that fell off the range entirely): the SF·IT window *escalated*
    past the base step before the state flip.  A test absent from these
    events reused the RTP cheaply — bracketing on the very first step.

    Attributes
    ----------
    iteration:
        Final ``IT`` of the walk.
    step:
        Last step size ``SF * IT``.
    window:
        Cumulative distance walked from the RTP, ``SF * IT(IT+1)/2``.
    probes:
        Oracle probes the walk had spent when it escalated.
    fallback:
        True when the escalation ended in a full-range fallback.
    """

    type: ClassVar[str] = "sutp_window_escalated"

    iteration: int
    step: float
    window: float
    probes: int
    fallback: bool = False


@dataclass(frozen=True)
class SUTPTestMeasured(Event):
    """One test's complete SUTP outcome, with the test's identity.

    Emitted by :class:`~repro.core.trip_point.MultipleTripPointRunner`
    (which, unlike the searcher, knows the test name) after every SUTP
    measurement.  The sequence of these events is the per-parameter
    trip-point *drift series*, and the per-test audit table of
    :mod:`repro.obs.insight` is built from them.
    """

    type: ClassVar[str] = "sutp_test_measured"

    test_name: str
    trip_point: Optional[float]
    measurements: int
    used_full_search: bool
    iterations: int
    rtp: Optional[float] = None
    drift: Optional[float] = None


@dataclass(frozen=True)
class GAGeneration(Event):
    """End of one GA generation across all populations.

    The trailing fields are the decision-level extension (fig. 5
    convergence telemetry): fitness dispersion, chromosome diversity for
    both species, and which variation operators produced the generation's
    best individual.  They default so traces written by older builds stay
    loadable.
    """

    type: ClassVar[str] = "ga_generation"

    generation: int
    best_fitness: float
    mean_fitness: float
    evaluations: int
    restarts: int
    std_fitness: float = float("nan")
    sequence_diversity: float = float("nan")
    condition_diversity: float = float("nan")
    best_operator: str = ""


@dataclass(frozen=True)
class NNEpoch(Event):
    """One training epoch of the fig. 4 learning loop."""

    type: ClassVar[str] = "nn_epoch"

    epoch: int
    train_loss: float
    val_loss: Optional[float]


@dataclass(frozen=True)
class NNVote(Event):
    """One validation sample's ensemble vote (fig. 4 voting machine).

    ``votes`` is the per-class member vote vector; ``entropy`` the
    disagreement entropy of that vector in bits (0 = unanimous);
    ``margin`` the soft-vote probability gap between the top two
    classes; ``agreement`` the fraction of members voting with the
    majority.
    """

    type: ClassVar[str] = "nn_vote"

    sample: int
    votes: "Tuple[int, ...]"
    predicted: int
    actual: int
    entropy: float
    margin: float
    agreement: float


@dataclass(frozen=True)
class NNCalibration(Event):
    """Calibration of predicted fuzzy class vs. measured TPV class.

    Emitted once per learning round over the validation split:
    ``matrix[i][j]`` counts samples whose *measured* trip point coded to
    class ``i`` and whose ensemble prediction was class ``j``.
    """

    type: ClassVar[str] = "nn_calibration"

    round: int
    labels: "Tuple[str, ...]"
    matrix: "Tuple[Tuple[int, ...], ...]"
    accuracy: float
    mean_entropy: float
    mean_margin: float


@dataclass(frozen=True)
class WCRClassified(Event):
    """One worst-case-database record's fig. 6 classification."""

    type: ClassVar[str] = "wcr_classified"

    test_name: str
    technique: str
    wcr: Optional[float]
    wcr_class: str
    value: Optional[float] = None


@dataclass(frozen=True)
class ResourceSample(Event):
    """One periodic reading of this process's resource consumption.

    Emitted by :class:`~repro.obs.profile.ResourceSampler` (the parent
    process under ``--profile``, and each farm worker around its unit).
    CPU times are cumulative process totals (``getrusage``), so series
    consumers difference consecutive samples; RSS comes from
    ``/proc/self/status`` where available with a ``ru_maxrss``-derived
    portable fallback.
    """

    type: ClassVar[str] = "resource_sample"

    cpu_user_s: float
    cpu_system_s: float
    rss_kb: int
    max_rss_kb: int
    gc_gen0: int
    gc_gen1: int
    gc_gen2: int
    phase: str = ""


@dataclass(frozen=True)
class ProfileRecorded(Event):
    """One finished profiling session's folded call stacks.

    ``folded`` holds ``(phase, stack, weight)`` triples where ``stack``
    is a ``;``-joined root-to-leaf frame list (``module:function``) —
    the flamegraph.pl collapsed-stack format, phase-attributed.  The
    weight unit depends on the mode: stack *samples* for the background
    sampling profiler, self-time *milliseconds* for the deterministic
    ``cProfile`` mode (whose "stacks" are single frames).
    """

    type: ClassVar[str] = "profile"

    mode: str  # "sampling" | "cprofile"
    unit: str  # "samples" | "ms"
    samples: int
    interval_s: float
    duration_s: float
    folded: "Tuple[Tuple[str, str, int], ...]"
    truncated: int = 0


@dataclass(frozen=True)
class RequestContext(Event):
    """The HTTP request that caused this run, stamped into its trace.

    Emitted once, at trace setup, when the process was launched by the
    characterization service on behalf of an HTTP request (the runner
    exports ``REPRO_REQUEST_ID``/``REPRO_JOB_ID`` into the job
    subprocess).  It is the join key of the operational story: the
    service's access log, the job row in the store, and the job's trace
    all carry the same ``request_id``.
    """

    type: ClassVar[str] = "request_context"

    request_id: str
    job_id: str = ""


@dataclass(frozen=True)
class CampaignPhase(Event):
    """Start/end of a named campaign phase (``duration_s`` on end)."""

    type: ClassVar[str] = "campaign_phase"

    phase: str
    status: str  # "start" | "end"
    duration_s: Optional[float] = None


@dataclass(frozen=True)
class FarmUnitDispatched(Event):
    """A work unit was handed to an executor (attempt 1 = first try)."""

    type: ClassVar[str] = "farm_unit_dispatched"

    key: str
    kind: str
    attempt: int
    executor: str  # "serial" | "parallel"


@dataclass(frozen=True)
class FarmRunStarted(Event):
    """A farm executor accepted a batch of work units."""

    type: ClassVar[str] = "farm_run_started"

    campaign: str
    units: int
    executor: str  # "serial" | "parallel"
    workers: int


@dataclass(frozen=True)
class FarmUnitCompleted(Event):
    """A work unit finished; cost flows back from the (possibly remote)
    worker through the outcome, and — when a collector is active — its
    spooled telemetry is merged into the parent's sinks afterwards."""

    type: ClassVar[str] = "farm_unit_completed"

    key: str
    kind: str
    attempt: int
    elapsed_s: float
    measurements: int
    worker: str = ""


@dataclass(frozen=True)
class FarmUnitMerged(Event):
    """A unit's worker-side telemetry was merged into the parent sinks.

    Emitted by the collector in submission order, after the whole batch
    completed — the deterministic closing bracket of a unit's lifecycle
    (queued -> running -> [retried ->] merged)."""

    type: ClassVar[str] = "farm_unit_merged"

    key: str
    events: int
    dropped_events: int
    measurements: int
    worker: str = ""


@dataclass(frozen=True)
class FarmCheckpointDropped(Event):
    """A checkpoint load dropped corrupt/undecodable lines — data loss
    that would otherwise only surface as a logging warning."""

    type: ClassVar[str] = "farm_checkpoint_dropped"

    path: str
    lines: int


@dataclass(frozen=True)
class FarmUnitRetried(Event):
    """A unit's attempt failed (timeout, worker death, error); it will be
    re-dispatched."""

    type: ClassVar[str] = "farm_unit_retried"

    key: str
    attempt: int
    error: str


@dataclass(frozen=True)
class FarmUnitSkipped(Event):
    """A unit's result was loaded from a checkpoint instead of re-run."""

    type: ClassVar[str] = "farm_unit_skipped"

    key: str


@dataclass(frozen=True)
class FarmWorkerPool(Event):
    """Worker-pool lifecycle: ``started``, ``stopped`` or ``recycled``
    (after a timeout or worker death poisoned the pool)."""

    type: ClassVar[str] = "farm_worker_pool"

    status: str
    workers: int


# -- farm-broker control-plane events -----------------------------------------
#
# Emitted by :class:`repro.farm.remote.telemetry.BrokerTelemetry` on the
# broker's connection threads.  The broker pre-stamps each payload with
# ``ts`` and trace context (trace_id=campaign, span_id=unit key,
# worker=worker name) instead of using the process-global trace context,
# which is not thread-safe.


@dataclass(frozen=True)
class BrokerCampaignStarted(Event):
    """A client submitted a campaign to the farm broker."""

    type: ClassVar[str] = "broker_campaign_started"

    campaign: str
    units: int
    restored: int
    max_attempts: int
    lease_s: float


@dataclass(frozen=True)
class WorkerJoined(Event):
    """A remote worker completed its hello handshake with the broker."""

    type: ClassVar[str] = "worker_joined"

    worker: str
    worker_id: str


@dataclass(frozen=True)
class WorkerLeft(Event):
    """A remote worker's connection closed (graceful or not)."""

    type: ClassVar[str] = "worker_left"

    worker: str
    worker_id: str
    completed: int
    failed: int


@dataclass(frozen=True)
class LeaseIssued(Event):
    """The broker leased a work unit to a worker."""

    type: ClassVar[str] = "lease_issued"

    key: str
    attempt: int
    worker: str


@dataclass(frozen=True)
class LeaseHeartbeat(Event):
    """A worker heartbeat extended (``fresh``) or was refused (stale)."""

    type: ClassVar[str] = "lease_heartbeat"

    key: str
    attempt: int
    worker: str
    fresh: bool


@dataclass(frozen=True)
class LeaseExpired(Event):
    """The sweep loop reclaimed a lease whose deadline passed."""

    type: ClassVar[str] = "lease_expired"

    key: str
    attempt: int
    worker: str
    age_s: float


@dataclass(frozen=True)
class LeaseReissued(Event):
    """An expired/failed unit went back on the queue for another attempt."""

    type: ClassVar[str] = "lease_reissued"

    key: str
    attempt: int
    reason: str


@dataclass(frozen=True)
class LeaseCompleted(Event):
    """A leased unit's first result landed (closes the lease span)."""

    type: ClassVar[str] = "lease_completed"

    key: str
    attempt: int
    worker: str
    age_s: float
    ok: bool


@dataclass(frozen=True)
class DuplicateSuppressed(Event):
    """A result arrived for an already-completed unit and was dropped."""

    type: ClassVar[str] = "duplicate_suppressed"

    key: str
    attempt: int
    worker: str


@dataclass(frozen=True)
class SpoolRestored(Event):
    """A resubmitted campaign recovered results from the broker spool."""

    type: ClassVar[str] = "spool_restored"

    campaign: str
    restored: int
    dropped: int


@dataclass(frozen=True)
class BrokerClockSync(Event):
    """Per-worker clock offsets the broker estimated for a campaign.

    ``offsets`` maps worker name → estimated ``worker wall − broker
    wall`` seconds (min-filtered, so network delay biases it by at most
    the best-case one-way latency).  ``client_offset_s`` is the same
    estimate for the submitting client, letting the timeline re-anchor
    broker timestamps into the client's clock frame.
    """

    type: ClassVar[str] = "broker_clock_sync"

    campaign: str
    offsets: Dict[str, float]
    client_offset_s: float


#: A sink is anything with ``handle(event)``; ``close()`` is optional.
Sink = Callable

#: What the bus carries: a typed :class:`Event`, or a pre-serialized event
#: payload (a ``dict`` with a ``type`` key, and usually a ``ts`` and trace
#: context) replayed from a worker spool by the farm collector.
EventLike = Union[Event, Dict[str, object]]


def known_event_types() -> "frozenset[str]":
    """The ``type`` discriminators of every event class in this module."""
    types = set()
    stack = [Event]
    while stack:
        cls = stack.pop()
        types.add(cls.type)
        stack.extend(cls.__subclasses__())
    return frozenset(types)


def event_payload(event: EventLike) -> Dict[str, object]:
    """``event`` as a plain serializable dict (a copy for dict inputs)."""
    if isinstance(event, dict):
        return dict(event)
    return event.to_dict()


def event_type(event: EventLike) -> str:
    """The ``type`` discriminator of a typed or pre-serialized event."""
    if isinstance(event, dict):
        return str(event.get("type", "event"))
    return event.type


class EventBus:
    """Fan-out dispatcher from instrumented code to subscribed sinks."""

    def __init__(self) -> None:
        self._sinks: List[object] = []

    @property
    def sinks(self) -> List[object]:
        """The subscribed sinks (read-only view)."""
        return list(self._sinks)

    def subscribe(self, sink: object) -> None:
        """Attach a sink (must expose ``handle(event)``)."""
        self._sinks.append(sink)

    def unsubscribe(self, sink: object) -> None:
        """Detach a sink (no error if absent)."""
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass

    def emit(self, event: EventLike) -> None:
        """Deliver ``event`` to every sink, in subscription order."""
        for sink in self._sinks:
            sink.handle(event)

    def close(self) -> None:
        """Close every sink that supports it and clear subscriptions."""
        for sink in self._sinks:
            closer = getattr(sink, "close", None)
            if closer is not None:
                closer()
        self._sinks.clear()


class RingBufferSink:
    """Keeps the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: int = 10_000) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._buffer: Deque[EventLike] = collections.deque(maxlen=capacity)

    def handle(self, event: EventLike) -> None:
        """Store one event (oldest dropped at capacity)."""
        self._buffer.append(event)

    @property
    def events(self) -> List[EventLike]:
        """Buffered events, oldest first."""
        return list(self._buffer)

    def of_type(self, wanted: Union[str, type]) -> List[EventLike]:
        """Buffered events of one type (by ``type`` string or class)."""
        if isinstance(wanted, str):
            return [e for e in self._buffer if event_type(e) == wanted]
        return [e for e in self._buffer if isinstance(e, wanted)]

    def clear(self) -> None:
        """Drop all buffered events."""
        self._buffer.clear()


class TraceWriter:
    """JSONL sink: one ``{"type": ..., "ts": ..., ...}`` object per line.

    The timestamp is wall-clock seconds (``time.time()``) stamped as the
    event is written; a pre-serialized event (a worker-spool replay)
    keeps the ``ts`` it was captured with, so merged traces preserve the
    worker-side timeline.  The current trace context (campaign/unit/
    worker ids) is stamped onto every line.  Each line is flushed as it
    is written — the buffer is always empty, so a forked worker process
    inheriting this sink can never replay buffered parent data.  Use
    :func:`repro.obs.report.read_trace` to load the file back.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handle = self.path.open("w")

    def handle(self, event: EventLike) -> None:
        """Serialize and append one event."""
        payload = event_payload(event)
        payload.setdefault("ts", time.time())
        context = current_trace_context()
        if context:
            for key, value in context.items():
                payload.setdefault(key, value)
        self._handle.write(json.dumps(payload) + "\n")
        self._handle.flush()

    def close(self) -> None:
        """Flush and close the file (idempotent)."""
        if not self._handle.closed:
            self._handle.close()


#: Phase-level event types surfaced at INFO by :class:`LoggingSink`;
#: everything else (per-measurement, per-step) is DEBUG.
_INFO_EVENT_TYPES = frozenset(
    {
        "campaign_phase",
        "search_converged",
        "ga_generation",
        "nn_calibration",
        "sutp_fallback",
        "farm_run_started",
        "farm_unit_retried",
        "farm_unit_skipped",
        "farm_worker_pool",
        "farm_checkpoint_dropped",
        "broker_campaign_started",
        "worker_joined",
        "worker_left",
        "spool_restored",
        "broker_clock_sync",
    }
)


class LoggingSink:
    """Mirrors events onto the ``repro.obs`` stdlib logger."""

    def handle(self, event: EventLike) -> None:
        """Log one event (INFO for phase-level types, DEBUG otherwise)."""
        name = event_type(event)
        level = logging.INFO if name in _INFO_EVENT_TYPES else logging.DEBUG
        if logger.isEnabledFor(level):
            if isinstance(event, dict):
                items = [
                    (key, value)
                    for key, value in event.items()
                    if key != "type"
                ]
            else:
                items = list(asdict(event).items())
            fields = ", ".join(f"{key}={value}" for key, value in items)
            logger.log(level, "%s: %s", name, fields)
