"""Process-local metrics registry.

Counters, gauges and streaming histograms for the telemetry layer.  The
registry is the quantitative half of :mod:`repro.obs` (the qualitative half
being the event bus): every instrumented hot path increments a counter or
observes a histogram here, and :mod:`repro.obs.report` renders the registry
into the per-campaign cost summary — the observable form of the paper's
measurement-cost argument.

Everything is pure Python (no numpy): histograms keep a deterministic
reservoir sample for quantiles, so the registry can be imported by the
lowest-level modules without dragging in the numeric stack.

Thread safety: a registry created with ``thread_safe=True`` (the
default) guards every mutation and read-out behind one shared
``threading.RLock`` — the instruments it creates share the registry's
lock, so concurrent handler threads (the HTTP service) and the
thread-per-connection farm broker can increment and scrape without an
external lock.  ``thread_safe=False`` keeps the historical lock-free
behaviour for single-threaded hot paths (per-unit capture registries).
"""

from __future__ import annotations

import random
import threading
from typing import Dict, Iterable, List, Optional, Tuple

#: Reservoir size of a streaming histogram.  Quantiles are exact up to this
#: many observations and a uniform sample beyond it.
DEFAULT_RESERVOIR_SIZE = 512


class _NullLock:
    """Zero-cost stand-in for a lock (``thread_safe=False`` registries)."""

    __slots__ = ()

    def __enter__(self) -> "_NullLock":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_LOCK = _NullLock()


class Counter:
    """Monotonic counter with an optional per-label breakdown.

    ``inc(label=...)`` keeps a secondary count per label (e.g. measurements
    per test name) next to the total; the report renders the top labels.
    """

    __slots__ = ("name", "value", "by_label", "_lock")

    def __init__(self, name: str, lock: Optional[object] = None) -> None:
        self.name = name
        self.value = 0
        self.by_label: Dict[str, int] = {}
        self._lock = lock if lock is not None else _NULL_LOCK

    def inc(self, amount: int = 1, label: Optional[str] = None) -> None:
        """Add ``amount`` to the total (and to ``label``'s count if given)."""
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self.value += amount
            if label is not None:
                self.by_label[label] = self.by_label.get(label, 0) + amount

    def top_labels(self, count: int = 20) -> List[Tuple[str, int]]:
        """The ``count`` largest labels, descending, ties by name."""
        with self._lock:
            ranked = sorted(
                self.by_label.items(), key=lambda kv: (-kv[1], kv[0])
            )
        return ranked[:count]


class Gauge:
    """Last-value-wins instrument (e.g. validation accuracy)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: Optional[object] = None) -> None:
        self.name = name
        self.value: Optional[float] = None
        self._lock = lock if lock is not None else _NULL_LOCK

    def set(self, value: float) -> None:
        """Record the current value."""
        with self._lock:
            self.value = float(value)


class Histogram:
    """Streaming value distribution: count/sum/min/max plus quantiles.

    Quantiles come from a bounded reservoir (algorithm R with a fixed-seed
    RNG, so runs are reproducible); below the reservoir size they are exact.
    """

    __slots__ = (
        "name",
        "count",
        "total",
        "min",
        "max",
        "raw",
        "_reservoir",
        "_reservoir_size",
        "_rng",
        "_lock",
    )

    def __init__(
        self,
        name: str,
        reservoir_size: int = DEFAULT_RESERVOIR_SIZE,
        keep_raw: bool = False,
        lock: Optional[object] = None,
    ) -> None:
        if reservoir_size < 1:
            raise ValueError("reservoir_size must be >= 1")
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        #: Every observation in order, when ``keep_raw`` — the farm
        #: collector uses this to replay a worker's histogram into the
        #: parent registry exactly (reservoir state included).
        self.raw: Optional[List[float]] = [] if keep_raw else None
        self._reservoir: List[float] = []
        self._reservoir_size = reservoir_size
        self._rng = random.Random(0x5EED)
        self._lock = lock if lock is not None else _NULL_LOCK

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            if self.raw is not None:
                self.raw.append(value)
            if len(self._reservoir) < self._reservoir_size:
                self._reservoir.append(value)
            else:
                slot = self._rng.randrange(self.count)
                if slot < self._reservoir_size:
                    self._reservoir[slot] = value

    @property
    def mean(self) -> float:
        """Mean observation (``nan`` when empty)."""
        return self.total / self.count if self.count else float("nan")

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (nearest-rank over the reservoir sample)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            if not self._reservoir:
                return float("nan")
            ordered = sorted(self._reservoir)
        rank = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[rank]

    @property
    def p50(self) -> float:
        """Median."""
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        """95th percentile."""
        return self.quantile(0.95)


class MetricsRegistry:
    """Named instruments, created on first use.

    ``counter(name)`` / ``gauge(name)`` / ``histogram(name)`` return the
    existing instrument or create it — so instrumented code needs no setup
    and a summary can show a counter at zero (the instrument exists the
    moment the instrumented path runs, even if it never fires).

    With ``keep_raw=True`` every histogram keeps its full observation
    stream (:attr:`Histogram.raw`) so the registry can be shipped across
    a process boundary and replayed exactly — the farm collector builds
    per-work-unit registries this way.

    ``thread_safe=True`` (the default) shares one reentrant lock across
    the registry and every instrument it creates, so concurrent threads
    can mutate and scrape without external coordination.  Single-thread
    hot paths (per-unit capture registries) can opt out.
    """

    def __init__(self, keep_raw: bool = False, thread_safe: bool = True) -> None:
        self.keep_raw = keep_raw
        self._lock = threading.RLock() if thread_safe else _NULL_LOCK
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created at 0 if new)."""
        with self._lock:
            instrument = self.counters.get(name)
            if instrument is None:
                instrument = self.counters[name] = Counter(
                    name, lock=self._lock
                )
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``."""
        with self._lock:
            instrument = self.gauges.get(name)
            if instrument is None:
                instrument = self.gauges[name] = Gauge(name, lock=self._lock)
        return instrument

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name``."""
        with self._lock:
            instrument = self.histograms.get(name)
            if instrument is None:
                instrument = self.histograms[name] = Histogram(
                    name, keep_raw=self.keep_raw, lock=self._lock
                )
        return instrument

    def names(self) -> Iterable[str]:
        """All instrument names, counters first, each group sorted."""
        with self._lock:
            ordered = (
                sorted(self.counters)
                + sorted(self.gauges)
                + sorted(self.histograms)
            )
        yield from ordered

    def snapshot(self) -> Dict[str, object]:
        """Plain-data dump (for tests and JSON export)."""
        with self._lock:
            return {
                "counters": {
                    name: {"value": c.value, "by_label": dict(c.by_label)}
                    for name, c in self.counters.items()
                },
                "gauges": {name: g.value for name, g in self.gauges.items()},
                "histograms": {
                    name: {
                        "count": h.count,
                        "sum": h.total,
                        "min": h.min,
                        "max": h.max,
                        "mean": h.mean,
                        "p50": h.p50,
                        "p95": h.p95,
                    }
                    for name, h in self.histograms.items()
                },
            }

    def dump_raw(self) -> Dict[str, object]:
        """Transportable (picklable/JSON-able) form for exact replay.

        Histograms dump their full observation stream when the registry
        keeps raw values (the collector's per-unit registries do);
        otherwise the reservoir sample stands in — still deterministic,
        but a subsample beyond :data:`DEFAULT_RESERVOIR_SIZE`.
        """
        with self._lock:
            return {
                "counters": {
                    name: {"value": c.value, "by_label": dict(c.by_label)}
                    for name, c in self.counters.items()
                },
                "gauges": {name: g.value for name, g in self.gauges.items()},
                "histograms": {
                    name: list(h.raw if h.raw is not None else h._reservoir)
                    for name, h in self.histograms.items()
                },
            }

    def merge_raw(self, payload: Dict[str, object]) -> None:
        """Replay a :meth:`dump_raw` payload into this registry.

        Deterministic: counters merge label-sorted, gauges last-write-
        wins, histogram observations replay in recorded order — so
        merging the same per-unit payloads in the same order always
        yields an identical registry, no matter where the units ran.
        """
        with self._lock:
            self._merge_raw_locked(payload)

    def _merge_raw_locked(self, payload: Dict[str, object]) -> None:
        for name, data in sorted(payload.get("counters", {}).items()):
            counter = self.counter(name)
            by_label = data.get("by_label") or {}
            for label, amount in sorted(by_label.items()):
                counter.inc(int(amount), label=label)
            unlabelled = int(data.get("value", 0)) - sum(
                int(v) for v in by_label.values()
            )
            if unlabelled > 0:
                counter.inc(unlabelled)
        for name, value in sorted(payload.get("gauges", {}).items()):
            if value is not None:
                self.gauge(name).set(float(value))
        for name, values in sorted(payload.get("histograms", {}).items()):
            histogram = self.histogram(name)
            for value in values:
                histogram.observe(float(value))

    def reset(self) -> None:
        """Drop every instrument (start of a fresh campaign)."""
        with self._lock:
            self.counters.clear()
            self.gauges.clear()
            self.histograms.clear()
