"""The process-wide observability switchboard.

One global :data:`OBS` object couples the event bus and the metrics
registry behind a single ``enabled`` flag.  Instrumented hot paths follow
one idiom::

    from repro.obs.runtime import OBS

    if OBS.enabled:
        OBS.metrics.counter("ate.measurements").inc(label=test_name)
        OBS.bus.emit(MeasurementEvent(...))

With telemetry off (the default) the entire cost of instrumentation is the
``OBS.enabled`` attribute load — benchmarks are unaffected.  Enabling is
explicit: :func:`enable` (optionally attaching sinks), or the CLI's
``--trace`` / ``--metrics`` / ``-v`` flags which call it for you.

The layer is deliberately process-local and single-threaded, matching the
rest of the stack (one tester, one device, one campaign per process).
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.obs.events import EventBus, LoggingSink, RingBufferSink, TraceWriter
from repro.obs.metrics import MetricsRegistry


class Observability:
    """Enabled flag + event bus + metrics registry, as one unit."""

    __slots__ = ("enabled", "bus", "metrics")

    def __init__(self) -> None:
        self.enabled = False
        self.bus = EventBus()
        self.metrics = MetricsRegistry()

    def enable(self, *sinks: object) -> "Observability":
        """Turn telemetry on, subscribing any given sinks; returns self."""
        for sink in sinks:
            self.bus.subscribe(sink)
        self.enabled = True
        return self

    def disable(self) -> None:
        """Turn telemetry off (sinks stay subscribed but receive nothing)."""
        self.enabled = False

    def reset(self) -> None:
        """Disable, close/detach every sink and drop all metrics.

        Any live profiling session is stopped first *without* emitting —
        its sampler threads must not write into sinks being closed.
        """
        from repro.obs import profile as _profile  # lazy: profile imports OBS

        _profile.stop_profiling(emit=False)
        self.enabled = False
        self.bus.close()
        self.metrics.reset()


#: The process-wide observability instance every instrumented module uses.
OBS = Observability()


def enable(*sinks: object) -> Observability:
    """Enable the global :data:`OBS`, attaching ``sinks``; returns it."""
    return OBS.enable(*sinks)


def disable() -> None:
    """Disable the global :data:`OBS` (metrics and sinks are kept)."""
    OBS.disable()


def reset() -> None:
    """Fully reset the global :data:`OBS` (tests, fresh campaigns)."""
    OBS.reset()


def configure(
    trace_path: Optional[Union[str, Path]] = None,
    ring_buffer: Optional[int] = None,
    log_events: bool = False,
    profile: Optional[object] = None,
) -> Observability:
    """One-call setup used by the CLI and the examples.

    Parameters
    ----------
    trace_path:
        When given, attach a :class:`TraceWriter` writing JSONL here.
    ring_buffer:
        When given, attach a :class:`RingBufferSink` of this capacity.
    log_events:
        When True, attach a :class:`LoggingSink` (stdlib logging).
    profile:
        When given, start the process-wide profiling session: either a
        :class:`~repro.obs.profile.ProfileConfig` or any truthy value
        for the defaults.  Stop it with
        :func:`repro.obs.profile.stop_profiling` (or :func:`reset`).

    Telemetry is enabled even with no sinks — the metrics registry alone
    is often all a ``--metrics`` run needs.
    """
    sinks = []
    if trace_path is not None:
        sinks.append(TraceWriter(trace_path))
    if ring_buffer is not None:
        sinks.append(RingBufferSink(ring_buffer))
    if log_events:
        sinks.append(LoggingSink())
    obs = OBS.enable(*sinks)
    if profile:
        from repro.obs.profile import ProfileConfig, start_profiling

        config = profile if isinstance(profile, ProfileConfig) else None
        start_profiling(config)
    return obs
