"""Cross-process farm telemetry: worker spools, trace context, merge.

PR 3's tester farm ran worker processes with telemetry force-disabled —
exactly the runs the paper's measurement-cost argument cares most about
(parallel lot/wafer/campaign characterization) were blind spots.  This
module closes them:

* **Worker spool** — inside a worker (or around a serial unit), the
  global switchboard is swapped to a fresh bus feeding a bounded
  in-memory :class:`SpoolSink` plus a raw-tracking metrics registry.
  Everything the unit emits (per-measurement events, SUTP walk steps,
  histogram observations) is captured, timestamped at emit time, and
  carried back to the parent as one picklable :class:`WorkerTelemetry`.
* **Trace-context propagation** — the campaign id travels to the worker
  as the *trace id* and the unit key becomes the *span id*; every
  spooled event is stamped with both (plus the worker process name), so
  a merged trace attributes each event to the unit and process that
  produced it.
* **Deterministic merge** — :class:`FarmCollector` replays every unit's
  spooled events and metric observations into the parent's sinks in
  **submission order**, regardless of worker count, scheduling or
  completion order.  Both executors route unit telemetry through the
  same capture/merge pipeline, so a 4-worker run's merged trace and
  metric histograms are identical to the serial run's.

:class:`FarmProgressReporter` is the live half: a plain sink that turns
farm lifecycle events into one stderr line per unit as the run proceeds.
"""

from __future__ import annotations

import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, TextIO

from repro.obs.events import (
    EventBus,
    EventLike,
    FarmUnitMerged,
    clear_trace_context,
    current_trace_context,
    event_payload,
    event_type,
    set_trace_context,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import (
    ProfileConfig,
    ProfileSession,
    active_profile_config,
)
from repro.obs.runtime import OBS

#: Default per-unit spool bound.  A unit past this many events keeps
#: running; the overflow is counted (``dropped_events``) and surfaced as
#: a ``farm.spool.dropped_events`` counter at merge time.
DEFAULT_SPOOL_CAPACITY = 200_000


@dataclass(frozen=True)
class WorkerCaptureConfig:
    """What a worker needs to capture telemetry for one unit.

    Picklable and tiny — the parent ships it with every dispatch.
    ``trace_id`` is the campaign identity; the span id is derived from
    the unit key on the worker side.  When the parent process is
    profiling (``--profile``), ``profile`` carries its
    :class:`~repro.obs.profile.ProfileConfig` so each unit runs its own
    sampler pair inside the executing process.
    """

    trace_id: str
    capture: bool = True
    spool_capacity: int = DEFAULT_SPOOL_CAPACITY
    profile: Optional[ProfileConfig] = None


@dataclass
class WorkerTelemetry:
    """One unit's captured telemetry, shipped back across the boundary."""

    unit_key: str
    worker: str
    started_ts: float
    ended_ts: float
    events: List[Dict[str, object]] = field(default_factory=list)
    metrics: Dict[str, object] = field(default_factory=dict)
    dropped_events: int = 0
    #: Which dispatch produced this capture (1 = first try); retried
    #: units ship attempt=2... so merged traces distinguish attempts.
    attempt: int = 1


class SpoolSink:
    """Bounded in-memory sink of pre-serialized, context-stamped events.

    Each event is converted to its dict payload at emit time, stamped
    with the wall-clock timestamp and the current trace context — the
    exact line a :class:`~repro.obs.events.TraceWriter` would have
    written, ready to replay through any sink in the parent process.
    """

    def __init__(self, capacity: int = DEFAULT_SPOOL_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.events: List[Dict[str, object]] = []
        self.dropped = 0

    def handle(self, event: EventLike) -> None:
        """Capture one event (overflow counted, not stored)."""
        if len(self.events) >= self.capacity:
            self.dropped += 1
            return
        payload = event_payload(event)
        payload.setdefault("ts", time.time())
        context = current_trace_context()
        if context:
            for key, value in context.items():
                payload.setdefault(key, value)
        self.events.append(payload)


class UnitCapture:
    """Swaps the global switchboard to a per-unit spool, and back.

    Used in two places with the same semantics:

    * the serial executor wraps each in-process unit run;
    * :func:`run_unit_captured` wraps the runner inside a pool worker.

    While active, ``OBS.bus`` feeds only the spool and ``OBS.metrics``
    is a fresh raw-tracking registry, so nothing the unit emits reaches
    the parent sinks directly — it all arrives via the deterministic
    merge.  The previous bus/registry/context are restored on
    :meth:`finish` or :meth:`abort` (inherited sinks are detached, never
    closed: in a forked worker they belong to the parent).
    """

    def __init__(
        self,
        config: WorkerCaptureConfig,
        unit_key: str,
        worker: str,
        attempt: int = 1,
    ) -> None:
        self.unit_key = unit_key
        self.worker = worker
        self.attempt = attempt
        self.spool = SpoolSink(config.spool_capacity)
        self._saved_enabled = OBS.enabled
        self._saved_bus = OBS.bus
        self._saved_metrics = OBS.metrics
        self._saved_context = current_trace_context()
        bus = EventBus()
        bus.subscribe(self.spool)
        OBS.bus = bus
        OBS.metrics = MetricsRegistry(keep_raw=True)
        OBS.enabled = True
        set_trace_context(
            trace_id=config.trace_id,
            span_id=unit_key,
            worker=worker,
            attempt=attempt,
        )
        # Per-unit profiling: the session starts *after* the switchboard
        # swap, so it binds the spool bus — its profile/resource events
        # ride back inside this unit's WorkerTelemetry like any other.
        self._profile: Optional[ProfileSession] = None
        if config.profile is not None:
            self._profile = ProfileSession(config.profile).start()
        self.started_ts = time.time()

    def finish(self) -> WorkerTelemetry:
        """Restore the switchboard; the captured telemetry."""
        if self._profile is not None:
            self._profile.stop()
            self._profile = None
        telemetry = WorkerTelemetry(
            unit_key=self.unit_key,
            worker=self.worker,
            started_ts=self.started_ts,
            ended_ts=time.time(),
            events=self.spool.events,
            metrics=OBS.metrics.dump_raw(),
            dropped_events=self.spool.dropped,
            attempt=self.attempt,
        )
        self._restore()
        return telemetry

    def abort(self) -> None:
        """Restore the switchboard, discarding the capture (failed
        attempt — matches a worker death, which loses its spool too)."""
        if self._profile is not None:
            self._profile.stop(emit=False)
            self._profile = None
        self._restore()

    def _restore(self) -> None:
        OBS.enabled = self._saved_enabled
        OBS.bus = self._saved_bus
        OBS.metrics = self._saved_metrics
        saved = self._saved_context
        if saved:
            set_trace_context(**saved)
        else:
            clear_trace_context()


def run_unit_captured(
    runner,
    unit,
    config: WorkerCaptureConfig,
    worker: str,
    attempt: int = 1,
):
    """Execute ``runner(unit)`` under a worker-side capture.

    Returns ``(outcome, telemetry)``.  On an exception the capture is
    discarded and the error propagates (the parent counts the attempt as
    failed either way).  ``attempt`` stamps the trace context so a
    retry's events are distinguishable from the first try's.
    """
    capture = UnitCapture(config, unit.key, worker, attempt=attempt)
    try:
        outcome = runner(unit)
    except BaseException:
        capture.abort()
        raise
    return outcome, capture.finish()


def _telemetry_measurements(telemetry: WorkerTelemetry) -> int:
    counters = telemetry.metrics.get("counters", {})
    data = counters.get("ate.measurements") if counters else None
    return int(data.get("value", 0)) if data else 0


class FarmCollector:
    """Per-run accumulator of unit telemetry, merged in submission order.

    Created by the executors when telemetry is enabled.  ``collect``
    stores the latest successful attempt's telemetry per unit; ``merge``
    replays everything into the parent's live sinks and registry — each
    unit closed by a :class:`~repro.obs.events.FarmUnitMerged` event —
    walking the *submission* order, so the merged section of a trace is
    identical for any worker count and any completion order.
    """

    def __init__(
        self,
        campaign: str,
        unit_keys: Sequence[str],
        spool_capacity: int = DEFAULT_SPOOL_CAPACITY,
    ) -> None:
        self.campaign = campaign or "farm"
        self.spool_capacity = spool_capacity
        self._order: List[str] = list(unit_keys)
        self._telemetry: Dict[str, WorkerTelemetry] = {}
        self._merged = False

    def worker_config(self) -> WorkerCaptureConfig:
        """The capture config shipped with every dispatch."""
        return WorkerCaptureConfig(
            trace_id=self.campaign,
            spool_capacity=self.spool_capacity,
            profile=active_profile_config(),
        )

    @contextmanager
    def capture_unit(
        self, unit_key: str, worker: str = "serial", attempt: int = 1
    ) -> Iterator[None]:
        """Serial-executor scope: capture one in-process unit run."""
        capture = UnitCapture(
            self.worker_config(), unit_key, worker, attempt=attempt
        )
        try:
            yield
        except BaseException:
            capture.abort()
            raise
        self.collect(capture.finish())

    def collect(self, telemetry: Optional[WorkerTelemetry]) -> None:
        """Store one unit's telemetry (latest successful attempt wins)."""
        if telemetry is not None:
            self._telemetry[telemetry.unit_key] = telemetry

    def merge(self) -> None:
        """Replay all collected telemetry into the parent sinks.

        Idempotent; called by the executors in a ``finally`` so even a
        run that raises :class:`~repro.farm.executor.FarmExecutionError`
        flushes the telemetry of every unit that did complete.
        """
        if self._merged or not OBS.enabled:
            self._merged = True
            return
        self._merged = True
        for key in self._order:
            telemetry = self._telemetry.get(key)
            if telemetry is None:
                continue  # checkpoint-skipped or never completed
            for payload in telemetry.events:
                OBS.bus.emit(payload)
            OBS.metrics.merge_raw(telemetry.metrics)
            if telemetry.dropped_events:
                OBS.metrics.counter("farm.spool.dropped_events").inc(
                    telemetry.dropped_events
                )
            OBS.bus.emit(
                FarmUnitMerged(
                    key=key,
                    events=len(telemetry.events),
                    dropped_events=telemetry.dropped_events,
                    measurements=_telemetry_measurements(telemetry),
                    worker=telemetry.worker,
                )
            )


class FarmProgressReporter:
    """Live per-unit progress lines on stderr during a farm run.

    A plain event-bus sink — subscribe it (the CLI's ``--progress``
    flag does) and every unit lifecycle change prints one line::

        [farm 12/16] die/0011 done in 0.42s (381 meas) on ForkProcess-3

    Replayed (pre-serialized) events are ignored: progress reflects the
    live run, the merged trace stays the deterministic record.
    """

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self._total = 0
        self._done = 0

    def _line(self, text: str) -> None:
        print(text, file=self._stream, flush=True)

    def handle(self, event: EventLike) -> None:
        """React to farm lifecycle events; ignore everything else."""
        if isinstance(event, dict):
            return
        name = event_type(event)
        if name == "farm_run_started":
            self._total = event.units
            self._done = 0
            self._line(
                f"[farm] {event.campaign}: {event.units} unit(s) on "
                f"{event.workers} worker(s) ({event.executor})"
            )
        elif name == "farm_unit_completed":
            self._done += 1
            worker = f" on {event.worker}" if event.worker else ""
            self._line(
                f"[farm {self._done}/{self._total}] {event.key} done in "
                f"{event.elapsed_s:.2f}s ({event.measurements} meas)"
                f"{worker}"
            )
        elif name == "farm_unit_skipped":
            self._done += 1
            self._line(
                f"[farm {self._done}/{self._total}] {event.key} "
                f"restored from checkpoint"
            )
        elif name == "farm_unit_retried":
            self._line(
                f"[farm] retrying {event.key} after attempt "
                f"{event.attempt}: {event.error}"
            )
        elif name == "farm_checkpoint_dropped":
            self._line(
                f"[farm] warning: {event.lines} corrupt checkpoint "
                f"line(s) dropped from {event.path}"
            )
