"""Prometheus text-format exposition of a :class:`MetricsRegistry`.

The registry already computes everything a scraper wants — counter
totals with per-label breakdowns, gauges, histogram count/sum/min/max
and streaming quantiles — but until now only the human-readable
``--metrics`` summary could see it.  This module renders any registry
(or a :meth:`MetricsRegistry.snapshot` dict) as `Prometheus text
format, version 0.0.4
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_, the
grammar every mainstream scraper and the ``GET /metrics`` endpoint of
the characterization service speak::

    # TYPE repro_ate_measurements_total counter
    repro_ate_measurements_total 1840
    repro_ate_measurements_total{label="march-c/solid"} 92
    # TYPE repro_http_request_seconds summary
    repro_http_request_seconds{quantile="0.5"} 0.00041
    repro_http_request_seconds_sum 0.19
    repro_http_request_seconds_count 312

It also ships :func:`parse_exposition`, a strict line-grammar parser —
the validation half used by tests, ``repro obs alerts`` and the CI
smoke gate, so the service's output is checked by the same module that
produced it.  Stdlib only, like everything in :mod:`repro.obs`.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Dict, List, Tuple, Union

from repro.obs.metrics import Histogram, MetricsRegistry

#: Quantiles exported for every histogram, as (q, label) pairs.
HISTOGRAM_QUANTILES: Tuple[Tuple[float, str], ...] = (
    (0.50, "0.5"),
    (0.95, "0.95"),
    (0.99, "0.99"),
)

#: Default metric-name prefix (the "namespace" in Prometheus parlance).
DEFAULT_PREFIX = "repro"

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")

#: One exposition line: NAME{labels} VALUE — labels optional.
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)$"
)
_LABEL_PAIR = re.compile(
    r'\s*(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)'
)


def sanitize_metric_name(name: str, prefix: str = DEFAULT_PREFIX) -> str:
    """A valid Prometheus metric name for a registry instrument name.

    Registry names are dotted (``ate.measurements``,
    ``span.lot.seconds``); Prometheus names must match
    ``[a-zA-Z_:][a-zA-Z0-9_:]*``.  Dots and every other invalid
    character become underscores, a leading digit gets a guard
    underscore, and the prefix is prepended when given.
    """
    cleaned = _NAME_BAD_CHARS.sub("_", name)
    if not cleaned:
        cleaned = "_"
    if cleaned[0].isdigit():
        cleaned = "_" + cleaned
    if prefix:
        cleaned = f"{prefix}_{cleaned}"
    assert _NAME_OK.match(cleaned), cleaned
    return cleaned


def escape_label_value(value: object) -> str:
    """Escape a label value per the text format (backslash, quote, LF)."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def format_value(value: object) -> str:
    """One sample value: floats compacted, ``None``/NaN as ``NaN``."""
    if value is None:
        return "NaN"
    number = float(value)  # bools intentionally fall through as 0/1
    if math.isnan(number):
        return "NaN"
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _sample(
    name: str, labels: Dict[str, str], value: object
) -> str:
    if labels:
        body = ",".join(
            f'{key}="{escape_label_value(val)}"'
            for key, val in sorted(labels.items())
        )
        return f"{name}{{{body}}} {format_value(value)}"
    return f"{name} {format_value(value)}"


def _histogram_quantile(data: object, q: float, label: str) -> object:
    """The q-quantile from a live histogram or a snapshot dict."""
    if isinstance(data, Histogram):
        return data.quantile(q)
    if isinstance(data, dict):
        return data.get("p" + label.replace("0.", "").ljust(2, "0"))
    return None


def render_exposition(
    source: Union[MetricsRegistry, Dict[str, object]],
    prefix: str = DEFAULT_PREFIX,
) -> str:
    """Render a registry (or its snapshot) as Prometheus text format.

    Counters become ``<name>_total`` counter families: the unlabelled
    series is the instrument's total and each ``by_label`` bucket rides
    along as a ``label="..."`` series (the total can exceed the label
    sum — unlabelled increments have no bucket).  Gauges with a ``None``
    value are skipped (never set is not zero).  Histograms become
    summaries — quantile series plus ``_sum``/``_count`` — with
    ``_min``/``_max`` gauges alongside, since the registry tracks exact
    extremes that quantiles from a reservoir cannot promise.

    Accepts a live :class:`MetricsRegistry` (preferred: quantiles are
    computed exactly, p99 included) or a :meth:`~MetricsRegistry.snapshot`
    dict (p50/p95 only — the snapshot does not carry p99).
    """
    if isinstance(source, MetricsRegistry):
        # Copy under the registry lock so a concurrent scrape never sees
        # a dict mid-mutation (thread_safe=False registries hold a
        # no-op lock and keep the historical behaviour).
        with source._lock:
            counters: Dict[str, object] = {
                name: {"value": c.value, "by_label": dict(c.by_label)}
                for name, c in source.counters.items()
            }
            gauges: Dict[str, object] = {
                name: g.value for name, g in source.gauges.items()
            }
            histograms: Dict[str, object] = dict(source.histograms)
    else:
        counters = dict(source.get("counters", {}))  # type: ignore[arg-type]
        gauges = dict(source.get("gauges", {}))  # type: ignore[arg-type]
        histograms = dict(source.get("histograms", {}))  # type: ignore[arg-type]

    lines: List[str] = []
    for name in sorted(counters):
        data = counters[name]
        metric = sanitize_metric_name(name, prefix) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(_sample(metric, {}, data.get("value", 0)))  # type: ignore[union-attr]
        by_label = data.get("by_label") or {}  # type: ignore[union-attr]
        for label in sorted(by_label):
            lines.append(_sample(metric, {"label": label}, by_label[label]))
    for name in sorted(gauges):
        value = gauges[name]
        if value is None:
            continue
        metric = sanitize_metric_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(_sample(metric, {}, value))
    for name in sorted(histograms):
        data = histograms[name]
        metric = sanitize_metric_name(name, prefix)
        lines.append(f"# TYPE {metric} summary")
        for q, label in HISTOGRAM_QUANTILES:
            lines.append(
                _sample(
                    metric,
                    {"quantile": label},
                    _histogram_quantile(data, q, label),
                )
            )
        if isinstance(data, Histogram):
            total, count = data.total, data.count
            lo, hi = data.min, data.max
        else:
            total = data.get("sum", 0.0)  # type: ignore[union-attr]
            count = data.get("count", 0)  # type: ignore[union-attr]
            lo = data.get("min")  # type: ignore[union-attr]
            hi = data.get("max")  # type: ignore[union-attr]
        lines.append(_sample(metric + "_sum", {}, total))
        lines.append(_sample(metric + "_count", {}, count))
        for suffix, extreme in (("_min", lo), ("_max", hi)):
            if extreme is not None:
                lines.append(f"# TYPE {metric}{suffix} gauge")
                lines.append(_sample(metric + suffix, {}, extreme))
    return "\n".join(lines) + "\n"


@dataclass(frozen=True)
class Sample:
    """One parsed exposition sample: name, labels, numeric value."""

    name: str
    value: float
    labels: Dict[str, str] = field(default_factory=dict)

    def label(self, key: str) -> str:
        return self.labels.get(key, "")


class ExpositionError(ValueError):
    """A line failed the exposition-format grammar."""


def _parse_labels(body: str) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    position = 0
    while position < len(body):
        match = _LABEL_PAIR.match(body, position)
        if match is None:
            raise ExpositionError(f"malformed label pair at: {body[position:]!r}")
        raw = match.group("value")
        labels[match.group("key")] = (
            raw.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
        )
        position = match.end()
    return labels


def _parse_value(token: str) -> float:
    if token == "NaN":
        return float("nan")
    if token == "+Inf":
        return float("inf")
    if token == "-Inf":
        return float("-inf")
    try:
        return float(token)
    except ValueError as exc:
        raise ExpositionError(f"invalid sample value {token!r}") from exc


def parse_exposition(text: str) -> List[Sample]:
    """Parse (and thereby validate) Prometheus text-format exposition.

    Strict on grammar — an invalid metric name, label pair or value
    raises :class:`ExpositionError` naming the offending line — and
    silent on semantics (TYPE lines are checked for shape, not
    cross-referenced).  Returns every sample in document order.
    """
    samples: List[Sample] = []
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 2 and parts[1] in ("TYPE", "HELP"):
                if len(parts) < 3 or not _NAME_OK.match(parts[2]):
                    raise ExpositionError(
                        f"line {number}: malformed {parts[1]} comment: {line!r}"
                    )
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ExpositionError(f"line {number}: not a sample line: {line!r}")
        labels = (
            _parse_labels(match.group("labels"))
            if match.group("labels")
            else {}
        )
        samples.append(
            Sample(
                name=match.group("name"),
                value=_parse_value(match.group("value")),
                labels=labels,
            )
        )
    return samples


def find_sample(
    samples: List[Sample], name: str, labels: Dict[str, str]
) -> "Sample | None":
    """The first sample matching ``name`` whose labels include ``labels``."""
    for sample in samples:
        if sample.name != name:
            continue
        if all(sample.labels.get(key) == val for key, val in labels.items()):
            return sample
    return None


__all__ = [
    "DEFAULT_PREFIX",
    "ExpositionError",
    "HISTOGRAM_QUANTILES",
    "Sample",
    "escape_label_value",
    "find_sample",
    "format_value",
    "parse_exposition",
    "render_exposition",
    "sanitize_metric_name",
]
