"""Continuous profiling and resource telemetry (``--profile``).

The obs stack records *what* a campaign did (events, metrics, insight)
but, until this module, not *where the CPU went* — exactly the question
ROADMAP item 6 ("name the remaining scalar loops") needs answered.  Two
recorders run alongside tracing, both stdlib-only and both emitting
ordinary telemetry events so profiles ride the existing trace/spool/
merge machinery unchanged:

* :class:`SamplingProfiler` — a background daemon thread wakes ~100
  times a second, reads the profiled thread's frame stack via
  ``sys._current_frames()`` and aggregates the stacks into collapsed
  (folded) counts keyed by the live campaign phase
  (:func:`repro.obs.timing.current_phase`).  Statistical, near-zero
  overhead on the profiled thread, safe for production runs.
* :class:`CProfileSession` — the optional deterministic mode: one
  ``cProfile.Profile`` per campaign phase, switched at span boundaries
  through the phase-listener hook.  Exact call counts and self time,
  at ``cProfile``'s usual overhead; its "stacks" are single frames
  weighted by self-time milliseconds.

Either way the session ends in one :class:`~repro.obs.events.
ProfileRecorded` event, and a :class:`ResourceSampler` periodically
records ``getrusage`` CPU time, RSS (``/proc/self/status`` with a
portable fallback) and GC counters as :class:`~repro.obs.events.
ResourceSample` events plus ``proc.*`` gauges.  Farm work units run
their own pair inside the worker capture, so profiles and resource
series ship back inside ``WorkerTelemetry`` and merge deterministically
like every other event.

The second half of the module is the read side: aggregate the
``profile`` events of a loaded trace into per-phase hot-path tables
(``repro obs profile``), export flamegraph.pl / speedscope-compatible
folded stacks (``repro obs flame``), and derive per-worker busy/idle
utilization from the unit spans and resource series.
"""

from __future__ import annotations

import gc
import os
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.obs import timing
from repro.obs.events import EventBus, ProfileRecorded, ResourceSample
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import OBS

#: Default sampling cadence: ~100 Hz keeps per-sample cost invisible
#: while resolving phases tens of milliseconds long.
DEFAULT_INTERVAL_S = 0.01

#: Default resource-sample cadence.  Each sample is a couple of syscalls;
#: 4 Hz bounds trace growth on long campaigns.
DEFAULT_RESOURCE_INTERVAL_S = 0.25

#: Deepest stack recorded per sample; frames beyond are dropped rootward.
MAX_STACK_DEPTH = 64

#: Phase label for samples taken outside any open span.
TOP_PHASE = "(top)"


@dataclass(frozen=True)
class ProfileConfig:
    """What to record; tiny and picklable so farm dispatches can ship it.

    ``mode`` selects the recorder: ``"sampling"`` (the default
    statistical profiler) or ``"cprofile"`` (deterministic, per-phase).
    ``max_stacks`` bounds the folded table carried by the ``profile``
    event; overflow is counted in ``truncated``, never silently lost.
    """

    mode: str = "sampling"
    interval_s: float = DEFAULT_INTERVAL_S
    resource_interval_s: float = DEFAULT_RESOURCE_INTERVAL_S
    max_stacks: int = 2000

    def __post_init__(self) -> None:
        if self.mode not in ("sampling", "cprofile"):
            raise ValueError(f"unknown profile mode {self.mode!r}")
        if self.interval_s <= 0 or self.resource_interval_s <= 0:
            raise ValueError("profile intervals must be positive")
        if self.max_stacks < 1:
            raise ValueError("max_stacks must be >= 1")


# -- resource readings ---------------------------------------------------------------


def process_cpu_seconds(include_children: bool = False) -> Tuple[float, float]:
    """This process's cumulative ``(user_s, system_s)`` CPU time.

    Uses ``resource.getrusage`` where available and ``os.times`` as the
    portable fallback; ``include_children`` folds in reaped child
    processes (farm workers) — the right total for a campaign record.
    """
    try:
        import resource

        usage = resource.getrusage(resource.RUSAGE_SELF)
        user, system = usage.ru_utime, usage.ru_stime
        if include_children:
            children = resource.getrusage(resource.RUSAGE_CHILDREN)
            user += children.ru_utime
            system += children.ru_stime
        return user, system
    except (ImportError, OSError):
        times = os.times()
        user, system = times.user, times.system
        if include_children:
            user += times.children_user
            system += times.children_system
        return user, system


def _max_rss_kb() -> int:
    """Peak RSS in KiB from ``getrusage`` (0 where unsupported).

    Linux reports ``ru_maxrss`` in KiB, macOS in bytes; normalize.
    """
    try:
        import resource

        peak = int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    except (ImportError, OSError):
        return 0
    if sys.platform == "darwin":
        peak //= 1024
    return peak


def _proc_rss_kb() -> int:
    """Current RSS in KiB via ``/proc/self/status`` (0 where absent)."""
    try:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):
        pass
    return 0


def read_resource_sample(phase: Optional[str] = None) -> ResourceSample:
    """One :class:`ResourceSample` for the calling process, right now."""
    user, system = process_cpu_seconds()
    max_rss = _max_rss_kb()
    rss = _proc_rss_kb() or max_rss
    counts = gc.get_count()
    return ResourceSample(
        cpu_user_s=round(user, 6),
        cpu_system_s=round(system, 6),
        rss_kb=rss,
        max_rss_kb=max_rss,
        gc_gen0=counts[0],
        gc_gen1=counts[1],
        gc_gen2=counts[2],
        phase=timing.current_phase() if phase is None else phase,
    )


class ResourceSampler:
    """Background thread emitting :class:`ResourceSample` events.

    The bus and registry are bound at :meth:`start` — a farm unit
    capture swaps the global switchboard, and each sampler must keep
    feeding the sinks it was started against (the parent's trace, or
    the unit's spool), never whichever bus is current when its timer
    fires.  :meth:`stop` takes one final synchronous sample, so even a
    unit shorter than the interval records its resource footprint.
    """

    def __init__(
        self,
        interval_s: float = DEFAULT_RESOURCE_INTERVAL_S,
        bus: Optional[EventBus] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.interval_s = interval_s
        self.samples = 0
        self._bus = bus
        self._metrics = metrics
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "ResourceSampler":
        """Bind the current switchboard and launch the sampler thread."""
        if self._thread is not None:
            return self
        if self._bus is None:
            self._bus = OBS.bus
        if self._metrics is None:
            self._metrics = OBS.metrics
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-resource-sampler", daemon=True
        )
        self._thread.start()
        return self

    def _emit(self) -> None:
        sample = read_resource_sample()
        self.samples += 1
        metrics = self._metrics
        if metrics is not None:
            metrics.gauge("proc.cpu.user_s").set(sample.cpu_user_s)
            metrics.gauge("proc.cpu.system_s").set(sample.cpu_system_s)
            metrics.gauge("proc.rss_kb").set(sample.rss_kb)
            metrics.gauge("proc.rss_peak_kb").set(sample.max_rss_kb)
        if self._bus is not None:
            self._bus.emit(sample)

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self._emit()

    def stop(self) -> None:
        """Stop the thread and record the final synchronous sample."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        self._emit()


# -- sampling profiler ---------------------------------------------------------------


def _frame_stack(frame) -> Tuple[str, ...]:
    """``frame``'s stack as root-first ``module:function`` labels."""
    parts: List[str] = []
    while frame is not None and len(parts) < MAX_STACK_DEPTH:
        code = frame.f_code
        module = frame.f_globals.get("__name__", "?")
        parts.append(f"{module}:{code.co_name}")
        frame = frame.f_back
    parts.reverse()
    return tuple(parts)


class SamplingProfiler:
    """Statistical profiler: periodic stack captures of one thread.

    A daemon thread wakes every ``interval_s`` and reads the *target*
    thread's current frame via ``sys._current_frames()`` — the profiled
    thread itself is never interrupted, so the observed computation is
    bit-identical with the profiler on or off.  Each captured stack is
    attributed to the campaign phase live at capture time and counted
    into a folded-stack table.
    """

    def __init__(self, config: Optional[ProfileConfig] = None) -> None:
        self.config = config if config is not None else ProfileConfig()
        self.samples = 0
        self._counts: Dict[Tuple[str, Tuple[str, ...]], int] = {}
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._target_id: Optional[int] = None
        self._started = 0.0

    def start(self) -> "SamplingProfiler":
        """Profile the calling thread from now until :meth:`stop`."""
        if self._thread is not None:
            return self
        self._target_id = threading.get_ident()
        self._started = time.perf_counter()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-sampling-profiler", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        interval = self.config.interval_s
        while not self._stop.wait(interval):
            frame = sys._current_frames().get(self._target_id)
            if frame is None:
                continue
            phase = timing.current_phase() or TOP_PHASE
            key = (phase, _frame_stack(frame))
            self._counts[key] = self._counts.get(key, 0) + 1
            self.samples += 1

    def stop(self) -> ProfileRecorded:
        """Stop sampling; the session's :class:`ProfileRecorded` event."""
        duration = time.perf_counter() - self._started
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=5.0)
            self._thread = None
        ranked = sorted(
            self._counts.items(), key=lambda kv: (-kv[1], kv[0])
        )
        kept = ranked[: self.config.max_stacks]
        folded = tuple(
            (phase, ";".join(stack), count)
            for (phase, stack), count in kept
        )
        return ProfileRecorded(
            mode="sampling",
            unit="samples",
            samples=self.samples,
            interval_s=self.config.interval_s,
            duration_s=round(duration, 6),
            folded=folded,
            truncated=len(ranked) - len(kept),
        )


class CProfileSession:
    """Deterministic per-phase profiling via ``cProfile``.

    One ``cProfile.Profile`` per campaign phase, switched inline at
    span boundaries through :func:`repro.obs.timing.add_phase_listener`
    (only one profile can own the profiling hook at a time, so entering
    a phase suspends the enclosing one).  Exact call counts, at
    ``cProfile`` overhead — results are still bit-identical because the
    instrumentation never touches the RNG or the tester.

    The folded output weights each function (a single-frame "stack") by
    its self time in milliseconds, so the hot-path table and flame
    export work unchanged; caller context is not preserved.
    """

    def __init__(self, config: Optional[ProfileConfig] = None) -> None:
        import cProfile

        self.config = config if config is not None else ProfileConfig(mode="cprofile")
        self._make = cProfile.Profile
        self._profiles: Dict[str, object] = {}
        self._active: List[Tuple[str, object]] = []
        self._started = 0.0

    def _profile_for(self, phase: str):
        profile = self._profiles.get(phase)
        if profile is None:
            profile = self._profiles[phase] = self._make()
        return profile

    def _push(self, phase: str) -> None:
        if self._active:
            self._active[-1][1].disable()
        profile = self._profile_for(phase)
        self._active.append((phase, profile))
        profile.enable()

    def _pop(self, phase: str) -> None:
        if not self._active or self._active[-1][0] != phase:
            return
        self._active.pop()[1].disable()
        if self._active:
            self._active[-1][1].enable()

    # Phase-listener protocol (see repro.obs.timing).
    def phase_started(self, name: str) -> None:
        self._push(name)

    def phase_ended(self, name: str) -> None:
        self._pop(name)

    def start(self) -> "CProfileSession":
        """Start profiling (phase :data:`TOP_PHASE` until a span opens)."""
        if self._active:
            return self
        self._started = time.perf_counter()
        timing.add_phase_listener(self)
        self._push(TOP_PHASE)
        return self

    def stop(self) -> ProfileRecorded:
        """Stop all phase profiles; the :class:`ProfileRecorded` event."""
        import pstats

        timing.remove_phase_listener(self)
        while self._active:
            self._active.pop()[1].disable()
        duration = time.perf_counter() - self._started
        entries: List[Tuple[str, str, int]] = []
        calls = 0
        for phase in sorted(self._profiles):
            stats = pstats.Stats(self._profiles[phase])
            for (filename, _, name), row in stats.stats.items():  # type: ignore[attr-defined]
                cc, nc, tt, ct, callers = row
                calls += int(nc)
                weight = int(round(tt * 1000.0))
                if weight <= 0:
                    continue
                module = Path(filename).stem if filename else "?"
                entries.append((phase, f"{module}:{name}", weight))
        entries.sort(key=lambda e: (-e[2], e[0], e[1]))
        kept = entries[: self.config.max_stacks]
        return ProfileRecorded(
            mode="cprofile",
            unit="ms",
            samples=calls,
            interval_s=0.0,
            duration_s=round(duration, 6),
            folded=tuple(kept),
            truncated=len(entries) - len(kept),
        )


class ProfileSession:
    """One profiler + resource sampler pair with a bound event bus.

    The CLI runs one session for the whole process; every farm unit
    capture runs its own inside the executing process.  :meth:`stop`
    emits the session's ``profile`` event (and the resource sampler's
    final reading) onto the bus that was live at :meth:`start`, then
    sets the ``profile.*`` bookkeeping gauges.
    """

    def __init__(self, config: Optional[ProfileConfig] = None) -> None:
        self.config = config if config is not None else ProfileConfig()
        self._bus: Optional[EventBus] = None
        self._metrics: Optional[MetricsRegistry] = None
        self._profiler: Optional[object] = None
        self._resources: Optional[ResourceSampler] = None

    def start(self) -> "ProfileSession":
        """Start both recorders against the current switchboard."""
        if self._profiler is not None:
            return self
        self._bus = OBS.bus
        self._metrics = OBS.metrics
        self._resources = ResourceSampler(
            self.config.resource_interval_s,
            bus=self._bus,
            metrics=self._metrics,
        ).start()
        if self.config.mode == "cprofile":
            self._profiler = CProfileSession(self.config).start()
        else:
            self._profiler = SamplingProfiler(self.config).start()
        return self

    def stop(self, emit: bool = True) -> Optional[ProfileRecorded]:
        """Stop both recorders; emit and return the ``profile`` event.

        With ``emit=False`` the threads are stopped and everything is
        discarded — the teardown safety net for :func:`repro.obs.reset`,
        which must never write into sinks it is about to close.
        """
        if self._profiler is None:
            return None
        profiler, self._profiler = self._profiler, None
        resources, self._resources = self._resources, None
        if not emit and resources is not None:
            resources._bus = None  # discard: stop without a final emit
            resources._metrics = None
        if resources is not None:
            resources.stop()
        event = profiler.stop()
        if not emit:
            return None
        if self._bus is not None:
            self._bus.emit(event)
        if self._metrics is not None:
            self._metrics.gauge("profile.samples").set(event.samples)
            self._metrics.gauge("profile.duration_s").set(event.duration_s)
        return event


#: The process-wide session (CLI ``--profile``) and its config; farm
#: collectors read the config to ship per-unit profiling to workers.
_ACTIVE_CONFIG: Optional[ProfileConfig] = None
_ACTIVE_SESSION: Optional[ProfileSession] = None


def active_profile_config() -> Optional[ProfileConfig]:
    """The config of the running process-wide session, else ``None``."""
    return _ACTIVE_CONFIG


def start_profiling(config: Optional[ProfileConfig] = None) -> ProfileSession:
    """Start (or return) the process-wide profiling session."""
    global _ACTIVE_CONFIG, _ACTIVE_SESSION
    if _ACTIVE_SESSION is not None:
        return _ACTIVE_SESSION
    _ACTIVE_CONFIG = config if config is not None else ProfileConfig()
    _ACTIVE_SESSION = ProfileSession(_ACTIVE_CONFIG).start()
    return _ACTIVE_SESSION


def stop_profiling(emit: bool = True) -> Optional[ProfileRecorded]:
    """Stop the process-wide session (idempotent); its profile event."""
    global _ACTIVE_CONFIG, _ACTIVE_SESSION
    session, _ACTIVE_SESSION = _ACTIVE_SESSION, None
    _ACTIVE_CONFIG = None
    if session is None:
        return None
    return session.stop(emit=emit)


# -- trace analysis ------------------------------------------------------------------


def profile_events(
    records: Iterable[Dict[str, object]],
) -> List[Dict[str, object]]:
    """The ``profile`` events of a loaded trace, in trace order."""
    return [r for r in records if r.get("type") == "profile"]


def merged_folded(
    records: Iterable[Dict[str, object]],
    phase: Optional[str] = None,
) -> Dict[Tuple[str, str], int]:
    """Summed folded-stack weights across every profile in the trace.

    Keys are ``(phase, stack)``; ``phase`` filters to one campaign
    phase.  Weights from different units/workers simply add — sample
    counts and milliseconds both accumulate meaningfully per mode.
    """
    totals: Dict[Tuple[str, str], int] = {}
    for event in profile_events(records):
        for entry in event.get("folded") or ():
            try:
                entry_phase, stack, weight = entry[0], entry[1], int(entry[2])
            except (IndexError, TypeError, ValueError):
                continue
            if phase is not None and entry_phase != phase:
                continue
            key = (str(entry_phase), str(stack))
            totals[key] = totals.get(key, 0) + weight
    return totals


@dataclass
class HotPath:
    """One function's aggregated profile weight within a phase."""

    phase: str
    function: str
    self_weight: int = 0
    cum_weight: int = 0


@dataclass
class ProfileSummary:
    """Per-phase hot-path attribution for a loaded trace."""

    unit: str = "samples"
    modes: List[str] = field(default_factory=list)
    total_weight: int = 0
    truncated: int = 0
    phases: Dict[str, List[HotPath]] = field(default_factory=dict)

    @property
    def empty(self) -> bool:
        return not self.phases


def build_profile_summary(
    records: Iterable[Dict[str, object]],
    phase: Optional[str] = None,
) -> ProfileSummary:
    """Aggregate a trace's profile events into per-phase hot paths.

    Self weight counts stacks where the function is the leaf;
    cumulative weight counts stacks containing it anywhere — the usual
    flame-graph semantics, computed from the folded table.
    """
    records = list(records)
    summary = ProfileSummary()
    for event in profile_events(records):
        mode = str(event.get("mode", "sampling"))
        if mode not in summary.modes:
            summary.modes.append(mode)
        summary.unit = str(event.get("unit", summary.unit))
        summary.truncated += int(event.get("truncated", 0) or 0)
    table: Dict[Tuple[str, str], HotPath] = {}
    for (entry_phase, stack), weight in merged_folded(
        records, phase=phase
    ).items():
        summary.total_weight += weight
        frames = stack.split(";")
        leaf = frames[-1]
        for function in set(frames):
            row = table.get((entry_phase, function))
            if row is None:
                row = table[(entry_phase, function)] = HotPath(
                    phase=entry_phase, function=function
                )
            row.cum_weight += weight
            if function == leaf:
                row.self_weight += weight
    for row in table.values():
        summary.phases.setdefault(row.phase, []).append(row)
    for rows in summary.phases.values():
        rows.sort(key=lambda r: (-r.self_weight, -r.cum_weight, r.function))
    return summary


def _phase_order(summary: ProfileSummary) -> List[str]:
    """Phases by total self weight, descending (ties by name)."""
    weights = {
        phase: sum(r.self_weight for r in rows)
        for phase, rows in summary.phases.items()
    }
    return sorted(weights, key=lambda p: (-weights[p], p))


def render_profile(
    summary: ProfileSummary, top: int = 15
) -> str:
    """``repro obs profile``: the per-phase hot-path table as text."""
    if summary.empty:
        return "(no profile events in trace — record one with --profile)"
    unit = summary.unit
    lines = [
        f"== profile: {summary.total_weight} {unit} across "
        f"{len(summary.phases)} phase(s) "
        f"(mode: {', '.join(summary.modes)}) =="
    ]
    for phase in _phase_order(summary):
        rows = summary.phases[phase]
        phase_total = sum(r.self_weight for r in rows)
        lines.append(f"phase {phase}: {phase_total} {unit}")
        lines.append(
            f"  {'self':>8} {'self%':>6} {'cum':>8} {'cum%':>6}  function"
        )
        for row in rows[:top]:
            self_pct = 100.0 * row.self_weight / max(1, phase_total)
            cum_pct = 100.0 * row.cum_weight / max(1, phase_total)
            lines.append(
                f"  {row.self_weight:>8} {self_pct:>5.1f}% "
                f"{row.cum_weight:>8} {cum_pct:>5.1f}%  {row.function}"
            )
        hidden = len(rows) - min(len(rows), top)
        if hidden > 0:
            lines.append(f"  ... {hidden} more function(s)")
    if summary.truncated:
        lines.append(
            f"({summary.truncated} folded stack(s) truncated at record "
            f"time — raise ProfileConfig.max_stacks to keep more)"
        )
    return "\n".join(lines)


def profile_summary_data(
    summary: ProfileSummary, top: int = 15
) -> Dict[str, object]:
    """Machine-readable form of the hot-path table (``--json``)."""
    return {
        "unit": summary.unit,
        "modes": list(summary.modes),
        "total_weight": summary.total_weight,
        "truncated": summary.truncated,
        "phases": {
            phase: [
                {
                    "function": row.function,
                    "self": row.self_weight,
                    "cum": row.cum_weight,
                }
                for row in summary.phases[phase][:top]
            ]
            for phase in _phase_order(summary)
        },
    }


def write_folded(
    records: Iterable[Dict[str, object]],
    path: Union[str, Path],
    phase: Optional[str] = None,
) -> int:
    """Export a trace's profiles as collapsed stacks; lines written.

    One ``phase;frame;...;frame weight`` line per distinct stack — the
    flamegraph.pl collapsed format, which speedscope also imports
    directly.  The phase rides as the root frame so per-phase flames
    separate visually.
    """
    totals = merged_folded(records, phase=phase)
    ordered = sorted(totals.items(), key=lambda kv: (kv[0][0], -kv[1], kv[0][1]))
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for (entry_phase, stack), weight in ordered:
            handle.write(f"{entry_phase};{stack} {weight}\n")
    return len(ordered)


# -- worker utilization --------------------------------------------------------------


@dataclass
class WorkerUtilization:
    """One worker's busy/idle picture over a farm run."""

    worker: str
    units: int = 0
    busy_s: float = 0.0
    span_s: float = 0.0
    cpu_s: float = 0.0
    peak_rss_kb: int = 0

    @property
    def utilization(self) -> float:
        """Busy fraction of the run span (0..1; 0 when span unknown)."""
        if self.span_s <= 0:
            return 0.0
        return min(1.0, self.busy_s / self.span_s)


def worker_utilization(
    records: Iterable[Dict[str, object]],
) -> List[WorkerUtilization]:
    """Per-worker busy/idle utilization derived from unit spans.

    Busy time sums each worker's ``farm_unit_completed`` durations; the
    run span stretches from ``farm_run_started`` (or the earliest unit
    start) to the last completion, so idle time is scheduling gaps plus
    tail imbalance.  CPU seconds and peak RSS come from each worker's
    ``resource_sample`` series when profiling was on.
    """
    rows: Dict[str, WorkerUtilization] = {}
    run_start: Optional[float] = None
    run_end: Optional[float] = None
    cpu_bounds: Dict[str, Tuple[float, float]] = {}
    for record in records:
        kind = record.get("type")
        if kind == "farm_run_started":
            ts = record.get("ts")
            if isinstance(ts, (int, float)):
                run_start = float(ts) if run_start is None else min(
                    run_start, float(ts)
                )
        elif kind == "farm_unit_completed":
            worker = str(record.get("worker", "") or "serial")
            row = rows.get(worker)
            if row is None:
                row = rows[worker] = WorkerUtilization(worker=worker)
            elapsed = float(record.get("elapsed_s", 0.0) or 0.0)
            row.units += 1
            row.busy_s += elapsed
            ts = record.get("ts")
            if isinstance(ts, (int, float)):
                end = float(ts)
                run_end = end if run_end is None else max(run_end, end)
                start = end - elapsed
                run_start = start if run_start is None else min(
                    run_start, start
                )
        elif kind == "resource_sample":
            worker = str(record.get("worker", "") or "serial")
            cpu = float(record.get("cpu_user_s", 0.0) or 0.0) + float(
                record.get("cpu_system_s", 0.0) or 0.0
            )
            low, high = cpu_bounds.get(worker, (cpu, cpu))
            cpu_bounds[worker] = (min(low, cpu), max(high, cpu))
            row = rows.get(worker)
            if row is not None:
                row.peak_rss_kb = max(
                    row.peak_rss_kb, int(record.get("max_rss_kb", 0) or 0)
                )
    span = 0.0
    if run_start is not None and run_end is not None:
        span = max(0.0, run_end - run_start)
    for worker, row in rows.items():
        row.span_s = round(span, 6)
        row.busy_s = round(row.busy_s, 6)
        bounds = cpu_bounds.get(worker)
        if bounds is not None:
            row.cpu_s = round(bounds[1] - bounds[0], 6)
    return sorted(rows.values(), key=lambda r: r.worker)


def render_worker_utilization(rows: Sequence[WorkerUtilization]) -> str:
    """The per-worker utilization table as aligned text."""
    if not rows:
        return "(no farm unit spans in trace)"
    lines = [
        f"  {'worker':<24}{'units':>6}{'busy s':>10}{'util':>7}"
        f"{'cpu s':>9}{'peak rss':>12}"
    ]
    for row in rows:
        rss = f"{row.peak_rss_kb / 1024.0:.1f} MB" if row.peak_rss_kb else "n/a"
        cpu = f"{row.cpu_s:.3f}" if row.cpu_s else "n/a"
        lines.append(
            f"  {row.worker:<24}{row.units:>6}{row.busy_s:>10.3f}"
            f"{100.0 * row.utilization:>6.1f}%{cpu:>9}{rss:>12}"
        )
    return "\n".join(lines)


__all__ = [
    "DEFAULT_INTERVAL_S",
    "DEFAULT_RESOURCE_INTERVAL_S",
    "CProfileSession",
    "HotPath",
    "ProfileConfig",
    "ProfileSession",
    "ProfileSummary",
    "ResourceSampler",
    "SamplingProfiler",
    "WorkerUtilization",
    "active_profile_config",
    "build_profile_summary",
    "merged_folded",
    "process_cpu_seconds",
    "profile_events",
    "profile_summary_data",
    "read_resource_sample",
    "render_profile",
    "render_worker_utilization",
    "start_profiling",
    "stop_profiling",
    "worker_utilization",
    "write_folded",
]
