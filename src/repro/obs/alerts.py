"""Threshold alerting over a metrics snapshot or the result store.

``repro obs alerts`` is the operations loop's decision step: point it
at a running service's ``/metrics`` (or a saved exposition file, or the
SQLite result store) and it evaluates a small rule language, printing
one line per rule and exiting ``0`` (ok), ``1`` (warning) or ``2``
(critical) — the Nagios/check-style contract cron jobs and CI gates
understand.

Rule syntax — ``METRIC[{label="v"}] OP WARN[:CRIT]``::

    repro_jobs_queue_depth >= 10:50
    repro_jobs_failure_rate >= 0.25:0.5
    repro_http_request_seconds{quantile="0.95"} >= 2:10

Whitespace around the operator is optional.  ``WARN`` alone gives a
warning-only rule; ``WARN:CRIT`` escalates.  A metric named by an
*explicit* rule that is absent from the snapshot is itself a warning
(you asked about something that is not there); absent metrics skip
silently for the built-in default rules, so the same defaults work
against both a ``/metrics`` scrape and a store (which has no HTTP
series).  Comparisons against ``NaN`` never fire — an empty histogram's
quantiles are unknown, not breaching.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.obs.exposition import (
    Sample,
    _parse_labels,
    find_sample,
    parse_exposition,
)

#: Severity order; index = process exit code.
LEVELS = ("ok", "warning", "critical")

_OPS: Dict[str, Callable[[float, float], bool]] = {
    ">=": lambda value, limit: value >= limit,
    "<=": lambda value, limit: value <= limit,
    ">": lambda value, limit: value > limit,
    "<": lambda value, limit: value < limit,
}

_RULE = re.compile(
    r"^\s*(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s*(?P<op>>=|<=|>|<)\s*"
    r"(?P<warn>[-+0-9.eE]+)(?::(?P<crit>[-+0-9.eE]+))?\s*$"
)


class AlertRuleError(ValueError):
    """A rule string failed the rule grammar."""


@dataclass(frozen=True)
class AlertRule:
    """One threshold rule against one metric sample."""

    metric: str
    op: str
    warn: float
    crit: Optional[float] = None
    labels: Dict[str, str] = field(default_factory=dict)
    #: Default rules skip silently when the metric is absent; explicit
    #: rules degrade to a warning instead.
    required: bool = True

    def describe(self) -> str:
        labels = ""
        if self.labels:
            labels = (
                "{"
                + ",".join(
                    f'{key}="{val}"' for key, val in sorted(self.labels.items())
                )
                + "}"
            )
        thresholds = str(self.warn)
        if self.crit is not None:
            thresholds += f":{self.crit}"
        return f"{self.metric}{labels} {self.op} {thresholds}"


@dataclass(frozen=True)
class AlertResult:
    """One evaluated rule: severity level plus a printable message."""

    rule: AlertRule
    level: str
    value: Optional[float]
    message: str


def parse_rule(text: str, required: bool = True) -> AlertRule:
    """Parse one ``METRIC[{labels}] OP WARN[:CRIT]`` rule string."""
    match = _RULE.match(text)
    if match is None:
        raise AlertRuleError(
            f"invalid alert rule {text!r} "
            "(expected METRIC[{label=\"v\"}] OP WARN[:CRIT])"
        )
    op = match.group("op")
    warn = float(match.group("warn"))
    crit = match.group("crit")
    labels = (
        _parse_labels(match.group("labels")) if match.group("labels") else {}
    )
    rule = AlertRule(
        metric=match.group("name"),
        op=op,
        warn=warn,
        crit=float(crit) if crit is not None else None,
        labels=labels,
        required=required,
    )
    if rule.crit is not None and not _OPS[op](rule.crit, rule.warn):
        raise AlertRuleError(
            f"rule {text!r}: the critical threshold must be at least as "
            f"strict as the warning threshold for {op!r}"
        )
    return rule


#: Built-in rules evaluated when no ``--rule`` is given.  All are
#: non-required: each source exports a different subset (a store has no
#: HTTP latency; a fresh service has no job latency yet).
DEFAULT_RULES: Sequence[AlertRule] = (
    AlertRule("repro_jobs_queue_depth", ">=", 10.0, 50.0, required=False),
    AlertRule("repro_jobs_failure_rate", ">=", 0.25, 0.5, required=False),
    AlertRule(
        "repro_http_request_seconds", ">=", 2.0, 10.0,
        labels={"quantile": "0.95"}, required=False,
    ),
    AlertRule(
        "repro_jobs_run_seconds", ">=", 600.0, 3600.0,
        labels={"quantile": "0.95"}, required=False,
    ),
    # Farm-broker fleet health (scraped from farm-broker --metrics-port,
    # or through serve --broker's proxied farm.* gauges).  All optional:
    # a service without a farm simply skips them.
    AlertRule("repro_farm_reissue_rate", ">=", 0.2, 0.5, required=False),
    AlertRule("repro_farm_duplicate_rate", ">=", 0.05, 0.2, required=False),
    AlertRule("repro_farm_worker_churn", ">=", 0.5, 0.9, required=False),
    AlertRule(
        "repro_farm_queue_stall_seconds", ">=", 60.0, 300.0, required=False
    ),
)


def evaluate_rules(
    samples: Sequence[Sample], rules: Sequence[AlertRule]
) -> List[AlertResult]:
    """Evaluate every rule against the samples; one result per rule.

    A rule whose metric is missing yields ``warning`` when the rule is
    required and is dropped from the results otherwise.  NaN values
    evaluate as not-breaching (unknown is not an incident).
    """
    results: List[AlertResult] = []
    for rule in rules:
        sample = find_sample(list(samples), rule.metric, rule.labels)
        if sample is None:
            if rule.required:
                results.append(
                    AlertResult(
                        rule=rule,
                        level="warning",
                        value=None,
                        message=f"{rule.describe()}: metric not found",
                    )
                )
            continue
        value = sample.value
        level = "ok"
        if not math.isnan(value):
            if rule.crit is not None and _OPS[rule.op](value, rule.crit):
                level = "critical"
            elif _OPS[rule.op](value, rule.warn):
                level = "warning"
        results.append(
            AlertResult(
                rule=rule,
                level=level,
                value=value,
                message=f"{rule.describe()}: value {value:g}",
            )
        )
    return results


def worst_level(results: Sequence[AlertResult]) -> int:
    """The exit code: the highest severity index across the results."""
    worst = 0
    for result in results:
        worst = max(worst, LEVELS.index(result.level))
    return worst


def _nearest_rank(values: List[float], q: float) -> float:
    """Nearest-rank quantile matching :meth:`Histogram.quantile`."""
    if not values:
        return float("nan")
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def store_samples(store: object) -> List[Sample]:
    """Synthesize alert-compatible samples from a result store.

    Mirrors the gauge names the service computes at scrape time
    (``repro_jobs_queue_depth``, ``repro_jobs_failure_rate``, per-state
    ``repro_jobs_state{state=...}``) plus queue-wait and run-latency
    summaries derived from the job rows' timestamps — so the same rules
    evaluate against a live ``/metrics`` or a cold database.
    """
    jobs = store.list_jobs()  # type: ignore[attr-defined]
    tally: Dict[str, int] = {}
    queue_waits: List[float] = []
    run_seconds: List[float] = []
    for job in jobs:
        state = str(job.get("state", ""))
        tally[state] = tally.get(state, 0) + 1
        created = job.get("created_ts")
        started = job.get("started_ts")
        finished = job.get("finished_ts")
        if created and started:
            queue_waits.append(max(0.0, float(started) - float(created)))
        if started and finished:
            run_seconds.append(max(0.0, float(finished) - float(started)))
    finished_count = tally.get("completed", 0) + tally.get("failed", 0)
    failure_rate = (
        tally.get("failed", 0) / finished_count if finished_count else 0.0
    )
    samples = [
        Sample("repro_jobs_queue_depth", float(tally.get("queued", 0))),
        Sample("repro_jobs_running", float(tally.get("running", 0))),
        Sample("repro_jobs_failure_rate", failure_rate),
    ]
    for state in sorted(tally):
        samples.append(
            Sample(
                "repro_jobs_state", float(tally[state]), {"state": state}
            )
        )
    for name, series in (
        ("repro_jobs_queue_wait_seconds", queue_waits),
        ("repro_jobs_run_seconds", run_seconds),
    ):
        for q, label in ((0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")):
            samples.append(
                Sample(name, _nearest_rank(series, q), {"quantile": label})
            )
        samples.append(Sample(name + "_count", float(len(series))))
    return samples


def render_results(results: Sequence[AlertResult]) -> str:
    """The printable report: one ``LEVEL  rule: value`` line per rule."""
    if not results:
        return "no rules evaluated (no matching metrics)"
    width = max(len(result.level) for result in results)
    lines = [
        f"{result.level.upper():<{width + 2}}{result.message}"
        for result in results
    ]
    return "\n".join(lines)


def load_samples_text(text: str) -> List[Sample]:
    """Samples from exposition text (validating the grammar as it goes)."""
    return parse_exposition(text)


__all__ = [
    "AlertResult",
    "AlertRule",
    "AlertRuleError",
    "DEFAULT_RULES",
    "LEVELS",
    "evaluate_rules",
    "load_samples_text",
    "parse_rule",
    "render_results",
    "store_samples",
    "worst_level",
]
