"""Structured telemetry for the characterization stack.

The paper's central claim is a *measurement-cost* argument — SUTP's
incremental walk (eqs. 3/4) against the full-range search (eq. 2), the
NN+GA hunt against exhaustive random characterization (Table 1).  This
package turns every such cost into an observable:

* :mod:`repro.obs.events` — typed events (one measurement, one SUTP walk
  step, one GA generation, one NN epoch, one campaign phase) on an
  :class:`EventBus`, with JSONL (:class:`TraceWriter`), in-memory
  (:class:`RingBufferSink`) and logging (:class:`LoggingSink`) sinks,
  plus the process-local trace context (campaign/unit/worker ids)
  stamped onto every serialized event;
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges and streaming histograms (``ate.measurements``,
  ``sutp.fallbacks``, ``search.probes_per_trip``, ``ga.fitness_evals``,
  ``nn.epoch_loss``, ...);
* :mod:`repro.obs.timing` — :func:`span`/:func:`timed` wall-clock phase
  timers feeding both;
* :mod:`repro.obs.collector` — cross-process farm telemetry: per-unit
  worker spools, trace-context propagation, the deterministic
  submission-order merge, and the live :class:`FarmProgressReporter`;
* :mod:`repro.obs.timeline` — Chrome-trace / Perfetto export of a
  merged farm trace (one track per worker);
* :mod:`repro.obs.history` — the per-campaign ``runs.jsonl`` run store
  and the cost-regression comparison behind ``repro obs compare``;
* :mod:`repro.obs.report` — text summaries, including the fig. 3
  per-test cost profile rebuilt from a live trace and the tolerant
  :func:`load_trace` used by the ``repro obs`` commands;
* :mod:`repro.obs.insight` — decision-level introspection: the SUTP
  search audit (RTP reuse vs. window escalation, drift, wasted probes),
  NN ensemble vote breakdowns with calibration, GA convergence and
  operator attribution, and the WCR classification tally;
* :mod:`repro.obs.html` — ``repro obs report``: every insight view plus
  the shmoo heatmap, resource utilization and run history rendered into
  one self-contained HTML file (inline SVG, no scripts, no external
  assets);
* :mod:`repro.obs.profile` — continuous profiling & resource telemetry:
  a background sampling profiler (optional deterministic per-phase
  ``cProfile`` mode) folding stacks per campaign phase, a resource
  sampler (``getrusage`` CPU, RSS, GC) emitting ``resource_sample``
  events, per-worker sessions that ride the farm telemetry merge, and
  the hot-path / folded-stack / utilization analysis behind
  ``repro obs profile`` and ``repro obs flame``.

Everything hangs off the global :data:`OBS` switchboard and is **off by
default**: the disabled path is a single attribute check, so benchmarks
and production runs pay nothing.  See ``docs/observability.md``.
"""

from repro.obs.collector import (
    DEFAULT_SPOOL_CAPACITY,
    FarmCollector,
    FarmProgressReporter,
    SpoolSink,
    UnitCapture,
    WorkerCaptureConfig,
    WorkerTelemetry,
    run_unit_captured,
)
from repro.obs.events import (
    BrokerCampaignStarted,
    BrokerClockSync,
    CampaignPhase,
    DuplicateSuppressed,
    Event,
    EventBus,
    FarmCheckpointDropped,
    FarmRunStarted,
    FarmUnitCompleted,
    FarmUnitDispatched,
    FarmUnitMerged,
    FarmUnitRetried,
    FarmUnitSkipped,
    FarmWorkerPool,
    GAGeneration,
    LeaseCompleted,
    LeaseExpired,
    LeaseHeartbeat,
    LeaseIssued,
    LeaseReissued,
    LoggingSink,
    MeasurementEvent,
    NNCalibration,
    NNEpoch,
    NNVote,
    ProfileRecorded,
    RequestContext,
    ResourceSample,
    RingBufferSink,
    SearchConverged,
    SearchStarted,
    SUTPFallback,
    SUTPTestMeasured,
    SUTPWalkStep,
    SpoolRestored,
    SUTPWindowEscalated,
    TraceWriter,
    WCRClassified,
    WorkerJoined,
    WorkerLeft,
    clear_trace_context,
    current_trace_context,
    known_event_types,
    set_trace_context,
    trace_context,
)
from repro.obs.alerts import (
    AlertResult,
    AlertRule,
    AlertRuleError,
    DEFAULT_RULES,
    evaluate_rules,
    parse_rule,
    render_results,
    store_samples,
    worst_level,
)
from repro.obs.exposition import (
    ExpositionError,
    Sample,
    find_sample,
    parse_exposition,
    render_exposition,
    sanitize_metric_name,
)
from repro.obs.history import (
    RunComparison,
    RunHistory,
    bench_run_record,
    build_run_record,
    compare_runs,
)
from repro.obs.farm import (
    BROKER_EVENT_TYPES,
    align_records,
    extract_clock_sync,
    render_farm_top,
)
from repro.obs.html import build_html_report
from repro.obs.insight import (
    GAInsight,
    INSIGHT_EVENT_TYPES,
    RunInsight,
    SUTPAudit,
    SUTPAuditRow,
    VoteInsight,
    VoteRecord,
    WCRInsight,
    build_insight,
    insight_events,
    render_insight,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profile import (
    ProfileConfig,
    ProfileSession,
    ProfileSummary,
    ResourceSampler,
    SamplingProfiler,
    WorkerUtilization,
    active_profile_config,
    build_profile_summary,
    process_cpu_seconds,
    profile_summary_data,
    read_resource_sample,
    render_profile,
    render_worker_utilization,
    start_profiling,
    stop_profiling,
    worker_utilization,
    write_folded,
)
from repro.obs.report import (
    TraceLoadResult,
    load_trace,
    per_test_measurement_counts,
    read_trace,
    render_metrics_summary,
    render_slowest,
    render_trace_cost_profile,
    render_trace_summary,
    trace_summary_data,
)
from repro.obs.runtime import (
    OBS,
    Observability,
    configure,
    disable,
    enable,
    reset,
)
from repro.obs.timeline import build_chrome_trace, write_chrome_trace
from repro.obs.timing import span, timed

__all__ = [
    "AlertResult",
    "AlertRule",
    "AlertRuleError",
    "BROKER_EVENT_TYPES",
    "BrokerCampaignStarted",
    "BrokerClockSync",
    "CampaignPhase",
    "Counter",
    "DEFAULT_RULES",
    "DEFAULT_SPOOL_CAPACITY",
    "DuplicateSuppressed",
    "Event",
    "ExpositionError",
    "EventBus",
    "FarmCheckpointDropped",
    "FarmCollector",
    "FarmProgressReporter",
    "FarmRunStarted",
    "FarmUnitCompleted",
    "FarmUnitDispatched",
    "FarmUnitMerged",
    "FarmUnitRetried",
    "FarmUnitSkipped",
    "FarmWorkerPool",
    "GAGeneration",
    "GAInsight",
    "Gauge",
    "Histogram",
    "INSIGHT_EVENT_TYPES",
    "LeaseCompleted",
    "LeaseExpired",
    "LeaseHeartbeat",
    "LeaseIssued",
    "LeaseReissued",
    "LoggingSink",
    "MeasurementEvent",
    "MetricsRegistry",
    "NNCalibration",
    "NNEpoch",
    "NNVote",
    "OBS",
    "Observability",
    "ProfileConfig",
    "ProfileRecorded",
    "ProfileSession",
    "ProfileSummary",
    "RequestContext",
    "ResourceSample",
    "ResourceSampler",
    "RingBufferSink",
    "RunComparison",
    "RunHistory",
    "RunInsight",
    "SUTPAudit",
    "Sample",
    "SUTPAuditRow",
    "SUTPFallback",
    "SUTPTestMeasured",
    "SUTPWalkStep",
    "SUTPWindowEscalated",
    "SamplingProfiler",
    "SearchConverged",
    "SearchStarted",
    "SpoolRestored",
    "SpoolSink",
    "TraceLoadResult",
    "TraceWriter",
    "UnitCapture",
    "VoteInsight",
    "VoteRecord",
    "WCRClassified",
    "WCRInsight",
    "WorkerCaptureConfig",
    "WorkerJoined",
    "WorkerLeft",
    "WorkerTelemetry",
    "WorkerUtilization",
    "active_profile_config",
    "align_records",
    "bench_run_record",
    "build_chrome_trace",
    "build_html_report",
    "build_insight",
    "build_profile_summary",
    "build_run_record",
    "clear_trace_context",
    "compare_runs",
    "configure",
    "current_trace_context",
    "disable",
    "enable",
    "evaluate_rules",
    "extract_clock_sync",
    "find_sample",
    "insight_events",
    "known_event_types",
    "load_trace",
    "parse_exposition",
    "parse_rule",
    "per_test_measurement_counts",
    "process_cpu_seconds",
    "profile_summary_data",
    "read_resource_sample",
    "read_trace",
    "render_exposition",
    "render_farm_top",
    "render_insight",
    "render_metrics_summary",
    "render_profile",
    "render_results",
    "render_slowest",
    "render_trace_cost_profile",
    "render_trace_summary",
    "render_worker_utilization",
    "reset",
    "run_unit_captured",
    "sanitize_metric_name",
    "set_trace_context",
    "span",
    "start_profiling",
    "stop_profiling",
    "store_samples",
    "timed",
    "trace_context",
    "trace_summary_data",
    "worker_utilization",
    "worst_level",
    "write_chrome_trace",
    "write_folded",
]
