"""Structured telemetry for the characterization stack.

The paper's central claim is a *measurement-cost* argument — SUTP's
incremental walk (eqs. 3/4) against the full-range search (eq. 2), the
NN+GA hunt against exhaustive random characterization (Table 1).  This
package turns every such cost into an observable:

* :mod:`repro.obs.events` — typed events (one measurement, one SUTP walk
  step, one GA generation, one NN epoch, one campaign phase) on an
  :class:`EventBus`, with JSONL (:class:`TraceWriter`), in-memory
  (:class:`RingBufferSink`) and logging (:class:`LoggingSink`) sinks;
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges and streaming histograms (``ate.measurements``,
  ``sutp.fallbacks``, ``search.probes_per_trip``, ``ga.fitness_evals``,
  ``nn.epoch_loss``, ...);
* :mod:`repro.obs.timing` — :func:`span`/:func:`timed` wall-clock phase
  timers feeding both;
* :mod:`repro.obs.report` — text summaries, including the fig. 3 per-test
  cost profile rebuilt from a live trace.

Everything hangs off the global :data:`OBS` switchboard and is **off by
default**: the disabled path is a single attribute check, so benchmarks
and production runs pay nothing.  See ``docs/observability.md``.
"""

from repro.obs.events import (
    CampaignPhase,
    Event,
    EventBus,
    FarmUnitCompleted,
    FarmUnitDispatched,
    FarmUnitRetried,
    FarmUnitSkipped,
    FarmWorkerPool,
    GAGeneration,
    LoggingSink,
    MeasurementEvent,
    NNEpoch,
    RingBufferSink,
    SearchConverged,
    SearchStarted,
    SUTPFallback,
    SUTPWalkStep,
    TraceWriter,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.report import (
    per_test_measurement_counts,
    read_trace,
    render_metrics_summary,
    render_trace_cost_profile,
)
from repro.obs.runtime import (
    OBS,
    Observability,
    configure,
    disable,
    enable,
    reset,
)
from repro.obs.timing import span, timed

__all__ = [
    "CampaignPhase",
    "Counter",
    "Event",
    "EventBus",
    "FarmUnitCompleted",
    "FarmUnitDispatched",
    "FarmUnitRetried",
    "FarmUnitSkipped",
    "FarmWorkerPool",
    "GAGeneration",
    "Gauge",
    "Histogram",
    "LoggingSink",
    "MeasurementEvent",
    "MetricsRegistry",
    "NNEpoch",
    "OBS",
    "Observability",
    "RingBufferSink",
    "SUTPFallback",
    "SUTPWalkStep",
    "SearchConverged",
    "SearchStarted",
    "TraceWriter",
    "configure",
    "disable",
    "enable",
    "per_test_measurement_counts",
    "read_trace",
    "render_metrics_summary",
    "render_trace_cost_profile",
    "reset",
    "span",
    "timed",
]
