"""Decision-level introspection over a telemetry trace.

The infrastructure telemetry (PRs 1 and 4) records *what happened* — every
measurement, every farm unit.  This module reconstructs *why the algorithms
decided what they decided* from the decision events the stack emits:

* **SUTP search audit** (:class:`SUTPAudit`) — per-test RTP reuse vs.
  window escalation (``sutp_window_escalated``, eqs. 3/4), the per-test
  trip-point drift series, and a wasted-probes accounting against the
  observed-optimal incremental cost;
* **NN ensemble vote introspection** (:class:`VoteInsight`) — per-sample
  vote tallies, disagreement entropy and fuzzy-class margins
  (``nn_vote``), plus the calibration confusion matrix of predicted
  fuzzy class against measured trip-point class (``nn_calibration``);
* **GA convergence telemetry** (:class:`GAInsight`) — per-generation
  best/mean/std fitness, chromosome diversity for both species, and
  operator attribution for each generation's best (``ga_generation``);
* **WCR outcome** (:class:`WCRInsight`) — the fig. 6 classification of
  every worst-case-database record (``wcr_classified``).

:func:`build_insight` assembles all four from a tolerantly loaded trace
(:func:`repro.obs.report.load_trace`); :func:`render_insight` renders
them as text for ``repro obs insight``; :mod:`repro.obs.html` renders
the same structures as a self-contained HTML report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

#: The decision-level event types this module consumes, in emission-layer
#: order.  Used by tests to slice insight streams out of a merged trace.
INSIGHT_EVENT_TYPES: Tuple[str, ...] = (
    "sutp_window_escalated",
    "sutp_test_measured",
    "nn_vote",
    "nn_calibration",
    "ga_generation",
    "wcr_classified",
)


def insight_events(
    records: Iterable[Dict[str, object]],
) -> List[Dict[str, object]]:
    """The decision-level slice of a trace, in trace order."""
    wanted = set(INSIGHT_EVENT_TYPES)
    return [r for r in records if str(r.get("type")) in wanted]


def _opt_float(value: object) -> Optional[float]:
    return None if value is None else float(value)  # type: ignore[arg-type]


# -- (a) SUTP search audit ----------------------------------------------------
@dataclass(frozen=True)
class SUTPAuditRow:
    """One test's SUTP outcome, audit-annotated.

    ``escalated`` means the incremental walk needed more than one step
    (IT >= 2) or fell back to the full search — i.e. the RTP was *not*
    simply reused.  ``wasted_probes`` is the cost above the
    observed-optimal incremental cost in the same trace (``None`` for the
    RTP bootstrap, which has no incremental baseline to compare against).
    """

    index: int
    test_name: str
    trip_point: Optional[float]
    rtp: Optional[float]
    drift: Optional[float]
    measurements: int
    iterations: int
    used_full_search: bool
    escalated: bool
    wasted_probes: Optional[int]

    @property
    def is_bootstrap(self) -> bool:
        """True for the eq. (2) full-range bootstrap (no RTP yet)."""
        return self.rtp is None


@dataclass
class SUTPAudit:
    """Post-run audit of the SUTP search decisions in one trace."""

    rows: List[SUTPAuditRow] = field(default_factory=list)
    #: Escalation events in trace order (iteration, step, window, probes,
    #: fallback) — the raw eqs. 3/4 window growth record.
    escalations: List[Dict[str, object]] = field(default_factory=list)
    #: Cheapest incremental (non-full-search) per-test cost observed in
    #: this trace; the "oracle-optimal" baseline for waste accounting.
    optimal_cost: Optional[int] = None

    @classmethod
    def from_records(
        cls, records: Iterable[Dict[str, object]]
    ) -> "SUTPAudit":
        """Build the audit from trace dictionaries."""
        measured: List[Dict[str, object]] = []
        escalations: List[Dict[str, object]] = []
        for record in records:
            kind = str(record.get("type"))
            if kind == "sutp_test_measured":
                measured.append(record)
            elif kind == "sutp_window_escalated":
                escalations.append(record)
        incremental = [
            int(r.get("measurements", 0) or 0)
            for r in measured
            if not r.get("used_full_search") and r.get("rtp") is not None
        ]
        optimal = min(incremental) if incremental else None
        rows: List[SUTPAuditRow] = []
        for index, record in enumerate(measured):
            rtp = _opt_float(record.get("rtp"))
            used_full = bool(record.get("used_full_search"))
            iterations = int(record.get("iterations", 0) or 0)
            measurements = int(record.get("measurements", 0) or 0)
            escalated = rtp is not None and (used_full or iterations >= 2)
            wasted: Optional[int] = None
            if rtp is not None and optimal is not None:
                wasted = max(0, measurements - optimal)
            rows.append(
                SUTPAuditRow(
                    index=index,
                    test_name=str(record.get("test_name", "unnamed")),
                    trip_point=_opt_float(record.get("trip_point")),
                    rtp=rtp,
                    drift=_opt_float(record.get("drift")),
                    measurements=measurements,
                    iterations=iterations,
                    used_full_search=used_full,
                    escalated=escalated,
                    wasted_probes=wasted,
                )
            )
        return cls(rows=rows, escalations=escalations, optimal_cost=optimal)

    @property
    def escalated_rows(self) -> List[SUTPAuditRow]:
        """Tests whose walk escalated past one step (or fell back)."""
        return [row for row in self.rows if row.escalated]

    @property
    def reused_count(self) -> int:
        """Tests resolved with a single-step walk from the RTP."""
        return sum(
            1
            for row in self.rows
            if row.rtp is not None and not row.escalated
        )

    @property
    def total_wasted(self) -> int:
        """Probes spent above the observed-optimal incremental cost."""
        return sum(
            row.wasted_probes
            for row in self.rows
            if row.wasted_probes is not None
        )

    def drift_series(self) -> List[Tuple[int, str, float]]:
        """Per-test trip-point drift against the RTP, in campaign order."""
        return [
            (row.index, row.test_name, row.drift)
            for row in self.rows
            if row.drift is not None
        ]

    def render(self, max_rows: int = 20) -> str:
        """The audit as an aligned text table (``repro obs insight``)."""
        if not self.rows:
            return "(no sutp_test_measured events in trace)"
        lines = [
            f"SUTP audit: {len(self.rows)} test(s), "
            f"{self.reused_count} RTP-reuse, "
            f"{len(self.escalated_rows)} escalated, "
            f"{self.total_wasted} probe(s) above observed-optimal "
            f"({self.optimal_cost if self.optimal_cost is not None else 'n/a'})"
        ]
        shown = self.escalated_rows[:max_rows]
        if shown:
            lines.append(
                f"  {'test':<28}{'IT':>4}{'meas':>6}{'drift':>9}"
                f"{'wasted':>8}  mode"
            )
        for row in shown:
            drift = "n/a" if row.drift is None else f"{row.drift:+.3f}"
            wasted = "n/a" if row.wasted_probes is None else str(
                row.wasted_probes
            )
            mode = "fallback" if row.used_full_search else "walk"
            lines.append(
                f"  {row.test_name[:28]:<28}{row.iterations:>4}"
                f"{row.measurements:>6}{drift:>9}{wasted:>8}  {mode}"
            )
        hidden = len(self.escalated_rows) - len(shown)
        if hidden > 0:
            lines.append(f"  ... {hidden} more escalated test(s)")
        return "\n".join(lines)


# -- (b) NN ensemble vote introspection --------------------------------------
@dataclass(frozen=True)
class VoteRecord:
    """One ``nn_vote`` event, decoded."""

    sample: int
    votes: Tuple[int, ...]
    predicted: int
    actual: int
    entropy: float
    margin: float
    agreement: float

    @property
    def correct(self) -> bool:
        """True when the majority vote matched the measured class."""
        return self.predicted == self.actual


@dataclass
class VoteInsight:
    """The ensemble's voting behaviour over the validation set."""

    votes: List[VoteRecord] = field(default_factory=list)
    #: The last ``nn_calibration`` event (final learning round): labels,
    #: confusion matrix (measured class x predicted class), accuracy.
    calibration: Optional[Dict[str, object]] = None

    @classmethod
    def from_records(
        cls, records: Iterable[Dict[str, object]]
    ) -> "VoteInsight":
        """Build from trace dictionaries (last calibration round wins)."""
        votes: List[VoteRecord] = []
        calibration: Optional[Dict[str, object]] = None
        for record in records:
            kind = str(record.get("type"))
            if kind == "nn_vote":
                votes.append(
                    VoteRecord(
                        sample=int(record.get("sample", 0) or 0),
                        votes=tuple(
                            int(v) for v in record.get("votes", ()) or ()
                        ),
                        predicted=int(record.get("predicted", 0) or 0),
                        actual=int(record.get("actual", 0) or 0),
                        entropy=float(record.get("entropy", 0.0) or 0.0),
                        margin=float(record.get("margin", 0.0) or 0.0),
                        agreement=float(record.get("agreement", 0.0) or 0.0),
                    )
                )
            elif kind == "nn_calibration":
                calibration = record
        return cls(votes=votes, calibration=calibration)

    @property
    def mean_entropy(self) -> float:
        """Mean disagreement entropy over all recorded votes (bits)."""
        if not self.votes:
            return float("nan")
        return sum(v.entropy for v in self.votes) / len(self.votes)

    @property
    def mean_margin(self) -> float:
        """Mean fuzzy-class margin over all recorded votes."""
        if not self.votes:
            return float("nan")
        return sum(v.margin for v in self.votes) / len(self.votes)

    @property
    def accuracy(self) -> float:
        """Fraction of recorded votes whose majority matched the label."""
        if not self.votes:
            return float("nan")
        return sum(1 for v in self.votes if v.correct) / len(self.votes)

    def entropy_histogram(
        self, bins: int = 8
    ) -> List[Tuple[float, float, int]]:
        """``(low, high, count)`` bins of the disagreement entropy."""
        if not self.votes or bins < 1:
            return []
        values = [v.entropy for v in self.votes]
        low, high = min(values), max(values)
        if high <= low:
            return [(low, high, len(values))]
        width = (high - low) / bins
        counts = [0] * bins
        for value in values:
            slot = min(bins - 1, int((value - low) / width))
            counts[slot] += 1
        return [
            (low + i * width, low + (i + 1) * width, counts[i])
            for i in range(bins)
        ]

    def render(self) -> str:
        """Vote behaviour as text (``repro obs insight``)."""
        if not self.votes:
            return "(no nn_vote events in trace)"
        disagreed = sum(1 for v in self.votes if v.entropy > 0)
        lines = [
            f"NN votes: {len(self.votes)} sample(s), "
            f"accuracy {self.accuracy:.3f}, "
            f"mean entropy {self.mean_entropy:.3f} bit(s), "
            f"mean margin {self.mean_margin:.3f}, "
            f"{disagreed} contested vote(s)"
        ]
        if self.calibration is not None:
            labels = [str(x) for x in self.calibration.get("labels", ())]
            matrix = self.calibration.get("matrix", ())
            lines.append(
                "calibration (measured class rows x predicted class "
                "columns):"
            )
            header = "  " + " " * 20 + "".join(
                f"{label[:8]:>10}" for label in labels
            )
            lines.append(header)
            for label, row in zip(labels, matrix):  # type: ignore[arg-type]
                cells = "".join(f"{int(v):>10}" for v in row)
                lines.append(f"  {label[:20]:<20}{cells}")
        return "\n".join(lines)


# -- (c) GA convergence telemetry --------------------------------------------
@dataclass
class GAInsight:
    """Per-generation convergence record of the fig. 5 GA."""

    generations: List[Dict[str, object]] = field(default_factory=list)

    @classmethod
    def from_records(
        cls, records: Iterable[Dict[str, object]]
    ) -> "GAInsight":
        """All ``ga_generation`` events, in trace order."""
        return cls(
            generations=[
                r for r in records if str(r.get("type")) == "ga_generation"
            ]
        )

    def series(self, key: str) -> List[float]:
        """One numeric column over the generations (``nan`` if absent)."""
        out: List[float] = []
        for generation in self.generations:
            value = generation.get(key)
            out.append(float("nan") if value is None else float(value))  # type: ignore[arg-type]
        return out

    def operator_counts(self) -> Dict[str, int]:
        """How often each operator chain produced a generation's best."""
        counts: Dict[str, int] = {}
        for generation in self.generations:
            operator = str(generation.get("best_operator", "") or "")
            if operator:
                counts[operator] = counts.get(operator, 0) + 1
        return counts

    def render(self) -> str:
        """Convergence trajectory as text (``repro obs insight``)."""
        if not self.generations:
            return "(no ga_generation events in trace)"
        first, last = self.generations[0], self.generations[-1]
        lines = [
            f"GA: {len(self.generations)} generation(s), best fitness "
            f"{float(first.get('best_fitness', 0.0) or 0.0):.4f} -> "
            f"{float(last.get('best_fitness', 0.0) or 0.0):.4f}, "
            f"{int(last.get('restarts', 0) or 0)} restart(s), "
            f"{int(last.get('evaluations', 0) or 0)} evaluation(s)"
        ]
        operators = self.operator_counts()
        if operators:
            ranked = sorted(
                operators.items(), key=lambda kv: (-kv[1], kv[0])
            )
            detail = ", ".join(f"{op} x{n}" for op, n in ranked)
            lines.append(f"best-of-generation produced by: {detail}")
        diversity = [
            v for v in self.series("sequence_diversity") if v == v
        ]
        if diversity:
            lines.append(
                f"sequence diversity: {diversity[0]:.3f} -> "
                f"{diversity[-1]:.3f}"
            )
        return "\n".join(lines)


# -- WCR classification outcome ----------------------------------------------
@dataclass
class WCRInsight:
    """Fig. 6 classification of the worst-case database records."""

    records: List[Dict[str, object]] = field(default_factory=list)

    @classmethod
    def from_records(
        cls, records: Iterable[Dict[str, object]]
    ) -> "WCRInsight":
        """All ``wcr_classified`` events, in trace order."""
        return cls(
            records=[
                r for r in records if str(r.get("type")) == "wcr_classified"
            ]
        )

    def class_counts(self) -> Dict[str, int]:
        """Record count per WCR class."""
        counts: Dict[str, int] = {}
        for record in self.records:
            wcr_class = str(record.get("wcr_class", "unknown"))
            counts[wcr_class] = counts.get(wcr_class, 0) + 1
        return counts

    def render(self) -> str:
        """Classification tally as text (``repro obs insight``)."""
        if not self.records:
            return "(no wcr_classified events in trace)"
        counts = self.class_counts()
        detail = ", ".join(
            f"{name} x{counts[name]}"
            for name in sorted(counts, key=lambda k: (-counts[k], k))
        )
        return f"WCR: {len(self.records)} record(s) classified: {detail}"


# -- assembly ------------------------------------------------------------------
@dataclass
class RunInsight:
    """Everything :func:`build_insight` reconstructs from one trace."""

    sutp: SUTPAudit
    votes: VoteInsight
    ga: GAInsight
    wcr: WCRInsight

    @property
    def empty(self) -> bool:
        """True when the trace carried no decision-level events at all."""
        return not (
            self.sutp.rows
            or self.sutp.escalations
            or self.votes.votes
            or self.ga.generations
            or self.wcr.records
        )


def build_insight(records: Iterable[Dict[str, object]]) -> RunInsight:
    """Reconstruct the decision-level story of one trace."""
    materialized = list(records)
    return RunInsight(
        sutp=SUTPAudit.from_records(materialized),
        votes=VoteInsight.from_records(materialized),
        ga=GAInsight.from_records(materialized),
        wcr=WCRInsight.from_records(materialized),
    )


def render_insight(insight: RunInsight) -> str:
    """``repro obs insight``: the whole decision story as one text block."""
    if insight.empty:
        return (
            "(no decision-level events in trace; run with --trace on a "
            "build that emits insight events)"
        )
    sections = [
        "== decision-level insight ==",
        insight.sutp.render(),
        insight.votes.render(),
        insight.ga.render(),
        insight.wcr.render(),
    ]
    return "\n\n".join(sections)
