"""Chrome-trace / Perfetto timeline export of a merged farm trace.

Turns the JSONL trace of a (possibly parallel) campaign into the Chrome
Trace Event Format — load the output at ``ui.perfetto.dev`` or
``chrome://tracing`` to see the farm run as a timeline:

* one track per worker process, a span per unit execution
  (``farm_unit_completed`` carries the worker, end time and duration);
* a ``farm queue`` track with each unit's queued period
  (dispatch -> execution start) and retry markers;
* a ``campaign`` track with the ``span()`` phase brackets
  (``lot``, ``sweep``, ``optimization.ga``, ...);
* a ``merge`` track with the deterministic per-unit merge points;
* when the campaign ran on the remote farm with broker telemetry, a
  ``broker`` track — lease lifetimes as spans (issue → completion or
  expiry), re-issues, duplicates and worker (dis)connects as instants —
  with every broker/worker timestamp skew-corrected onto the client's
  clock via the ``broker_clock_sync`` offsets
  (:mod:`repro.obs.farm`), so the multi-host picture is truthful;
* when the run was profiled (``--profile``), per-worker *counter*
  tracks — CPU% derived from consecutive ``resource_sample`` events'
  cumulative CPU deltas, and RSS in MB — drawn as Perfetto counters.

Timestamps are microseconds relative to the earliest event in the
trace; durations come from the events themselves, so the picture is the
*live* execution — the merged measurement events keep their worker-side
timestamps and are deliberately not drawn individually (a lot-sized
trace holds hundreds of thousands; the unit spans carry their counts).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.obs.farm import align_records

#: Reserved track (tid) numbers; worker tracks are assigned from
#: :data:`_FIRST_WORKER_TID` upward in order of first appearance.
_PID = 1
_TID_CAMPAIGN = 1
_TID_QUEUE = 2
_TID_MERGE = 3
_TID_BROKER = 4
_FIRST_WORKER_TID = 10


def _us(ts: float, t0: float) -> float:
    return round((ts - t0) * 1e6, 3)


class _Tracks:
    """Stable worker-name -> tid assignment, first appearance wins."""

    def __init__(self) -> None:
        self._tids: Dict[str, int] = {}

    def tid(self, worker: str) -> int:
        worker = worker or "serial"
        if worker not in self._tids:
            self._tids[worker] = _FIRST_WORKER_TID + len(self._tids)
        return self._tids[worker]

    def items(self) -> List[Tuple[str, int]]:
        return sorted(self._tids.items(), key=lambda kv: kv[1])


def build_chrome_trace(
    records: Iterable[Dict[str, object]],
) -> Dict[str, object]:
    """The Chrome-trace dict for a list of trace records.

    ``records`` is what :func:`repro.obs.report.read_trace` /
    :func:`~repro.obs.report.load_trace` return.  Unknown event types
    are ignored, so traces from newer schemas still render.
    """
    records = [r for r in records if isinstance(r.get("ts"), (int, float))]
    if not records:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    # Re-anchor broker/worker timestamps onto the client clock first —
    # an identity pass unless a broker_clock_sync record is present.
    records = align_records(records)
    t0 = min(float(r["ts"]) for r in records)

    events: List[Dict[str, object]] = []
    tracks = _Tracks()
    dispatch_ts: Dict[str, float] = {}
    phase_stack: Dict[str, List[float]] = {}
    # Per-worker previous (ts, cumulative cpu_s) for the CPU% counter.
    cpu_prev: Dict[str, Tuple[float, float]] = {}
    # Open leases by unit key -> (issue ts, attempt, worker); the broker
    # track draws a span when lease_completed/lease_expired closes one.
    open_leases: Dict[str, Tuple[float, int, str]] = {}
    saw_broker = False

    for record in records:
        kind = record.get("type")
        ts = float(record["ts"])
        if kind == "farm_unit_dispatched":
            # Latest dispatch wins: a retried unit's queued period is
            # measured from its final dispatch.
            dispatch_ts[str(record.get("key"))] = ts
        elif kind == "farm_unit_completed":
            key = str(record.get("key"))
            elapsed = float(record.get("elapsed_s", 0.0))
            start = ts - elapsed
            worker = str(record.get("worker", "") or "serial")
            queued_from = dispatch_ts.get(key)
            if queued_from is not None and queued_from < start:
                events.append(
                    {
                        "name": key,
                        "cat": "queued",
                        "ph": "X",
                        "pid": _PID,
                        "tid": _TID_QUEUE,
                        "ts": _us(queued_from, t0),
                        "dur": round((start - queued_from) * 1e6, 3),
                        "args": {"attempt": record.get("attempt", 1)},
                    }
                )
            events.append(
                {
                    "name": key,
                    "cat": "running",
                    "ph": "X",
                    "pid": _PID,
                    "tid": tracks.tid(worker),
                    "ts": _us(start, t0),
                    "dur": round(elapsed * 1e6, 3),
                    "args": {
                        "kind": record.get("kind"),
                        "attempt": record.get("attempt", 1),
                        "measurements": record.get("measurements", 0),
                    },
                }
            )
        elif kind == "farm_unit_retried":
            events.append(
                {
                    "name": f"retry {record.get('key')}",
                    "cat": "retry",
                    "ph": "i",
                    "s": "t",
                    "pid": _PID,
                    "tid": _TID_QUEUE,
                    "ts": _us(ts, t0),
                    "args": {"error": record.get("error", "")},
                }
            )
        elif kind == "farm_unit_merged":
            events.append(
                {
                    "name": f"merge {record.get('key')}",
                    "cat": "merge",
                    "ph": "i",
                    "s": "t",
                    "pid": _PID,
                    "tid": _TID_MERGE,
                    "ts": _us(ts, t0),
                    "args": {
                        "events": record.get("events", 0),
                        "measurements": record.get("measurements", 0),
                        "worker": record.get("worker", ""),
                    },
                }
            )
        elif kind == "resource_sample":
            worker = str(record.get("worker", "") or "serial")
            rss_kb = record.get("rss_kb")
            if isinstance(rss_kb, (int, float)) and rss_kb > 0:
                events.append(
                    {
                        "name": f"rss MB ({worker})",
                        "cat": "resource",
                        "ph": "C",
                        "pid": _PID,
                        "ts": _us(ts, t0),
                        "args": {"rss_mb": round(float(rss_kb) / 1024.0, 2)},
                    }
                )
            cpu = float(record.get("cpu_user_s", 0.0) or 0.0) + float(
                record.get("cpu_system_s", 0.0) or 0.0
            )
            prev = cpu_prev.get(worker)
            cpu_prev[worker] = (ts, cpu)
            # The first sample has no baseline to difference against.
            if prev is not None and ts > prev[0]:
                pct = max(0.0, 100.0 * (cpu - prev[1]) / (ts - prev[0]))
                events.append(
                    {
                        "name": f"cpu % ({worker})",
                        "cat": "resource",
                        "ph": "C",
                        "pid": _PID,
                        "ts": _us(ts, t0),
                        "args": {"cpu_pct": round(pct, 1)},
                    }
                )
        elif kind == "lease_issued":
            saw_broker = True
            open_leases[str(record.get("key"))] = (
                ts,
                int(record.get("attempt") or 1),
                str(record.get("worker") or ""),
            )
        elif kind in ("lease_completed", "lease_expired"):
            saw_broker = True
            key = str(record.get("key"))
            issued = open_leases.pop(key, None)
            if issued is not None:
                start, attempt, worker = issued
                events.append(
                    {
                        "name": key,
                        "cat": "lease",
                        "ph": "X",
                        "pid": _PID,
                        "tid": _TID_BROKER,
                        "ts": _us(min(start, ts), t0),
                        # Clamped: skew correction must never produce a
                        # negative lease lifetime.
                        "dur": max(0.0, round((ts - start) * 1e6, 3)),
                        "args": {
                            "worker": worker,
                            "attempt": attempt,
                            "outcome": (
                                "expired" if kind == "lease_expired"
                                else ("ok" if record.get("ok") else "error")
                            ),
                        },
                    }
                )
        elif kind in (
            "lease_reissued",
            "duplicate_suppressed",
            "worker_joined",
            "worker_left",
            "broker_campaign_started",
            "spool_restored",
        ):
            saw_broker = True
            if kind == "lease_reissued":
                name = f"reissue {record.get('key')}"
                args: Dict[str, object] = {"reason": record.get("reason", "")}
            elif kind == "duplicate_suppressed":
                name = f"duplicate {record.get('key')}"
                args = {"worker": record.get("worker", "")}
            elif kind in ("worker_joined", "worker_left"):
                verb = "join" if kind == "worker_joined" else "leave"
                name = f"{verb} {record.get('worker')}"
                args = {"worker_id": record.get("worker_id", "")}
            elif kind == "spool_restored":
                name = (
                    f"spool restored {record.get('restored')} "
                    f"(dropped {record.get('dropped')})"
                )
                args = {"campaign": record.get("campaign", "")}
            else:
                name = f"campaign {record.get('campaign')}"
                args = {
                    "units": record.get("units", 0),
                    "restored": record.get("restored", 0),
                }
            events.append(
                {
                    "name": name,
                    "cat": "broker",
                    "ph": "i",
                    "s": "t",
                    "pid": _PID,
                    "tid": _TID_BROKER,
                    "ts": _us(ts, t0),
                    "args": args,
                }
            )
        elif kind == "campaign_phase":
            phase = str(record.get("phase"))
            if record.get("status") == "start":
                phase_stack.setdefault(phase, []).append(ts)
            elif record.get("status") == "end":
                stack = phase_stack.get(phase)
                start = stack.pop() if stack else ts - float(
                    record.get("duration_s") or 0.0
                )
                events.append(
                    {
                        "name": phase,
                        "cat": "phase",
                        "ph": "X",
                        "pid": _PID,
                        "tid": _TID_CAMPAIGN,
                        "ts": _us(start, t0),
                        "dur": max(0.0, _us(ts, t0) - _us(start, t0)),
                        "args": {"duration_s": record.get("duration_s")},
                    }
                )

    metadata: List[Dict[str, object]] = [
        {
            "ph": "M",
            "pid": _PID,
            "name": "process_name",
            "args": {"name": "repro farm"},
        },
        _thread_name(_TID_CAMPAIGN, "campaign"),
        _thread_name(_TID_QUEUE, "farm queue"),
        _thread_name(_TID_MERGE, "merge"),
    ]
    if saw_broker:
        metadata.append(_thread_name(_TID_BROKER, "broker"))
    metadata.extend(
        _thread_name(tid, f"worker {name}") for name, tid in tracks.items()
    )
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
    }


def _thread_name(tid: int, name: str) -> Dict[str, object]:
    return {
        "ph": "M",
        "pid": _PID,
        "tid": tid,
        "name": "thread_name",
        "args": {"name": name},
    }


def write_chrome_trace(
    records: Iterable[Dict[str, object]],
    path: Union[str, Path],
    indent: Optional[int] = None,
) -> Path:
    """Write the Chrome-trace JSON for ``records`` to ``path``."""
    path = Path(path)
    path.write_text(json.dumps(build_chrome_trace(records), indent=indent))
    return path
