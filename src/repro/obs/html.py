"""Self-contained HTML run report (``repro obs report``).

One HTML file, zero external assets: styles are an inline ``<style>``
block built on CSS custom properties (with a ``prefers-color-scheme``
dark block), every chart is inline SVG with native ``<title>`` hover
tooltips, and there is no JavaScript at all.  The output is kept
XML-well-formed (closed tags, quoted attributes, escaped text) so CI can
validate it with a plain XML parser.

The report assembles, from a campaign trace plus an optional
``runs.jsonl`` history:

* the shmoo heatmap (pass fraction over measurement order x strobe);
* the fig. 3 per-test measurement-cost profile;
* GA fitness curves (best/mean with a +-std band) and diversity;
* the NN vote-disagreement entropy histogram and calibration matrix;
* the WCR classification bar (fig. 6 classes as status colors);
* the SUTP search-audit table (escalations, drift, wasted probes);
* the resource-utilization section (RSS / CPU% series per process and
  the per-worker busy/idle table) when the run was profiled;
* the run-history cost table.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.insight import RunInsight, build_insight
from repro.obs.profile import worker_utilization
from repro.obs.report import per_test_measurement_counts

# Sequential blue ramp (light -> dark) for the heatmap's pass fraction.
_HEAT_RAMP = (
    "#cde2fb", "#b7d3f6", "#9ec5f4", "#86b6ef", "#6da7ec", "#5598e7",
    "#3987e5", "#2a78d6", "#256abf", "#1c5cab", "#184f95", "#104281",
    "#0d366b",
)

# Fig. 6 class -> (status color variable, text marker).  Status colors
# never carry meaning alone: the marker + label ride along everywhere.
_WCR_STATUS = {
    "pass": ("--status-good", "ok"),
    "weakness": ("--status-warning", "!"),
    "fail": ("--status-critical", "x"),
    "functional_fail": ("--status-critical", "x"),
}

_CSS = """
  :root { color-scheme: light; }
  body {
    margin: 0; padding: 24px;
    background: var(--page); color: var(--ink);
    font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
    font-size: 14px; line-height: 1.45;
  }
  .viz-root {
    color-scheme: light;
    --page: #f9f9f7; --surface-1: #fcfcfb;
    --ink: #0b0b0b; --ink-2: #52514e; --muted: #898781;
    --grid: #e1e0d9; --axis: #c3c2b7;
    --border: rgba(11,11,11,0.10);
    --series-1: #2a78d6; --series-2: #eb6834;
    --status-good: #0ca30c; --status-warning: #fab219;
    --status-critical: #d03b3b;
  }
  @media (prefers-color-scheme: dark) {
    :root { color-scheme: dark; }
    .viz-root {
      color-scheme: dark;
      --page: #0d0d0d; --surface-1: #1a1a19;
      --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
      --grid: #2c2c2a; --axis: #383835;
      --border: rgba(255,255,255,0.10);
      --series-1: #3987e5; --series-2: #d95926;
    }
  }
  h1 { font-size: 20px; margin: 0 0 4px 0; }
  h2 { font-size: 16px; margin: 28px 0 8px 0; }
  p.sub { color: var(--ink-2); margin: 0 0 16px 0; }
  .card {
    background: var(--surface-1); border: 1px solid var(--border);
    border-radius: 8px; padding: 16px; margin: 12px 0;
  }
  .legend { margin: 0 0 8px 0; color: var(--ink-2); font-size: 12px; }
  .legend span.swatch {
    display: inline-block; width: 10px; height: 10px;
    border-radius: 2px; margin: 0 4px 0 12px;
  }
  .note { color: var(--muted); font-size: 12px; }
  table { border-collapse: collapse; width: 100%; font-size: 13px; }
  th, td {
    text-align: left; padding: 4px 10px 4px 0;
    border-bottom: 1px solid var(--grid);
  }
  th { color: var(--ink-2); font-weight: 600; }
  td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
  svg text { font-family: inherit; font-size: 11px; }
"""


def _esc(value: object) -> str:
    """Escape text for XML element content / attribute values."""
    return (
        str(value)
        .replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def _fmt(value: float, digits: int = 3) -> str:
    """Compact numeric label (no trailing zeros, nan-safe)."""
    if value != value or value in (float("inf"), float("-inf")):
        return "n/a"
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    return f"{value:.{digits}f}".rstrip("0").rstrip(".")


def _scale(
    value: float, lo: float, hi: float, out_lo: float, out_hi: float
) -> float:
    if hi <= lo:
        return (out_lo + out_hi) / 2.0
    return out_lo + (value - lo) / (hi - lo) * (out_hi - out_lo)


def _svg_open(width: int, height: int, label: str) -> str:
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" role="img" '
        f'aria-label="{_esc(label)}">'
    )


def _axis_and_grid(
    left: float,
    right: float,
    top: float,
    bottom: float,
    y_lo: float,
    y_hi: float,
    ticks: int = 4,
) -> str:
    """Horizontal gridlines with y tick labels, plus the baseline."""
    parts: List[str] = []
    for i in range(ticks + 1):
        value = y_lo + (y_hi - y_lo) * i / ticks
        y = _scale(value, y_lo, y_hi, bottom, top)
        parts.append(
            f'<line x1="{left}" y1="{y:.1f}" x2="{right}" y2="{y:.1f}" '
            f'stroke="var(--grid)" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{left - 6}" y="{y + 3.5:.1f}" text-anchor="end" '
            f'fill="var(--muted)">{_esc(_fmt(value))}</text>'
        )
    parts.append(
        f'<line x1="{left}" y1="{bottom}" x2="{right}" y2="{bottom}" '
        f'stroke="var(--axis)" stroke-width="1"/>'
    )
    return "".join(parts)


def _finite(values: Iterable[float]) -> List[float]:
    return [v for v in values if v == v and abs(v) != float("inf")]


def _legend(entries: Sequence[Tuple[str, str]]) -> str:
    """Legend row: ``(name, css color var)`` pairs."""
    parts = ['<p class="legend">']
    for name, color in entries:
        parts.append(
            f'<span class="swatch" style="background: var({color})">'
            f"</span>{_esc(name)}"
        )
    parts.append("</p>")
    return "".join(parts)


def _line_chart(
    series: Sequence[Tuple[str, Sequence[float], str]],
    x_label: str,
    width: int = 720,
    height: int = 220,
    band: Optional[Tuple[Sequence[float], Sequence[float], str]] = None,
    label: str = "line chart",
) -> str:
    """Multi-series line chart; ``band`` is a (lower, upper, color) fill."""
    left, right, top, bottom = 52.0, width - 12.0, 12.0, height - 26.0
    all_values: List[float] = []
    for _, values, _ in series:
        all_values.extend(_finite(values))
    if band is not None:
        all_values.extend(_finite(band[0]))
        all_values.extend(_finite(band[1]))
    if not all_values:
        return '<p class="note">(no data)</p>'
    y_lo, y_hi = min(all_values), max(all_values)
    if y_hi <= y_lo:
        y_lo, y_hi = y_lo - 0.5, y_hi + 0.5
    n = max(len(values) for _, values, _ in series)
    parts = [_svg_open(width, height, label)]
    parts.append(_axis_and_grid(left, right, top, bottom, y_lo, y_hi))

    def x_of(i: int) -> float:
        return _scale(i, 0, max(1, n - 1), left, right)

    if band is not None:
        lower, upper, color = band
        pts: List[str] = []
        for i, v in enumerate(upper):
            if v == v:
                pts.append(f"{x_of(i):.1f},{_scale(v, y_lo, y_hi, bottom, top):.1f}")
        for i in range(len(lower) - 1, -1, -1):
            v = lower[i]
            if v == v:
                pts.append(f"{x_of(i):.1f},{_scale(v, y_lo, y_hi, bottom, top):.1f}")
        if pts:
            parts.append(
                f'<polygon points="{" ".join(pts)}" '
                f'fill="var({color})" fill-opacity="0.15" stroke="none"/>'
            )
    for name, values, color in series:
        pts = [
            f"{x_of(i):.1f},{_scale(v, y_lo, y_hi, bottom, top):.1f}"
            for i, v in enumerate(values)
            if v == v
        ]
        if not pts:
            continue
        parts.append(
            f'<polyline points="{" ".join(pts)}" fill="none" '
            f'stroke="var({color})" stroke-width="2" '
            f'stroke-linejoin="round" stroke-linecap="round">'
            f"<title>{_esc(name)}</title></polyline>"
        )
    parts.append(
        f'<text x="{(left + right) / 2:.0f}" y="{height - 6}" '
        f'text-anchor="middle" fill="var(--muted)">{_esc(x_label)}</text>'
    )
    parts.append("</svg>")
    return "".join(parts)


def _bar_chart(
    bars: Sequence[Tuple[str, float, str]],
    color: str,
    x_label: str,
    width: int = 720,
    height: int = 200,
    label: str = "bar chart",
) -> str:
    """Vertical bars: ``(name, value, tooltip)`` triples, one series."""
    if not bars:
        return '<p class="note">(no data)</p>'
    left, right, top, bottom = 52.0, width - 12.0, 12.0, height - 26.0
    y_hi = max(value for _, value, _ in bars)
    if y_hi <= 0:
        y_hi = 1.0
    parts = [_svg_open(width, height, label)]
    parts.append(_axis_and_grid(left, right, top, bottom, 0.0, y_hi))
    slot = (right - left) / len(bars)
    bar_width = max(1.0, min(28.0, slot - 2.0))
    for i, (name, value, tooltip) in enumerate(bars):
        x = left + i * slot + (slot - bar_width) / 2.0
        y = _scale(value, 0.0, y_hi, bottom, top)
        bar_height = max(0.0, bottom - y)
        radius = min(4.0, bar_width / 2.0, bar_height)
        parts.append(
            f'<path d="M{x:.1f},{bottom:.1f} V{y + radius:.1f} '
            f"Q{x:.1f},{y:.1f} {x + radius:.1f},{y:.1f} "
            f"H{x + bar_width - radius:.1f} "
            f"Q{x + bar_width:.1f},{y:.1f} "
            f"{x + bar_width:.1f},{y + radius:.1f} "
            f'V{bottom:.1f} Z" fill="var({color})">'
            f"<title>{_esc(tooltip)}</title></path>"
        )
        _ = name
    parts.append(
        f'<text x="{(left + right) / 2:.0f}" y="{height - 6}" '
        f'text-anchor="middle" fill="var(--muted)">{_esc(x_label)}</text>'
    )
    parts.append("</svg>")
    return "".join(parts)


def _shmoo_heatmap(
    records: Sequence[Dict[str, object]],
    x_bins: int = 36,
    y_bins: int = 12,
    width: int = 720,
    height: int = 240,
) -> str:
    """Pass-fraction heatmap over measurement order x strobe value.

    The trace has no per-cell shmoo events, so the heatmap is rebuilt
    from the raw ``measurement`` stream: campaign progress on x, the
    strobed parameter on y, cell color = fraction of passing probes
    (sequential blue ramp, darker = more passing).
    """
    samples: List[Tuple[int, float, bool]] = []
    for record in records:
        if record.get("type") != "measurement":
            continue
        samples.append(
            (
                len(samples),
                float(record.get("strobe_ns", 0.0) or 0.0),
                bool(record.get("passed")),
            )
        )
    if not samples:
        return '<p class="note">(no measurement events in trace)</p>'
    strobes = [s for _, s, _ in samples]
    s_lo, s_hi = min(strobes), max(strobes)
    if s_hi <= s_lo:
        s_hi = s_lo + 1.0
    left, right, top, bottom = 52.0, width - 12.0, 12.0, height - 26.0
    totals = [[0] * x_bins for _ in range(y_bins)]
    passes = [[0] * x_bins for _ in range(y_bins)]
    for order, strobe, passed in samples:
        xi = min(x_bins - 1, order * x_bins // len(samples))
        yi = min(
            y_bins - 1, int((strobe - s_lo) / (s_hi - s_lo) * y_bins)
        )
        totals[yi][xi] += 1
        if passed:
            passes[yi][xi] += 1
    parts = [_svg_open(width, height, "shmoo pass-fraction heatmap")]
    cell_w = (right - left) / x_bins
    cell_h = (bottom - top) / y_bins
    for yi in range(y_bins):
        for xi in range(x_bins):
            total = totals[yi][xi]
            if total == 0:
                continue
            fraction = passes[yi][xi] / total
            color = _HEAT_RAMP[
                min(len(_HEAT_RAMP) - 1, int(fraction * len(_HEAT_RAMP)))
            ]
            x = left + xi * cell_w
            # y axis points up: bin 0 (lowest strobe) at the bottom.
            y = bottom - (yi + 1) * cell_h
            lo = s_lo + yi * (s_hi - s_lo) / y_bins
            hi = s_lo + (yi + 1) * (s_hi - s_lo) / y_bins
            parts.append(
                f'<rect x="{x + 1:.1f}" y="{y + 1:.1f}" '
                f'width="{max(0.5, cell_w - 2):.1f}" '
                f'height="{max(0.5, cell_h - 2):.1f}" rx="2" '
                f'fill="{color}"><title>'
                f"strobe {_fmt(lo)}-{_fmt(hi)} ns, "
                f"{passes[yi][xi]}/{total} pass "
                f"({100 * fraction:.0f}%)</title></rect>"
            )
    for i in range(0, 5):
        value = s_lo + (s_hi - s_lo) * i / 4
        y = _scale(value, s_lo, s_hi, bottom, top)
        parts.append(
            f'<text x="{left - 6}" y="{y + 3.5:.1f}" text-anchor="end" '
            f'fill="var(--muted)">{_esc(_fmt(value, 1))}</text>'
        )
    parts.append(
        f'<text x="{(left + right) / 2:.0f}" y="{height - 6}" '
        f'text-anchor="middle" fill="var(--muted)">campaign progress '
        f"(measurement order) - darker = higher pass fraction</text>"
    )
    parts.append("</svg>")
    return "".join(parts)


def _table(
    headers: Sequence[Tuple[str, bool]],
    rows: Sequence[Sequence[object]],
) -> str:
    """HTML table; headers are ``(name, numeric)`` pairs."""
    parts = ["<table><thead><tr>"]
    for name, numeric in headers:
        cls = ' class="num"' if numeric else ""
        parts.append(f"<th{cls}>{_esc(name)}</th>")
    parts.append("</tr></thead><tbody>")
    for row in rows:
        parts.append("<tr>")
        for (_, numeric), cell in zip(headers, row):
            cls = ' class="num"' if numeric else ""
            parts.append(f"<td{cls}>{_esc(cell)}</td>")
        parts.append("</tr>")
    parts.append("</tbody></table>")
    return "".join(parts)


def _section(title: str, *body: str) -> str:
    return f"<h2>{_esc(title)}</h2><div class=\"card\">" + "".join(
        body
    ) + "</div>"


def _cost_profile_section(records: Sequence[Dict[str, object]]) -> str:
    groups = per_test_measurement_counts(records)
    if not groups:
        return _section(
            "Measurement-cost profile (fig. 3)",
            '<p class="note">(no measurement events in trace)</p>',
        )
    max_bars = 120
    shown = groups[:max_bars]
    bars = [
        (name, float(count), f"{name}: {count} measurement(s)")
        for name, count in shown
    ]
    notes: List[str] = []
    if len(groups) > max_bars:
        rest = sum(count for _, count in groups[max_bars:])
        notes.append(
            f'<p class="note">first {max_bars} of {len(groups)} test '
            f"group(s) shown; {rest} measurement(s) in the remainder "
            f"omitted from the chart.</p>"
        )
    total = sum(count for _, count in groups)
    return _section(
        "Measurement-cost profile (fig. 3)",
        f'<p class="sub">{total} measurements over {len(groups)} test '
        f"group(s); one bar per test, campaign order.</p>",
        _bar_chart(
            bars,
            "--series-1",
            "tests in campaign order",
            label="per-test measurement cost",
        ),
        *notes,
    )


def _ga_section(insight: RunInsight) -> str:
    ga = insight.ga
    if not ga.generations:
        return _section(
            "GA convergence (fig. 5)",
            '<p class="note">(no ga_generation events in trace)</p>',
        )
    best = ga.series("best_fitness")
    mean = ga.series("mean_fitness")
    std = ga.series("std_fitness")
    lower = [
        m - s if m == m and s == s else float("nan")
        for m, s in zip(mean, std)
    ]
    upper = [
        m + s if m == m and s == s else float("nan")
        for m, s in zip(mean, std)
    ]
    operators = ga.operator_counts()
    operator_rows = sorted(
        operators.items(), key=lambda kv: (-kv[1], kv[0])
    )
    parts = [
        _legend(
            [("best fitness", "--series-1"), ("mean +- std", "--series-2")]
        ),
        _line_chart(
            [
                ("best fitness", best, "--series-1"),
                ("mean fitness", mean, "--series-2"),
            ],
            "generation",
            band=(lower, upper, "--series-2"),
            label="GA fitness per generation",
        ),
    ]
    diversity = ga.series("sequence_diversity")
    cond_diversity = ga.series("condition_diversity")
    if _finite(diversity) or _finite(cond_diversity):
        parts.append(
            _legend(
                [
                    ("sequence diversity", "--series-1"),
                    ("condition diversity", "--series-2"),
                ]
            )
        )
        parts.append(
            _line_chart(
                [
                    ("sequence diversity", diversity, "--series-1"),
                    ("condition diversity", cond_diversity, "--series-2"),
                ],
                "generation",
                height=160,
                label="population diversity per generation",
            )
        )
    if operator_rows:
        parts.append(
            _table(
                [("operator chain of generation best", False), ("generations", True)],
                [(op, count) for op, count in operator_rows],
            )
        )
    return _section("GA convergence (fig. 5)", *parts)


def _votes_section(insight: RunInsight) -> str:
    votes = insight.votes
    if not votes.votes:
        return _section(
            "NN ensemble votes (fig. 4)",
            '<p class="note">(no nn_vote events in trace)</p>',
        )
    bins = votes.entropy_histogram()
    bars = [
        (
            f"{_fmt(lo, 2)}",
            float(count),
            f"entropy {_fmt(lo, 2)}-{_fmt(hi, 2)} bit(s): "
            f"{count} vote(s)",
        )
        for lo, hi, count in bins
    ]
    parts = [
        f'<p class="sub">{len(votes.votes)} validation vote(s): accuracy '
        f"{_fmt(votes.accuracy)}, mean disagreement entropy "
        f"{_fmt(votes.mean_entropy)} bit(s), mean fuzzy-class margin "
        f"{_fmt(votes.mean_margin)}.</p>",
        _bar_chart(
            bars,
            "--series-1",
            "vote-disagreement entropy (bits)",
            height=160,
            label="vote-disagreement histogram",
        ),
    ]
    calibration = votes.calibration
    if calibration is not None:
        labels = [str(x) for x in calibration.get("labels", ())]
        matrix = calibration.get("matrix", ())
        headers: List[Tuple[str, bool]] = [("measured \\ predicted", False)]
        headers.extend((label, True) for label in labels)
        rows = []
        for label, row in zip(labels, matrix):  # type: ignore[arg-type]
            rows.append([label, *[int(v) for v in row]])
        parts.append(
            f'<p class="sub">Calibration, learning round '
            f"{int(calibration.get('round', 0) or 0)}: predicted fuzzy "
            f"class against measured trip-point class.</p>"
        )
        parts.append(_table(headers, rows))
    return _section("NN ensemble votes (fig. 4)", *parts)


def _wcr_section(insight: RunInsight) -> str:
    wcr = insight.wcr
    if not wcr.records:
        return _section(
            "WCR classification (fig. 6)",
            '<p class="note">(no wcr_classified events in trace)</p>',
        )
    counts = wcr.class_counts()
    total = sum(counts.values())
    parts = [
        f'<p class="sub">{total} worst-case database record(s).</p>'
    ]
    width, row_h = 720, 26
    order = sorted(counts, key=lambda k: (-counts[k], k))
    height = row_h * len(order) + 8
    svg = [_svg_open(width, height, "WCR classification")]
    peak = max(counts.values())
    for i, name in enumerate(order):
        color, marker = _WCR_STATUS.get(name, ("--muted", "?"))
        count = counts[name]
        y = 4 + i * row_h
        bar = _scale(count, 0, peak, 0, width - 320)
        svg.append(
            f'<rect x="200" y="{y}" width="{max(2.0, bar):.1f}" '
            f'height="{row_h - 8}" rx="4" fill="var({color})">'
            f"<title>{_esc(name)}: {count} of {total}</title></rect>"
        )
        svg.append(
            f'<text x="194" y="{y + row_h - 12}" text-anchor="end" '
            f'fill="var(--ink-2)">[{_esc(marker)}] {_esc(name)}</text>'
        )
        svg.append(
            f'<text x="{206 + max(2.0, bar):.1f}" y="{y + row_h - 12}" '
            f'fill="var(--ink)">{count}</text>'
        )
    svg.append("</svg>")
    parts.append("".join(svg))
    return _section("WCR classification (fig. 6)", *parts)


def _sutp_section(insight: RunInsight) -> str:
    audit = insight.sutp
    if not audit.rows and not audit.escalations:
        return _section(
            "SUTP search audit (eqs. 3/4)",
            '<p class="note">(no SUTP insight events in trace)</p>',
        )
    parts: List[str] = []
    if audit.rows:
        optimal = (
            str(audit.optimal_cost)
            if audit.optimal_cost is not None
            else "n/a"
        )
        parts.append(
            f'<p class="sub">{len(audit.rows)} test(s): '
            f"{audit.reused_count} resolved by RTP reuse, "
            f"{len(audit.escalated_rows)} escalated, "
            f"{audit.total_wasted} probe(s) above the observed-optimal "
            f"incremental cost ({optimal}).</p>"
        )
        drift = audit.drift_series()
        if drift:
            parts.append(
                _line_chart(
                    [
                        (
                            "trip-point drift vs RTP",
                            [d for _, _, d in drift],
                            "--series-1",
                        )
                    ],
                    "tests in campaign order",
                    height=160,
                    label="trip-point drift series",
                )
            )
        escalated = audit.escalated_rows[:25]
        if escalated:
            rows = []
            for row in escalated:
                rows.append(
                    [
                        row.test_name,
                        row.iterations,
                        row.measurements,
                        "n/a" if row.drift is None else f"{row.drift:+.3f}",
                        (
                            "n/a"
                            if row.wasted_probes is None
                            else row.wasted_probes
                        ),
                        "fallback" if row.used_full_search else "walk",
                    ]
                )
            parts.append(
                _table(
                    [
                        ("escalated test", False),
                        ("IT", True),
                        ("probes", True),
                        ("drift", True),
                        ("wasted", True),
                        ("mode", False),
                    ],
                    rows,
                )
            )
            hidden = len(audit.escalated_rows) - len(escalated)
            if hidden > 0:
                parts.append(
                    f'<p class="note">... {hidden} more escalated '
                    f"test(s) not shown.</p>"
                )
    if audit.escalations:
        windows = [
            float(e.get("window", 0.0) or 0.0) for e in audit.escalations
        ]
        parts.append(
            f'<p class="note">{len(audit.escalations)} window-escalation '
            f"event(s); widest search window {_fmt(max(windows))} "
            f"(SF&#183;IT&#183;(IT+1)/2).</p>"
        )
    return _section("SUTP search audit (eqs. 3/4)", *parts)


#: Per-worker series colors, cycled in worker order.
_SERIES_CYCLE = (
    "--series-1",
    "--series-2",
    "--status-good",
    "--status-warning",
    "--status-critical",
)


def _resource_section(records: Sequence[Dict[str, object]]) -> str:
    """RSS / CPU% charts per process plus the worker-utilization table.

    ``resource_sample`` events only exist when the run was profiled
    (``--profile``); the section renders a note otherwise so the report
    layout is stable either way.
    """
    by_worker: Dict[str, List[Dict[str, object]]] = {}
    for record in records:
        if record.get("type") != "resource_sample":
            continue
        if not isinstance(record.get("ts"), (int, float)):
            continue
        worker = str(record.get("worker", "") or "serial")
        by_worker.setdefault(worker, []).append(record)
    util_rows = worker_utilization(records)
    if not by_worker:
        return _section(
            "Resources & utilization",
            '<p class="note">(no resource_sample events in trace - '
            "record one with --profile)</p>",
        )
    for samples in by_worker.values():
        samples.sort(key=lambda r: float(r["ts"]))

    def color(index: int) -> str:
        return _SERIES_CYCLE[index % len(_SERIES_CYCLE)]

    workers = sorted(by_worker)
    rss_series = []
    cpu_series = []
    for i, worker in enumerate(workers):
        samples = by_worker[worker]
        rss_series.append(
            (
                worker,
                [float(s.get("rss_kb", 0) or 0) / 1024.0 for s in samples],
                color(i),
            )
        )
        # CPU% from consecutive cumulative-CPU deltas (needs 2 samples).
        pct: List[float] = []
        for prev, cur in zip(samples, samples[1:]):
            dt = float(cur["ts"]) - float(prev["ts"])
            if dt <= 0:
                continue
            cpu_prev = float(prev.get("cpu_user_s", 0) or 0) + float(
                prev.get("cpu_system_s", 0) or 0
            )
            cpu_cur = float(cur.get("cpu_user_s", 0) or 0) + float(
                cur.get("cpu_system_s", 0) or 0
            )
            pct.append(max(0.0, 100.0 * (cpu_cur - cpu_prev) / dt))
        if pct:
            cpu_series.append((worker, pct, color(i)))
    total = sum(len(samples) for samples in by_worker.values())
    parts = [
        f'<p class="sub">{total} resource sample(s) across '
        f"{len(workers)} process(es).</p>",
        _legend([(name, col) for name, _, col in rss_series]),
        _line_chart(
            rss_series,
            "resource samples (time order) - RSS in MB",
            height=180,
            label="resident set size per process",
        ),
    ]
    if cpu_series:
        parts.append(
            _line_chart(
                cpu_series,
                "resource samples (time order) - CPU %",
                height=180,
                label="CPU utilization per process",
            )
        )
    if util_rows:
        rows = []
        for row in util_rows:
            rows.append(
                [
                    row.worker,
                    row.units,
                    _fmt(row.busy_s),
                    f"{100.0 * row.utilization:.1f}%",
                    _fmt(row.cpu_s) if row.cpu_s else "n/a",
                    (
                        _fmt(row.peak_rss_kb / 1024.0, 1)
                        if row.peak_rss_kb
                        else "n/a"
                    ),
                ]
            )
        parts.append(
            '<p class="sub">Per-worker utilization: busy time from unit '
            "spans against the whole run span (idle = scheduling gaps + "
            "tail imbalance).</p>"
        )
        parts.append(
            _table(
                [
                    ("worker", False),
                    ("units", True),
                    ("busy s", True),
                    ("util", True),
                    ("cpu s", True),
                    ("peak rss MB", True),
                ],
                rows,
            )
        )
    return _section("Resources & utilization", *parts)


def _history_section(runs: Optional[Sequence[Dict[str, object]]]) -> str:
    if not runs:
        return _section(
            "Run history",
            '<p class="note">(no runs.jsonl history supplied)</p>',
        )
    rows = []
    for record in runs[-12:]:
        workers = record.get("workers")
        rows.append(
            [
                str(record.get("run", "")),
                str(record.get("campaign", ""))[:40],
                _fmt(float(record.get("wall_s", 0.0) or 0.0)),
                "serial" if workers in (None, "") else str(workers),
                int(record.get("measurements", 0) or 0),
                int(record.get("farm_units", 0) or 0),
                int(record.get("farm_retries", 0) or 0),
            ]
        )
    parts = [
        _table(
            [
                ("run", False),
                ("campaign", False),
                ("wall s", True),
                ("workers", True),
                ("measurements", True),
                ("units", True),
                ("retries", True),
            ],
            rows,
        )
    ]
    if len(runs) > 12:
        parts.append(
            f'<p class="note">last 12 of {len(runs)} run(s) shown.</p>'
        )
    return _section("Run history", *parts)


def build_html_report(
    records: Sequence[Dict[str, object]],
    runs: Optional[Sequence[Dict[str, object]]] = None,
    title: str = "Characterization run report",
) -> str:
    """Render one trace (+ optional run history) as a single HTML page.

    The returned string is a complete document: no external stylesheets,
    fonts, scripts or images, and XML-well-formed after the doctype line
    (``xml.etree.ElementTree`` can parse it, which CI does).
    """
    materialized = list(records)
    insight = build_insight(materialized)
    event_count = len(materialized)
    measurement_count = sum(
        1 for r in materialized if r.get("type") == "measurement"
    )
    head = (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8"/>'
        f"<title>{_esc(title)}</title>"
        f"<style>{_CSS}</style></head>"
    )
    body = [
        '<body class="viz-root">',
        f"<h1>{_esc(title)}</h1>",
        f'<p class="sub">{event_count} trace event(s), '
        f"{measurement_count} tester measurement(s).</p>",
        _section(
            "Shmoo (pass fraction)",
            _shmoo_heatmap(materialized),
        ),
        _cost_profile_section(materialized),
        _sutp_section(insight),
        _votes_section(insight),
        _ga_section(insight),
        _wcr_section(insight),
        _resource_section(materialized),
        _history_section(runs),
        '<p class="note">Generated by repro obs report &#8212; '
        "self-contained, no external assets, no scripts.</p>",
        "</body></html>",
    ]
    return head + "".join(body)


__all__ = ["build_html_report"]
