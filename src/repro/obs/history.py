"""Run-history store and cost-regression comparison.

Sommeregger & Pilz (arXiv:2501.07115) motivate watching characterization
cost drift *across* runs, not just within one.  This module gives each
campaign a ``runs.jsonl``: one JSON line per run, recording the
measurement cost (the paper's fig. 3 / eqs. 2-4 economics), wall clock
and per-test breakdown, plus a comparison that flags regressions against
a named baseline run — ``repro obs compare`` exits non-zero when the
total measurement cost regresses beyond the threshold.

The loader is deliberately tolerant: lines from unknown schema versions
(or other writers) are counted and kept best-effort rather than
rejected, so old baselines stay loadable as the format evolves.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.ioutil import durable_append_line
from repro.obs.metrics import MetricsRegistry

RUN_SCHEMA = 1
RUN_KIND = "repro.obs.run"


def build_run_record(
    name: str,
    registry: MetricsRegistry,
    campaign: str = "",
    command: str = "",
    wall_s: float = 0.0,
    workers: Optional[int] = None,
    seed: Optional[int] = None,
    cpu_user_s: Optional[float] = None,
    cpu_system_s: Optional[float] = None,
) -> Dict[str, object]:
    """One run's cost record, built from the live metrics registry.

    ``cpu_user_s``/``cpu_system_s`` are the process's cumulative CPU
    split (children included — see
    :func:`repro.obs.profile.process_cpu_seconds`); their sum is stored
    as ``cpu_s`` so comparisons gate one number.  ``None`` (old callers)
    records ``cpu_s: null`` and keeps CPU comparison advisory-n/a.
    """
    measurements = registry.counters.get("ate.measurements")
    units = registry.counters.get("farm.units")
    retries = registry.counters.get("farm.unit_retries")
    dropped = registry.counters.get("farm.checkpoint.dropped_lines")
    cpu_s: Optional[float] = None
    if cpu_user_s is not None or cpu_system_s is not None:
        cpu_s = round((cpu_user_s or 0.0) + (cpu_system_s or 0.0), 6)
    return {
        "schema": RUN_SCHEMA,
        "kind": RUN_KIND,
        "run": name,
        "campaign": campaign,
        "command": command,
        "ts": time.time(),
        "wall_s": round(float(wall_s), 6),
        "cpu_user_s": None if cpu_user_s is None else round(cpu_user_s, 6),
        "cpu_system_s": None if cpu_system_s is None else round(cpu_system_s, 6),
        "cpu_s": cpu_s,
        "workers": workers,
        "seed": seed,
        "measurements": measurements.value if measurements else 0,
        "per_test": dict(measurements.by_label) if measurements else {},
        "farm_units": units.value if units else 0,
        "farm_retries": retries.value if retries else 0,
        "checkpoint_dropped_lines": dropped.value if dropped else 0,
    }


def bench_run_record(
    payload: Dict[str, object], name: Optional[str] = None
) -> Dict[str, object]:
    """Convert a ``BENCH_<bench>.json`` payload into a run record.

    A bench's machine-readable numbers live under ``data``; every key
    named ``measurements`` or ending in ``_measurements`` is treated as a
    measurement-cost series: the keys become ``per_test`` entries and
    their sum the record's gated ``measurements`` total, so
    :func:`compare_runs` (and ``repro obs compare``) gate benches exactly
    like campaign runs.  The record is named after the bench unless
    ``name`` overrides it (CI appends a suffix to compare a fresh run
    against the committed baseline of the same bench).
    """
    data = payload.get("data") or {}
    per_test: Dict[str, int] = {}
    if isinstance(data, dict):
        for key in sorted(data):
            if key == "measurements" or key.endswith("_measurements"):
                per_test[key] = int(data[key])
    return {
        "schema": RUN_SCHEMA,
        "kind": RUN_KIND,
        "run": name or str(payload.get("bench", "bench")),
        "campaign": "bench",
        "command": "bench",
        "ts": time.time(),
        "wall_s": round(float(payload.get("wall_s", 0.0) or 0.0), 6),
        "cpu_s": (
            round(float(payload["cpu_s"]), 6)
            if isinstance(payload.get("cpu_s"), (int, float))
            else None
        ),
        "workers": None,
        "seed": None,
        "measurements": sum(per_test.values()),
        "per_test": per_test,
        "farm_units": 0,
        "farm_retries": 0,
        "checkpoint_dropped_lines": 0,
    }


@dataclass
class HistoryLoad:
    """Result of a tolerant history load."""

    records: List[Dict[str, object]] = field(default_factory=list)
    dropped_lines: int = 0
    unknown_schema: int = 0


class RunHistory:
    """Append-only ``runs.jsonl`` store of run records."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def append(self, record: Dict[str, object]) -> None:
        """Append one record, durably (flush + fsync).

        A run record is written once at campaign exit; a crash right
        then must not leave a torn line for the next load — or for a
        ``repro store import`` migration — to drop.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as handle:
            durable_append_line(handle, json.dumps(record, sort_keys=True))

    def next_default_name(self) -> str:
        """``run-<n>`` with ``n`` = number of records already stored."""
        return f"run-{len(self.load().records)}"

    def load(self) -> HistoryLoad:
        """Every run record on disk, in append order — tolerantly.

        Unparseable lines are dropped (and counted); parseable records
        with an unrecognized ``schema`` are *kept* (and counted) so a
        newer writer's baselines remain usable as far as their fields
        overlap with ours.
        """
        loaded = HistoryLoad()
        if not self.path.exists():
            return loaded
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                loaded.dropped_lines += 1
                continue
            if not isinstance(record, dict) or record.get("kind") != RUN_KIND:
                loaded.dropped_lines += 1
                continue
            if record.get("schema") != RUN_SCHEMA:
                loaded.unknown_schema += 1
            loaded.records.append(record)
        return loaded

    def find(self, name: str) -> Optional[Dict[str, object]]:
        """The most recent record named ``name`` (``None`` if absent)."""
        found = None
        for record in self.load().records:
            if record.get("run") == name:
                found = record
        return found

    def latest(self) -> Optional[Dict[str, object]]:
        """The most recently appended record."""
        records = self.load().records
        return records[-1] if records else None


def _delta_pct(baseline: float, current: float) -> Optional[float]:
    if not baseline:
        return None
    return (current - baseline) / baseline * 100.0


@dataclass
class RunComparison:
    """A run measured against a baseline run."""

    baseline: Dict[str, object]
    run: Dict[str, object]
    threshold_pct: float = 5.0
    #: Optional wall-clock gate, in percent.  ``None`` (the default) keeps
    #: wall clock purely advisory — the right setting for CI runners,
    #: whose speed varies run to run.
    wall_threshold_pct: Optional[float] = None
    #: Optional CPU-time gate, in percent.  CPU seconds are steadier than
    #: wall clock (no scheduling noise) but still host-dependent, so the
    #: delta is always *reported* and only gates when a threshold is set
    #: (``obs compare --cpu-threshold``).
    cpu_threshold_pct: Optional[float] = None

    @property
    def measurement_delta_pct(self) -> Optional[float]:
        return _delta_pct(
            float(self.baseline.get("measurements", 0) or 0),
            float(self.run.get("measurements", 0) or 0),
        )

    @property
    def wall_delta_pct(self) -> Optional[float]:
        return _delta_pct(
            float(self.baseline.get("wall_s", 0.0) or 0.0),
            float(self.run.get("wall_s", 0.0) or 0.0),
        )

    @property
    def wall_regressed(self) -> bool:
        """True when a wall-clock gate is set and exceeded."""
        if self.wall_threshold_pct is None:
            return False
        delta = self.wall_delta_pct
        return delta is not None and delta > self.wall_threshold_pct

    @property
    def cpu_delta_pct(self) -> Optional[float]:
        """CPU-seconds delta in percent (``None`` when either record
        predates the ``cpu_s`` field)."""
        baseline = self.baseline.get("cpu_s")
        current = self.run.get("cpu_s")
        if not isinstance(baseline, (int, float)) or not isinstance(
            current, (int, float)
        ):
            return None
        return _delta_pct(float(baseline), float(current))

    @property
    def cpu_regressed(self) -> bool:
        """True when a CPU-time gate is set and exceeded."""
        if self.cpu_threshold_pct is None:
            return False
        delta = self.cpu_delta_pct
        return delta is not None and delta > self.cpu_threshold_pct

    @property
    def regressed(self) -> bool:
        """True when measurement cost regressed beyond the threshold.

        Measurement count is the deterministic cost axis (the paper's
        argument); wall clock is reported but advisory — it varies with
        host load and worker count — unless an explicit
        ``wall_threshold_pct`` opts it into the gate.
        """
        delta = self.measurement_delta_pct
        if delta is not None and delta > self.threshold_pct:
            return True
        return self.wall_regressed or self.cpu_regressed

    def per_test_regressions(self, count: int = 10) -> List[Dict[str, object]]:
        """The largest per-test measurement increases, descending."""
        base: Dict[str, int] = dict(self.baseline.get("per_test") or {})
        cur: Dict[str, int] = dict(self.run.get("per_test") or {})
        rows = []
        for name in sorted(set(base) | set(cur)):
            before, after = int(base.get(name, 0)), int(cur.get(name, 0))
            if after > before:
                rows.append(
                    {"test": name, "baseline": before, "run": after,
                     "delta": after - before}
                )
        rows.sort(key=lambda r: (-r["delta"], r["test"]))
        return rows[:count]

    def render(self) -> str:
        """Human-readable comparison report."""

        def fmt(delta: Optional[float]) -> str:
            return "n/a" if delta is None else f"{delta:+.2f}%"

        lines = [
            f"== run comparison: {self.run.get('run')} vs baseline "
            f"{self.baseline.get('run')} ==",
            f"  measurements: {self.baseline.get('measurements', 0)} -> "
            f"{self.run.get('measurements', 0)} "
            f"({fmt(self.measurement_delta_pct)}, "
            f"threshold {self.threshold_pct:+.1f}%)",
            f"  wall clock:   {float(self.baseline.get('wall_s', 0) or 0):.3f}s"
            f" -> {float(self.run.get('wall_s', 0) or 0):.3f}s "
            f"({fmt(self.wall_delta_pct)}, "
            + (
                "advisory)"
                if self.wall_threshold_pct is None
                else f"threshold {self.wall_threshold_pct:+.1f}%)"
            ),
        ]

        def cpu(record: Dict[str, object]) -> str:
            value = record.get("cpu_s")
            return f"{float(value):.3f}s" if isinstance(value, (int, float)) else "n/a"

        lines.append(
            f"  cpu time:     {cpu(self.baseline)} -> {cpu(self.run)} "
            f"({fmt(self.cpu_delta_pct)}, "
            + (
                "advisory)"
                if self.cpu_threshold_pct is None
                else f"threshold {self.cpu_threshold_pct:+.1f}%)"
            )
        )
        worst = self.per_test_regressions()
        if worst:
            lines.append("  costlier tests:")
            for row in worst:
                lines.append(
                    f"    - {row['test']:<28} {row['baseline']:>6} -> "
                    f"{row['run']:>6} (+{row['delta']})"
                )
        if self.regressed:
            measurement_hit = (
                self.measurement_delta_pct is not None
                and self.measurement_delta_pct > self.threshold_pct
            )
            if measurement_hit:
                verdict = "MEASUREMENT COST REGRESSION"
            elif self.wall_regressed:
                verdict = "WALL CLOCK REGRESSION"
            else:
                verdict = "CPU TIME REGRESSION"
        else:
            verdict = "ok"
        lines.append("  verdict: " + verdict)
        return "\n".join(lines)


def compare_runs(
    history: RunHistory,
    baseline_name: str,
    run_name: Optional[str] = None,
    threshold_pct: float = 5.0,
    wall_threshold_pct: Optional[float] = None,
    cpu_threshold_pct: Optional[float] = None,
) -> RunComparison:
    """Compare ``run_name`` (default: the latest run) to the baseline.

    Raises
    ------
    KeyError
        When either run is not found in the history.
    """
    baseline = history.find(baseline_name)
    if baseline is None:
        raise KeyError(f"baseline run {baseline_name!r} not in {history.path}")
    run = history.find(run_name) if run_name else history.latest()
    if run is None:
        wanted = run_name if run_name else "<latest>"
        raise KeyError(f"run {wanted!r} not in {history.path}")
    return RunComparison(
        baseline=baseline,
        run=run,
        threshold_pct=threshold_pct,
        wall_threshold_pct=wall_threshold_pct,
        cpu_threshold_pct=cpu_threshold_pct,
    )
