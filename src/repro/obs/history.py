"""Run-history store and cost-regression comparison.

Sommeregger & Pilz (arXiv:2501.07115) motivate watching characterization
cost drift *across* runs, not just within one.  This module gives each
campaign a ``runs.jsonl``: one JSON line per run, recording the
measurement cost (the paper's fig. 3 / eqs. 2-4 economics), wall clock
and per-test breakdown, plus a comparison that flags regressions against
a named baseline run — ``repro obs compare`` exits non-zero when the
total measurement cost regresses beyond the threshold.

The loader is deliberately tolerant: lines from unknown schema versions
(or other writers) are counted and kept best-effort rather than
rejected, so old baselines stay loadable as the format evolves.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs.metrics import MetricsRegistry

RUN_SCHEMA = 1
RUN_KIND = "repro.obs.run"


def build_run_record(
    name: str,
    registry: MetricsRegistry,
    campaign: str = "",
    command: str = "",
    wall_s: float = 0.0,
    workers: Optional[int] = None,
    seed: Optional[int] = None,
) -> Dict[str, object]:
    """One run's cost record, built from the live metrics registry."""
    measurements = registry.counters.get("ate.measurements")
    units = registry.counters.get("farm.units")
    retries = registry.counters.get("farm.unit_retries")
    dropped = registry.counters.get("farm.checkpoint.dropped_lines")
    return {
        "schema": RUN_SCHEMA,
        "kind": RUN_KIND,
        "run": name,
        "campaign": campaign,
        "command": command,
        "ts": time.time(),
        "wall_s": round(float(wall_s), 6),
        "workers": workers,
        "seed": seed,
        "measurements": measurements.value if measurements else 0,
        "per_test": dict(measurements.by_label) if measurements else {},
        "farm_units": units.value if units else 0,
        "farm_retries": retries.value if retries else 0,
        "checkpoint_dropped_lines": dropped.value if dropped else 0,
    }


@dataclass
class HistoryLoad:
    """Result of a tolerant history load."""

    records: List[Dict[str, object]] = field(default_factory=list)
    dropped_lines: int = 0
    unknown_schema: int = 0


class RunHistory:
    """Append-only ``runs.jsonl`` store of run records."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def append(self, record: Dict[str, object]) -> None:
        """Append one record, flushed immediately."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()

    def next_default_name(self) -> str:
        """``run-<n>`` with ``n`` = number of records already stored."""
        return f"run-{len(self.load().records)}"

    def load(self) -> HistoryLoad:
        """Every run record on disk, in append order — tolerantly.

        Unparseable lines are dropped (and counted); parseable records
        with an unrecognized ``schema`` are *kept* (and counted) so a
        newer writer's baselines remain usable as far as their fields
        overlap with ours.
        """
        loaded = HistoryLoad()
        if not self.path.exists():
            return loaded
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                loaded.dropped_lines += 1
                continue
            if not isinstance(record, dict) or record.get("kind") != RUN_KIND:
                loaded.dropped_lines += 1
                continue
            if record.get("schema") != RUN_SCHEMA:
                loaded.unknown_schema += 1
            loaded.records.append(record)
        return loaded

    def find(self, name: str) -> Optional[Dict[str, object]]:
        """The most recent record named ``name`` (``None`` if absent)."""
        found = None
        for record in self.load().records:
            if record.get("run") == name:
                found = record
        return found

    def latest(self) -> Optional[Dict[str, object]]:
        """The most recently appended record."""
        records = self.load().records
        return records[-1] if records else None


def _delta_pct(baseline: float, current: float) -> Optional[float]:
    if not baseline:
        return None
    return (current - baseline) / baseline * 100.0


@dataclass
class RunComparison:
    """A run measured against a baseline run."""

    baseline: Dict[str, object]
    run: Dict[str, object]
    threshold_pct: float = 5.0

    @property
    def measurement_delta_pct(self) -> Optional[float]:
        return _delta_pct(
            float(self.baseline.get("measurements", 0) or 0),
            float(self.run.get("measurements", 0) or 0),
        )

    @property
    def wall_delta_pct(self) -> Optional[float]:
        return _delta_pct(
            float(self.baseline.get("wall_s", 0.0) or 0.0),
            float(self.run.get("wall_s", 0.0) or 0.0),
        )

    @property
    def regressed(self) -> bool:
        """True when measurement cost regressed beyond the threshold.

        Measurement count is the deterministic cost axis (the paper's
        argument); wall clock is reported but advisory — it varies with
        host load and worker count.
        """
        delta = self.measurement_delta_pct
        return delta is not None and delta > self.threshold_pct

    def per_test_regressions(self, count: int = 10) -> List[Dict[str, object]]:
        """The largest per-test measurement increases, descending."""
        base: Dict[str, int] = dict(self.baseline.get("per_test") or {})
        cur: Dict[str, int] = dict(self.run.get("per_test") or {})
        rows = []
        for name in sorted(set(base) | set(cur)):
            before, after = int(base.get(name, 0)), int(cur.get(name, 0))
            if after > before:
                rows.append(
                    {"test": name, "baseline": before, "run": after,
                     "delta": after - before}
                )
        rows.sort(key=lambda r: (-r["delta"], r["test"]))
        return rows[:count]

    def render(self) -> str:
        """Human-readable comparison report."""

        def fmt(delta: Optional[float]) -> str:
            return "n/a" if delta is None else f"{delta:+.2f}%"

        lines = [
            f"== run comparison: {self.run.get('run')} vs baseline "
            f"{self.baseline.get('run')} ==",
            f"  measurements: {self.baseline.get('measurements', 0)} -> "
            f"{self.run.get('measurements', 0)} "
            f"({fmt(self.measurement_delta_pct)}, "
            f"threshold {self.threshold_pct:+.1f}%)",
            f"  wall clock:   {float(self.baseline.get('wall_s', 0) or 0):.3f}s"
            f" -> {float(self.run.get('wall_s', 0) or 0):.3f}s "
            f"({fmt(self.wall_delta_pct)}, advisory)",
        ]
        worst = self.per_test_regressions()
        if worst:
            lines.append("  costlier tests:")
            for row in worst:
                lines.append(
                    f"    - {row['test']:<28} {row['baseline']:>6} -> "
                    f"{row['run']:>6} (+{row['delta']})"
                )
        lines.append(
            "  verdict: "
            + ("MEASUREMENT COST REGRESSION" if self.regressed else "ok")
        )
        return "\n".join(lines)


def compare_runs(
    history: RunHistory,
    baseline_name: str,
    run_name: Optional[str] = None,
    threshold_pct: float = 5.0,
) -> RunComparison:
    """Compare ``run_name`` (default: the latest run) to the baseline.

    Raises
    ------
    KeyError
        When either run is not found in the history.
    """
    baseline = history.find(baseline_name)
    if baseline is None:
        raise KeyError(f"baseline run {baseline_name!r} not in {history.path}")
    run = history.find(run_name) if run_name else history.latest()
    if run is None:
        wanted = run_name if run_name else "<latest>"
        raise KeyError(f"run {wanted!r} not in {history.path}")
    return RunComparison(baseline=baseline, run=run, threshold_pct=threshold_pct)
