"""Render telemetry into human-readable cost summaries.

Two views of one campaign:

* :func:`render_metrics_summary` — the registry as an aligned text table:
  every counter (with its top label breakdown — e.g. measurements per
  test), every gauge, every histogram with count/p50/p95/max.  This is what
  the CLI's ``--metrics`` flag prints at exit.
* :func:`render_trace_cost_profile` — the fig. 3 per-test measurement-cost
  profile rebuilt from a live JSONL trace: consecutive
  ``measurement`` events are grouped per test and drawn as a bar per test,
  reproducing the "number of search steps" axis of the paper's figure from
  observed data instead of a bespoke benchmark.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.obs.metrics import MetricsRegistry


def read_trace(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Load a :class:`~repro.obs.events.TraceWriter` JSONL file.

    Raises
    ------
    ValueError
        On a line that is not a JSON object with a ``type`` field
        (line-numbered, so a truncated trace is easy to diagnose).
    """
    records: List[Dict[str, object]] = []
    text = Path(path).read_text()
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"trace line {line_number}: {exc}") from exc
        if not isinstance(record, dict) or "type" not in record:
            raise ValueError(
                f"trace line {line_number}: not an event object"
            )
        records.append(record)
    return records


def render_metrics_summary(
    registry: MetricsRegistry,
    title: str = "telemetry summary",
    max_labels: int = 15,
) -> str:
    """The whole registry as one aligned text block."""
    lines = [f"== {title} =="]
    if registry.counters:
        lines.append("counters:")
        for name in sorted(registry.counters):
            counter = registry.counters[name]
            lines.append(f"  {name:<40} {counter.value:>10}")
            shown = counter.top_labels(max_labels)
            for label, value in shown:
                lines.append(f"    - {label:<36} {value:>10}")
            hidden = len(counter.by_label) - len(shown)
            if hidden > 0:
                lines.append(f"    - ... {hidden} more label(s)")
    if registry.gauges:
        lines.append("gauges:")
        for name in sorted(registry.gauges):
            gauge = registry.gauges[name]
            value = "n/a" if gauge.value is None else f"{gauge.value:.4f}"
            lines.append(f"  {name:<40} {value:>10}")
    if registry.histograms:
        lines.append(
            f"histograms:{'':<31}{'count':>8}{'p50':>10}"
            f"{'p95':>10}{'max':>10}"
        )
        for name in sorted(registry.histograms):
            hist = registry.histograms[name]
            if hist.count == 0:
                lines.append(f"  {name:<40}{0:>8}")
                continue
            lines.append(
                f"  {name:<40}{hist.count:>8}{hist.p50:>10.3f}"
                f"{hist.p95:>10.3f}{hist.max:>10.3f}"
            )
    if len(lines) == 1:
        lines.append("(no telemetry recorded)")
    return "\n".join(lines)


def per_test_measurement_counts(
    records: Iterable[Dict[str, object]],
) -> List[Tuple[str, int]]:
    """Measurement cost per test from a trace, in campaign order.

    Consecutive ``measurement`` events with the same test name form one
    per-test group (the same test re-measured later — e.g. the Table-1
    final re-measurement — starts a new group, as on the real tester).
    """
    groups: List[Tuple[str, int]] = []
    for record in records:
        if record.get("type") != "measurement":
            continue
        name = str(record.get("test_name", "unnamed"))
        if groups and groups[-1][0] == name:
            groups[-1] = (name, groups[-1][1] + 1)
        else:
            groups.append((name, 1))
    return groups


def render_trace_cost_profile(
    records: Iterable[Dict[str, object]],
    max_tests: Optional[int] = 60,
    bar_width: int = 40,
) -> str:
    """Fig. 3-style per-test measurement-cost bars from a trace."""
    groups = per_test_measurement_counts(records)
    if not groups:
        return "(no measurement events in trace)"
    lines = ["per-test measurement cost (from trace):"]
    shown = groups if max_tests is None else groups[:max_tests]
    peak = max(count for _, count in groups)
    scale = max(1, -(-peak // bar_width))  # ceil division
    for index, (name, count) in enumerate(shown):
        bar = "#" * max(1, count // scale)
        lines.append(f"  {index:>4} {name[:28]:<28} {bar} {count}")
    if len(shown) < len(groups):
        rest = groups[len(shown):]
        total = sum(count for _, count in rest)
        lines.append(
            f"  ... {len(rest)} more test(s), {total} measurement(s)"
        )
    lines.append(
        f"total: {sum(c for _, c in groups)} measurements over "
        f"{len(groups)} test group(s)"
    )
    return "\n".join(lines)
