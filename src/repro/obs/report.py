"""Render telemetry into human-readable cost summaries.

Two views of one campaign:

* :func:`render_metrics_summary` — the registry as an aligned text table:
  every counter (with its top label breakdown — e.g. measurements per
  test), every gauge, every histogram with count/p50/p95/max.  This is what
  the CLI's ``--metrics`` flag prints at exit.
* :func:`render_trace_cost_profile` — the fig. 3 per-test measurement-cost
  profile rebuilt from a live JSONL trace: consecutive
  ``measurement`` events are grouped per test and drawn as a bar per test,
  reproducing the "number of search steps" axis of the paper's figure from
  observed data instead of a bespoke benchmark.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.obs.events import known_event_types
from repro.obs.metrics import MetricsRegistry


def _iter_trace_lines(path: Union[str, Path]):
    """Stream ``(line_number, line)`` pairs without loading the file.

    Farm traces can reach multiple gigabytes; both loaders iterate the
    file handle directly so memory stays proportional to the kept
    records, never to the file size.
    """
    with open(Path(path), "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            yield line_number, line


def read_trace(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Load a :class:`~repro.obs.events.TraceWriter` JSONL file.

    Raises
    ------
    ValueError
        On a line that is not a JSON object with a ``type`` field
        (line-numbered, so a truncated trace is easy to diagnose).
    """
    records: List[Dict[str, object]] = []
    for line_number, line in _iter_trace_lines(path):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"trace line {line_number}: {exc}") from exc
        if not isinstance(record, dict) or "type" not in record:
            raise ValueError(
                f"trace line {line_number}: not an event object"
            )
        records.append(record)
    return records


@dataclass
class TraceLoadResult:
    """A tolerantly-loaded trace plus what had to be forgiven."""

    records: List[Dict[str, object]] = field(default_factory=list)
    dropped_lines: int = 0
    unknown_types: Dict[str, int] = field(default_factory=dict)


def load_trace(path: Union[str, Path]) -> TraceLoadResult:
    """Load a trace *tolerantly* (the ``repro obs`` commands use this).

    Unlike :func:`read_trace`, a malformed line is counted and skipped
    rather than fatal, and records whose ``type`` is not one of this
    build's event classes are *kept* (and tallied in
    :attr:`TraceLoadResult.unknown_types`) — so traces and ``runs.jsonl``
    baselines written by older or newer schema versions stay loadable.
    """
    known = known_event_types()
    loaded = TraceLoadResult()
    for _, line in _iter_trace_lines(path):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            loaded.dropped_lines += 1
            continue
        if not isinstance(record, dict) or "type" not in record:
            loaded.dropped_lines += 1
            continue
        kind = str(record["type"])
        if kind not in known:
            loaded.unknown_types[kind] = loaded.unknown_types.get(kind, 0) + 1
        loaded.records.append(record)
    return loaded


def render_metrics_summary(
    registry: MetricsRegistry,
    title: str = "telemetry summary",
    max_labels: int = 15,
) -> str:
    """The whole registry as one aligned text block."""
    lines = [f"== {title} =="]
    if registry.counters:
        lines.append("counters:")
        for name in sorted(registry.counters):
            counter = registry.counters[name]
            lines.append(f"  {name:<40} {counter.value:>10}")
            shown = counter.top_labels(max_labels)
            for label, value in shown:
                lines.append(f"    - {label:<36} {value:>10}")
            hidden = len(counter.by_label) - len(shown)
            if hidden > 0:
                lines.append(f"    - ... {hidden} more label(s)")
    if registry.gauges:
        lines.append("gauges:")
        for name in sorted(registry.gauges):
            gauge = registry.gauges[name]
            value = "n/a" if gauge.value is None else f"{gauge.value:.4f}"
            lines.append(f"  {name:<40} {value:>10}")
    if registry.histograms:
        lines.append(
            f"histograms:{'':<31}{'count':>8}{'p50':>10}"
            f"{'p95':>10}{'max':>10}"
        )
        for name in sorted(registry.histograms):
            hist = registry.histograms[name]
            if hist.count == 0:
                lines.append(f"  {name:<40}{0:>8}")
                continue
            lines.append(
                f"  {name:<40}{hist.count:>8}{hist.p50:>10.3f}"
                f"{hist.p95:>10.3f}{hist.max:>10.3f}"
            )
    if len(lines) == 1:
        lines.append("(no telemetry recorded)")
    return "\n".join(lines)


def per_test_measurement_counts(
    records: Iterable[Dict[str, object]],
) -> List[Tuple[str, int]]:
    """Measurement cost per test from a trace, in campaign order.

    Consecutive ``measurement`` events with the same test name form one
    per-test group (the same test re-measured later — e.g. the Table-1
    final re-measurement — starts a new group, as on the real tester).
    """
    groups: List[Tuple[str, int]] = []
    for record in records:
        if record.get("type") != "measurement":
            continue
        name = str(record.get("test_name", "unnamed"))
        if groups and groups[-1][0] == name:
            groups[-1] = (name, groups[-1][1] + 1)
        else:
            groups.append((name, 1))
    return groups


def render_trace_cost_profile(
    records: Iterable[Dict[str, object]],
    max_tests: Optional[int] = 60,
    bar_width: int = 40,
) -> str:
    """Fig. 3-style per-test measurement-cost bars from a trace."""
    groups = per_test_measurement_counts(records)
    if not groups:
        return "(no measurement events in trace)"
    lines = ["per-test measurement cost (from trace):"]
    shown = groups if max_tests is None else groups[:max_tests]
    peak = max(count for _, count in groups)
    scale = max(1, -(-peak // bar_width))  # ceil division
    for index, (name, count) in enumerate(shown):
        bar = "#" * max(1, count // scale)
        lines.append(f"  {index:>4} {name[:28]:<28} {bar} {count}")
    if len(shown) < len(groups):
        rest = groups[len(shown):]
        total = sum(count for _, count in rest)
        lines.append(
            f"  ... {len(rest)} more test(s), {total} measurement(s)"
        )
    lines.append(
        f"total: {sum(c for _, c in groups)} measurements over "
        f"{len(groups)} test group(s)"
    )
    return "\n".join(lines)


def _farm_unit_rows(
    records: Iterable[Dict[str, object]],
) -> List[Dict[str, object]]:
    """One row per completed unit (last completion wins on retry)."""
    rows: Dict[str, Dict[str, object]] = {}
    for record in records:
        if record.get("type") != "farm_unit_completed":
            continue
        rows[str(record.get("key"))] = {
            "key": str(record.get("key")),
            "kind": record.get("kind", ""),
            "attempt": int(record.get("attempt", 1) or 1),
            "elapsed_s": float(record.get("elapsed_s", 0.0) or 0.0),
            "measurements": int(record.get("measurements", 0) or 0),
            "worker": str(record.get("worker", "") or "serial"),
        }
    return list(rows.values())


def _resource_rollup(
    records: Iterable[Dict[str, object]],
) -> Optional[Dict[str, object]]:
    """Totals over the trace's ``resource_sample`` events (None if none).

    CPU seconds are summed per process (the samples carry *cumulative*
    ``getrusage`` values, so each process contributes max - min); peak
    RSS is the maximum across processes.
    """
    bounds: Dict[str, Tuple[float, float]] = {}
    peak_rss = 0
    samples = 0
    for record in records:
        if record.get("type") != "resource_sample":
            continue
        samples += 1
        worker = str(record.get("worker", "") or "serial")
        cpu = float(record.get("cpu_user_s", 0.0) or 0.0) + float(
            record.get("cpu_system_s", 0.0) or 0.0
        )
        low, high = bounds.get(worker, (cpu, cpu))
        bounds[worker] = (min(low, cpu), max(high, cpu))
        peak_rss = max(peak_rss, int(record.get("max_rss_kb", 0) or 0))
    if not samples:
        return None
    return {
        "samples": samples,
        "workers": len(bounds),
        "cpu_s": round(sum(high - low for low, high in bounds.values()), 6),
        "peak_rss_kb": peak_rss,
    }


def trace_summary_data(loaded: TraceLoadResult) -> Dict[str, object]:
    """``repro obs summary --json``: the summary as plain data.

    Mirrors :func:`render_trace_summary` section for section so CI can
    assert on fields instead of scraping the text table.
    """
    records = loaded.records
    counts: Dict[str, int] = {}
    for record in records:
        kind = str(record.get("type"))
        counts[kind] = counts.get(kind, 0) + 1
    units = _farm_unit_rows(records)
    by_worker: Dict[str, Dict[str, object]] = {}
    for row in units:
        worker = str(row["worker"])
        agg = by_worker.setdefault(
            worker, {"units": 0, "busy_s": 0.0, "measurements": 0}
        )
        agg["units"] = int(agg["units"]) + 1
        agg["busy_s"] = round(
            float(agg["busy_s"]) + float(row["elapsed_s"]), 6
        )
        agg["measurements"] = int(agg["measurements"]) + int(
            row["measurements"]
        )
    groups = per_test_measurement_counts(records)
    per_test: Dict[str, int] = {}
    for name, count in groups:
        per_test[name] = per_test.get(name, 0) + count
    return {
        "events": len(records),
        "events_by_type": counts,
        "farm": {
            "units": len(units),
            "workers": by_worker,
            "retries": counts.get("farm_unit_retried", 0),
            "skipped": counts.get("farm_unit_skipped", 0),
            "merged": counts.get("farm_unit_merged", 0),
        },
        "measurements": {
            "total": sum(per_test.values()),
            "groups": len(groups),
            "per_test": per_test,
        },
        "resources": _resource_rollup(records),
        "profile_sessions": counts.get("profile", 0),
        "dropped_lines": loaded.dropped_lines,
        "unknown_types": dict(loaded.unknown_types),
    }


def render_trace_summary(loaded: TraceLoadResult) -> str:
    """``repro obs summary``: one screen describing a merged trace.

    Event counts by type, the farm section (units, workers, retries,
    merge bookkeeping), measurement totals with the costliest tests, and
    an honesty footer for anything the tolerant loader had to forgive.
    """
    records = loaded.records
    lines = [f"== trace summary: {len(records)} event(s) =="]
    counts: Dict[str, int] = {}
    for record in records:
        kind = str(record.get("type"))
        counts[kind] = counts.get(kind, 0) + 1
    lines.append("events by type:")
    for kind in sorted(counts, key=lambda k: (-counts[k], k)):
        lines.append(f"  {kind:<30} {counts[kind]:>8}")

    units = _farm_unit_rows(records)
    if units:
        by_worker: Dict[str, List[Dict[str, object]]] = {}
        for row in units:
            by_worker.setdefault(str(row["worker"]), []).append(row)
        retries = counts.get("farm_unit_retried", 0)
        skipped = counts.get("farm_unit_skipped", 0)
        merged = counts.get("farm_unit_merged", 0)
        lines.append(
            f"farm: {len(units)} unit(s) completed on "
            f"{len(by_worker)} worker(s), {skipped} restored from "
            f"checkpoint, {retries} retry(ies), {merged} merged"
        )
        for worker in sorted(by_worker):
            rows = by_worker[worker]
            busy = sum(float(r["elapsed_s"]) for r in rows)
            meas = sum(int(r["measurements"]) for r in rows)
            lines.append(
                f"  {worker:<24} {len(rows):>4} unit(s)"
                f" {busy:>9.3f}s busy {meas:>9} meas"
            )
        dropped_events = sum(
            int(r.get("dropped_events", 0) or 0)
            for r in records
            if r.get("type") == "farm_unit_merged"
        )
        if dropped_events:
            lines.append(
                f"  warning: {dropped_events} worker event(s) dropped "
                f"(spool capacity)"
            )
    checkpoint_dropped = sum(
        int(r.get("lines", 0) or 0)
        for r in records
        if r.get("type") == "farm_checkpoint_dropped"
    )
    if checkpoint_dropped:
        lines.append(
            f"  warning: {checkpoint_dropped} corrupt checkpoint "
            f"line(s) dropped"
        )

    groups = per_test_measurement_counts(records)
    if groups:
        total = sum(count for _, count in groups)
        totals: Dict[str, int] = {}
        for name, count in groups:
            totals[name] = totals.get(name, 0) + count
        lines.append(
            f"measurements: {total} over {len(groups)} test group(s); "
            f"costliest:"
        )
        ranked = sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))[:10]
        for name, count in ranked:
            lines.append(f"  {name[:40]:<40} {count:>8}")

    resources = _resource_rollup(records)
    if resources is not None:
        lines.append(
            f"resources: {resources['samples']} sample(s), "
            f"cpu {resources['cpu_s']:.3f}s, "
            f"peak rss {resources['peak_rss_kb'] / 1024.0:.1f} MB "
            f"across {resources['workers']} process(es)"
        )
    profiles = [r for r in records if r.get("type") == "profile"]
    if profiles:
        weight = sum(
            sum(int(entry[2]) for entry in (p.get("folded") or ()))
            for p in profiles
        )
        unit = str(profiles[0].get("unit", "samples"))
        lines.append(
            f"profile: {len(profiles)} session(s), {weight} {unit} "
            f"recorded (see `repro obs profile`)"
        )

    if loaded.dropped_lines:
        lines.append(f"({loaded.dropped_lines} malformed line(s) skipped)")
    if loaded.unknown_types:
        # Name the drifted schemas, most frequent first, so "what wrote
        # this trace?" is answerable from the summary alone.
        ranked_unknown = sorted(
            loaded.unknown_types.items(), key=lambda kv: (-kv[1], kv[0])
        )
        shown_unknown = ranked_unknown[:5]
        detail = ", ".join(
            f"{kind} x{count}" for kind, count in shown_unknown
        )
        hidden = len(ranked_unknown) - len(shown_unknown)
        if hidden > 0:
            detail += f", ... {hidden} more type(s)"
        lines.append(f"({sum(loaded.unknown_types.values())} event(s) of "
                     f"unknown type kept: {detail})")
    return "\n".join(lines)


def render_slowest(loaded: TraceLoadResult, count: int = 10) -> str:
    """``repro obs slowest``: the wall-clock and cost hot spots."""
    records = loaded.records
    lines: List[str] = []
    units = sorted(
        _farm_unit_rows(records),
        key=lambda r: (-float(r["elapsed_s"]), str(r["key"])),
    )[:count]
    if units:
        lines.append(f"slowest {len(units)} unit(s):")
        for row in units:
            attempt = (
                f" (attempt {row['attempt']})" if int(row["attempt"]) > 1
                else ""
            )
            lines.append(
                f"  {str(row['key'])[:32]:<32} {float(row['elapsed_s']):>9.3f}s"
                f" {int(row['measurements']):>8} meas on {row['worker']}"
                f"{attempt}"
            )
    totals: Dict[str, int] = {}
    for name, meas in per_test_measurement_counts(records):
        totals[name] = totals.get(name, 0) + meas
    ranked = sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))[:count]
    if ranked:
        lines.append(f"costliest {len(ranked)} test(s):")
        for name, meas in ranked:
            lines.append(f"  {name[:40]:<40} {meas:>8} meas")
    if not lines:
        lines.append("(no farm units or measurements in trace)")
    return "\n".join(lines)
