"""Analysis helpers for farm control-plane telemetry.

The broker ships its buffered control-plane events and per-worker clock
offsets to the client inside the ``campaign_done`` frame; the client
replays them into its own trace (see
:meth:`repro.farm.remote.executor.RemoteExecutor`).  This module is the
read side: given a merged trace, find the ``broker_clock_sync`` record,
re-anchor every broker/worker timestamp onto the client's wall clock,
and render the live ``stats`` frame as the ``repro farm-top`` table.

Clock frames: the broker estimates ``offset(peer) = peer_wall −
broker_wall`` for every stamped peer (min-filter, see
:class:`repro.farm.remote.telemetry.ClockEstimator`).  The trace is
written on the *client's* clock, so alignment maps::

    broker event:  ts_client = ts_broker + offset(client)
    worker event:  ts_client = ts_worker − offset(worker) + offset(client)

Pure stdlib, no farm imports — usable on any trace file offline.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

#: Event types stamped with the broker's wall clock.
BROKER_EVENT_TYPES = frozenset(
    {
        "broker_campaign_started",
        "worker_joined",
        "worker_left",
        "lease_issued",
        "lease_heartbeat",
        "lease_expired",
        "lease_reissued",
        "lease_completed",
        "duplicate_suppressed",
        "spool_restored",
    }
)

#: Event types stamped with a *worker's* wall clock — the events a
#: worker captures into its telemetry spool while executing a unit.
#: (Client-side events like ``farm_unit_completed`` carry a ``worker``
#: field for attribution but are stamped by the client; they must not
#: be shifted.)
WORKER_CLOCKED_TYPES = frozenset(
    {
        "measurement",
        "resource_sample",
        "profile_recorded",
        "search_started",
        "search_converged",
        "sutp_walk_step",
        "sutp_fallback",
        "sutp_window_escalated",
        "sutp_test_measured",
        "ga_generation",
        "nn_epoch",
        "nn_vote",
        "nn_calibration",
        "wcr_classified",
    }
)


def extract_clock_sync(
    records: Iterable[Dict[str, object]],
) -> Tuple[Dict[str, float], float]:
    """The last ``broker_clock_sync`` record's offsets, or ``({}, 0.0)``.

    Returns ``(worker offsets, client offset)``, both in the broker's
    ``peer − broker`` convention.  The *last* sync wins: a multi-batch
    campaign (pilot + rest) syncs once per batch and later estimates
    have seen more samples.
    """
    offsets: Dict[str, float] = {}
    client_offset = 0.0
    for record in records:
        if record.get("type") != "broker_clock_sync":
            continue
        raw = record.get("offsets")
        if isinstance(raw, dict):
            offsets = {
                str(name): float(value) for name, value in raw.items()
            }
        try:
            client_offset = float(record.get("client_offset_s") or 0.0)
        except (TypeError, ValueError):
            client_offset = 0.0
    return offsets, client_offset


def align_records(
    records: List[Dict[str, object]],
) -> List[Dict[str, object]]:
    """Records with every timestamp re-anchored to the client clock.

    Without a ``broker_clock_sync`` record (serial runs, process-pool
    runs, pre-telemetry traces) this is the identity — records pass
    through unchanged, so single-host timelines are byte-stable.
    Shifted records are shallow copies; the input is never mutated.
    """
    offsets, client_offset = extract_clock_sync(records)
    if not offsets and client_offset == 0.0:
        return list(records)
    aligned: List[Dict[str, object]] = []
    for record in records:
        ts = record.get("ts")
        if not isinstance(ts, (int, float)):
            aligned.append(record)
            continue
        kind = record.get("type")
        shift: Optional[float] = None
        if kind in BROKER_EVENT_TYPES:
            shift = client_offset
        elif kind in WORKER_CLOCKED_TYPES:
            worker = str(record.get("worker") or "")
            if worker in offsets:
                shift = client_offset - offsets[worker]
        if shift:
            record = dict(record)
            record["ts"] = float(ts) + shift
        aligned.append(record)
    return aligned


def _fmt_age(seconds: float) -> str:
    seconds = max(0.0, float(seconds))
    if seconds < 60:
        return f"{seconds:.0f}s"
    if seconds < 3600:
        return f"{seconds / 60:.1f}m"
    return f"{seconds / 3600:.1f}h"


def render_farm_top(stats: Dict[str, object]) -> str:
    """The ``repro farm-top`` screen for one ``stats`` frame.

    Pure function of the payload — testable against a fake frame, and
    the CLI loop only adds the clear-screen escape and the refresh.
    """
    lines: List[str] = []
    totals = stats.get("totals") or {}
    lines.append(
        "farm broker up {up} · {workers} worker(s) · queue {queue} · "
        "{leases} lease(s) active".format(
            up=_fmt_age(float(stats.get("uptime_s") or 0.0)),
            workers=stats.get("workers_connected", 0),
            queue=stats.get("queue_depth", 0),
            leases=stats.get("leases_active", 0),
        )
    )
    campaign = stats.get("campaign")
    if isinstance(campaign, dict):
        lines.append(
            "campaign {id!r}: {completed}/{units} done, {pending} pending, "
            "{leased} leased, {failed} failed, {reissues} reissue(s), "
            "{dups} duplicate(s)".format(
                id=campaign.get("id"),
                completed=campaign.get("completed", 0),
                units=campaign.get("units", 0),
                pending=campaign.get("pending", 0),
                leased=campaign.get("leased", 0),
                failed=campaign.get("failed", 0),
                reissues=campaign.get("reissues", 0),
                dups=campaign.get("duplicates_dropped", 0),
            )
        )
    else:
        lines.append("no active campaign")
    lines.append(
        "lifetime: {campaigns} campaign(s), {done} completed, "
        "{failed} failed, {reissues} reissue(s), {dups} duplicate(s), "
        "{stale} stale heartbeat(s)".format(
            campaigns=totals.get("campaigns", 0),
            done=totals.get("units_completed", 0),
            failed=totals.get("units_failed", 0),
            reissues=totals.get("reissues", 0),
            dups=totals.get("duplicates_dropped", 0),
            stale=totals.get("stale_heartbeats", 0),
        )
    )
    lines.append("")
    header = (
        f"{'WORKER':<20} {'DONE':>5} {'FAIL':>5} {'U/MIN':>7} "
        f"{'UP':>6} {'IDLE':>6} {'SKEW':>9} {'LEASE':<24}"
    )
    lines.append(header)
    workers = stats.get("workers")
    if not isinstance(workers, list) or not workers:
        lines.append("  (no workers connected)")
        return "\n".join(lines) + "\n"
    for entry in workers:
        if not isinstance(entry, dict):
            continue
        lease = entry.get("lease")
        if isinstance(lease, dict):
            lease_cell = (
                f"{lease.get('key')} #{lease.get('attempt')} "
                f"({_fmt_age(float(lease.get('age_s') or 0.0))})"
            )
        else:
            lease_cell = "-"
        lines.append(
            f"{str(entry.get('name', '?')):<20} "
            f"{entry.get('completed', 0):>5} "
            f"{entry.get('failed', 0):>5} "
            f"{float(entry.get('units_per_minute') or 0.0):>7.1f} "
            f"{_fmt_age(float(entry.get('connected_s') or 0.0)):>6} "
            f"{_fmt_age(float(entry.get('idle_s') or 0.0)):>6} "
            f"{float(entry.get('clock_offset_s') or 0.0):>+8.3f}s "
            f"{lease_cell:<24}"
        )
    return "\n".join(lines) + "\n"
