"""Wall-clock spans feeding the metrics registry and the event bus.

``span(name)`` wraps any block in a timed campaign phase: a
:class:`~repro.obs.events.CampaignPhase` start/end event pair on the bus
plus a ``span.<name>.seconds`` histogram observation in the registry.
``@timed`` is the decorator form for whole functions.  Both are no-ops
(single attribute check, no timer read) while telemetry is disabled.

The module also keeps the *live phase stack*: while telemetry is on,
every active span pushes its name so :func:`current_phase` answers
"which campaign phase is the process in right now?" — the sampling
profiler (:mod:`repro.obs.profile`) reads it from its background thread
to attribute each stack sample to a phase.  Phase *listeners* are the
synchronous hook for the deterministic profiling mode: a listener's
``phase_started``/``phase_ended`` methods run inline at every span
boundary (only while any listener is registered, so the common case
stays a single truthiness check).
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from typing import Callable, Iterator, List, Optional, TypeVar

from repro.obs.events import CampaignPhase
from repro.obs.runtime import OBS

F = TypeVar("F", bound=Callable)

#: Names of the spans currently open, innermost last.  Appends/pops are
#: GIL-atomic, so a background sampler thread can read the top safely.
_PHASE_STACK: List[str] = []

#: Objects with ``phase_started(name)`` / ``phase_ended(name)`` methods,
#: called synchronously at span boundaries while registered.
_PHASE_LISTENERS: List[object] = []


def current_phase() -> str:
    """The innermost open span's name, or ``""`` outside any span."""
    try:
        return _PHASE_STACK[-1]
    except IndexError:
        return ""


def add_phase_listener(listener: object) -> None:
    """Register a span-boundary listener (deterministic profiler)."""
    _PHASE_LISTENERS.append(listener)


def remove_phase_listener(listener: object) -> None:
    """Detach a span-boundary listener (no error if absent)."""
    try:
        _PHASE_LISTENERS.remove(listener)
    except ValueError:
        pass


@contextmanager
def span(name: str) -> Iterator[None]:
    """Time the enclosed block as campaign phase ``name``."""
    if not OBS.enabled:
        yield
        return
    OBS.bus.emit(CampaignPhase(phase=name, status="start"))
    _PHASE_STACK.append(name)
    if _PHASE_LISTENERS:
        for listener in list(_PHASE_LISTENERS):
            listener.phase_started(name)
    start = time.perf_counter()
    try:
        yield
    finally:
        duration = time.perf_counter() - start
        if _PHASE_LISTENERS:
            for listener in list(_PHASE_LISTENERS):
                listener.phase_ended(name)
        if _PHASE_STACK and _PHASE_STACK[-1] == name:
            _PHASE_STACK.pop()
        OBS.metrics.histogram(f"span.{name}.seconds").observe(duration)
        OBS.bus.emit(
            CampaignPhase(phase=name, status="end", duration_s=duration)
        )


def timed(name: Optional[str] = None) -> Callable[[F], F]:
    """Decorator: run the function inside :func:`span`.

    ``name`` defaults to the function's qualified name::

        @timed("lot.die")
        def characterize_die(...): ...
    """

    def decorate(function: F) -> F:
        span_name = name if name is not None else function.__qualname__

        @functools.wraps(function)
        def wrapper(*args, **kwargs):
            if not OBS.enabled:
                return function(*args, **kwargs)
            with span(span_name):
                return function(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate
