"""Wall-clock spans feeding the metrics registry and the event bus.

``span(name)`` wraps any block in a timed campaign phase: a
:class:`~repro.obs.events.CampaignPhase` start/end event pair on the bus
plus a ``span.<name>.seconds`` histogram observation in the registry.
``@timed`` is the decorator form for whole functions.  Both are no-ops
(single attribute check, no timer read) while telemetry is disabled.
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from typing import Callable, Iterator, Optional, TypeVar

from repro.obs.events import CampaignPhase
from repro.obs.runtime import OBS

F = TypeVar("F", bound=Callable)


@contextmanager
def span(name: str) -> Iterator[None]:
    """Time the enclosed block as campaign phase ``name``."""
    if not OBS.enabled:
        yield
        return
    OBS.bus.emit(CampaignPhase(phase=name, status="start"))
    start = time.perf_counter()
    try:
        yield
    finally:
        duration = time.perf_counter() - start
        OBS.metrics.histogram(f"span.{name}.seconds").observe(duration)
        OBS.bus.emit(
            CampaignPhase(phase=name, status="end", duration_s=duration)
        )


def timed(name: Optional[str] = None) -> Callable[[F], F]:
    """Decorator: run the function inside :func:`span`.

    ``name`` defaults to the function's qualified name::

        @timed("lot.die")
        def characterize_die(...): ...
    """

    def decorate(function: F) -> F:
        span_name = name if name is not None else function.__qualname__

        @functools.wraps(function)
        def wrapper(*args, **kwargs):
            if not OBS.enabled:
                return function(*args, **kwargs)
            with span(span_name):
                return function(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate
