"""Minimal Mamdani fuzzy inference.

Supports the paper's motivating rule shape: "if A and B and C, then D is
quite close to the limit of the target device-spec".  Antecedents combine
with min (AND), rule activations clip the consequent sets, aggregation is
max, and defuzzification is the centroid of the aggregated set sampled over
the output universe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

import numpy as np

from repro.fuzzy.variables import LinguisticVariable


@dataclass(frozen=True)
class FuzzyRule:
    """IF (var1 is term1) AND ... THEN (out_var is out_term)."""

    antecedents: Tuple[Tuple[str, str], ...]
    consequent: Tuple[str, str]
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.antecedents:
            raise ValueError("a rule needs at least one antecedent")
        if not 0.0 < self.weight <= 1.0:
            raise ValueError("rule weight must be in (0, 1]")


class FuzzyInferenceSystem:
    """Mamdani engine over a set of linguistic variables.

    Parameters
    ----------
    inputs:
        Input variables by name.
    output:
        The single output variable.
    rules:
        Rule base; antecedent variable/term names must exist.
    samples:
        Output-universe sampling density for centroid defuzzification.
    """

    def __init__(
        self,
        inputs: Mapping[str, LinguisticVariable],
        output: LinguisticVariable,
        rules: Sequence[FuzzyRule],
        samples: int = 201,
    ) -> None:
        if not rules:
            raise ValueError("rule base is empty")
        if samples < 3:
            raise ValueError("need at least 3 defuzzification samples")
        self.inputs = dict(inputs)
        self.output = output
        self.rules = list(rules)
        self.samples = samples
        for rule in self.rules:
            for var_name, term in rule.antecedents:
                if var_name not in self.inputs:
                    raise ValueError(f"rule references unknown input {var_name!r}")
                self.inputs[var_name].term(term)  # raises KeyError if missing
            out_var, out_term = rule.consequent
            if out_var != output.name:
                raise ValueError(
                    f"rule consequent variable {out_var!r} != output "
                    f"{output.name!r}"
                )
            output.term(out_term)

    def rule_activation(
        self, rule: FuzzyRule, crisp_inputs: Mapping[str, float]
    ) -> float:
        """Min-AND activation of one rule for crisp inputs."""
        degrees = []
        for var_name, term in rule.antecedents:
            if var_name not in crisp_inputs:
                raise KeyError(f"missing crisp input {var_name!r}")
            variable = self.inputs[var_name]
            degrees.append(float(variable.term(term)(crisp_inputs[var_name])))
        return rule.weight * min(degrees)

    def aggregate(self, crisp_inputs: Mapping[str, float]) -> np.ndarray:
        """Max-aggregated clipped consequent over the output universe."""
        low, high = self.output.universe
        axis = np.linspace(low, high, self.samples)
        aggregated = np.zeros_like(axis)
        for rule in self.rules:
            activation = self.rule_activation(rule, crisp_inputs)
            if activation <= 0.0:
                continue
            _, out_term = rule.consequent
            clipped = np.minimum(self.output.term(out_term)(axis), activation)
            aggregated = np.maximum(aggregated, clipped)
        return aggregated

    def evaluate(self, crisp_inputs: Mapping[str, float]) -> float:
        """Centroid-defuzzified crisp output.

        When no rule fires, the center of the output universe is returned
        (the conventional neutral fallback).
        """
        low, high = self.output.universe
        axis = np.linspace(low, high, self.samples)
        aggregated = self.aggregate(crisp_inputs)
        mass = aggregated.sum()
        if mass <= 0.0:
            return 0.5 * (low + high)
        return float((axis * aggregated).sum() / mass)

    def activations(self, crisp_inputs: Mapping[str, float]) -> Dict[int, float]:
        """Per-rule activation levels (diagnostics)."""
        return {
            i: self.rule_activation(rule, crisp_inputs)
            for i, rule in enumerate(self.rules)
        }
