"""Linguistic variables.

A :class:`LinguisticVariable` names a crisp axis (a universe interval) and a
set of linguistic *terms*, each backed by a membership function.
Fuzzification of a crisp value yields the degree vector over the terms.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.fuzzy.membership import MembershipFunction, TriangularMF


class LinguisticVariable:
    """A named fuzzy axis with ordered terms.

    Parameters
    ----------
    name:
        Variable name (e.g. ``"wcr"``).
    universe:
        Closed ``(low, high)`` crisp range.
    terms:
        Ordered ``(label, membership_function)`` pairs.
    """

    def __init__(
        self,
        name: str,
        universe: Tuple[float, float],
        terms: Sequence[Tuple[str, MembershipFunction]],
    ) -> None:
        low, high = universe
        if low >= high:
            raise ValueError("universe must satisfy low < high")
        if not terms:
            raise ValueError("a linguistic variable needs at least one term")
        labels = [label for label, _ in terms]
        if len(set(labels)) != len(labels):
            raise ValueError("term labels must be unique")
        self.name = name
        self.universe = (float(low), float(high))
        self._terms: List[Tuple[str, MembershipFunction]] = list(terms)

    @property
    def labels(self) -> List[str]:
        """Ordered term labels."""
        return [label for label, _ in self._terms]

    def term(self, label: str) -> MembershipFunction:
        """Membership function of one term."""
        for name, mf in self._terms:
            if name == label:
                return mf
        raise KeyError(f"variable {self.name!r} has no term {label!r}")

    def fuzzify(self, value: float) -> Dict[str, float]:
        """Degrees of all terms for a crisp value."""
        return {label: float(mf(value)) for label, mf in self._terms}

    def membership_vector(self, value: float) -> np.ndarray:
        """Degrees in term order as an array."""
        return np.array([float(mf(value)) for _, mf in self._terms])

    def best_term(self, value: float) -> str:
        """Label of the maximally activated term."""
        vector = self.membership_vector(value)
        return self.labels[int(np.argmax(vector))]

    @classmethod
    def uniform_partition(
        cls,
        name: str,
        universe: Tuple[float, float],
        labels: Sequence[str],
    ) -> "LinguisticVariable":
        """Standard triangular Ruspini partition over the universe.

        Neighbouring triangles cross at degree 0.5 and the degrees sum to 1
        everywhere inside the universe; the first and last term shoulder
        out to the universe edges.
        """
        return cls.partition_at(name, universe, labels, centers=None)

    @classmethod
    def partition_at(
        cls,
        name: str,
        universe: Tuple[float, float],
        labels: Sequence[str],
        centers: Sequence[float] = None,
    ) -> "LinguisticVariable":
        """Triangular partition with explicit (or uniform) term centers."""
        if len(labels) < 2:
            raise ValueError("a partition needs at least two terms")
        low, high = universe
        if centers is None:
            centers = list(np.linspace(low, high, len(labels)))
        centers = [float(c) for c in centers]
        if len(centers) != len(labels):
            raise ValueError("need one center per label")
        if sorted(centers) != centers:
            raise ValueError("centers must be non-decreasing")
        terms: List[Tuple[str, MembershipFunction]] = []
        for i, label in enumerate(labels):
            left = centers[i - 1] if i > 0 else low - (centers[1] - centers[0])
            right = (
                centers[i + 1]
                if i < len(labels) - 1
                else high + (centers[-1] - centers[-2])
            )
            terms.append((label, TriangularMF(left, centers[i], right)))
        return cls(name, universe, terms)
