"""Trip-point value coding for NN supervision.

Fig. 4, step 3: "Trip point value coding using either fuzzy set data [8] or
simple numerical coding; then NN starts to learn from input random tests and
supervised by ATE detects TPV value."

Both coders translate a measured trip-point value into an NN training target
over ordered *severity classes* (from "far from the spec limit" to "at or
beyond the limit").  They are calibrated from a sample of measured values so
the classes discriminate within the actually observed range:

* :class:`TripPointFuzzyCoder` — the paper's recommendation: a triangular
  fuzzy partition on the WCR axis; targets are soft membership vectors, so
  a value near a class boundary supervises both neighbouring classes.
* :class:`NumericTripPointCoder` — the plain alternative: equal-width bins
  and hard one-hot targets.

The A1 ablation bench compares the two.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.wcr import worst_case_ratio
from repro.device.parameters import DeviceParameter
from repro.fuzzy.variables import LinguisticVariable

#: Default severity labels, least to most severe.
DEFAULT_LABELS = (
    "far_from_limit",
    "approaching_limit",
    "close_to_limit",
    "at_limit",
)


class TripPointFuzzyCoder:
    """Fuzzy severity coding of trip-point values.

    The crisp axis is the worst-case ratio of the value against the
    parameter's spec limit (eqs. 5/6), so the coding is parameter-direction
    agnostic: higher WCR is always more severe.

    Parameters
    ----------
    parameter:
        The characterized device parameter (provides spec limit/direction).
    labels:
        Ordered severity labels (low to high WCR).
    wcr_range:
        Crisp universe; defaults derived from calibration samples via
        :meth:`from_samples`, or ``(0.5, 1.05)`` raw.
    centers:
        Optional explicit term centers on the WCR axis.
    """

    def __init__(
        self,
        parameter: DeviceParameter,
        labels: Sequence[str] = DEFAULT_LABELS,
        wcr_range: tuple = (0.5, 1.05),
        centers: Optional[Sequence[float]] = None,
    ) -> None:
        if len(labels) < 2:
            raise ValueError("need at least two severity classes")
        self.parameter = parameter
        self.variable = LinguisticVariable.partition_at(
            "wcr", wcr_range, list(labels), centers=centers
        )

    @classmethod
    def from_samples(
        cls,
        parameter: DeviceParameter,
        values: Sequence[float],
        labels: Sequence[str] = DEFAULT_LABELS,
    ) -> "TripPointFuzzyCoder":
        """Calibrate term centers from measured trip-point values.

        Centers sit at spread quantiles of the observed WCR distribution,
        with the top class pulled toward the worst observed tail so the
        severe end stays discriminative (the whole point of the coding is
        ranking candidates near the limit).
        """
        wcrs = np.array([worst_case_ratio(v, parameter) for v in values])
        if len(wcrs) < 8:
            raise ValueError("need at least 8 calibration samples")
        lo = float(np.min(wcrs))
        hi = float(np.max(wcrs))
        span = max(hi - lo, 1e-3)
        universe = (lo - 0.05 * span, hi + 0.25 * span)
        quantiles = np.linspace(0.05, 1.0, len(labels))
        centers = [float(np.quantile(wcrs, q)) for q in quantiles[:-1]]
        centers.append(hi + 0.10 * span)
        centers = sorted(set(centers))
        while len(centers) < len(labels):  # degenerate distributions
            centers.append(centers[-1] + 0.05 * span)
        return cls(parameter, labels, wcr_range=universe, centers=centers)

    @property
    def labels(self) -> List[str]:
        """Ordered severity labels."""
        return self.variable.labels

    @property
    def n_classes(self) -> int:
        """Number of severity classes."""
        return len(self.variable.labels)

    def wcr_of(self, value: float) -> float:
        """The crisp WCR of a measured value."""
        return worst_case_ratio(value, self.parameter)

    def encode(self, value: float) -> np.ndarray:
        """Soft target: normalized membership vector of the value's WCR."""
        vector = self.variable.membership_vector(self.wcr_of(value))
        total = vector.sum()
        if total <= 0.0:
            # Outside every support: attribute fully to the nearest edge class.
            index = 0 if self.wcr_of(value) < self.variable.universe[0] else -1
            vector = np.zeros(self.n_classes)
            vector[index] = 1.0
            return vector
        return vector / total

    def encode_batch(self, values: Sequence[float]) -> np.ndarray:
        """Soft targets for a batch of measured values."""
        return np.stack([self.encode(v) for v in values])

    def class_index(self, value: float) -> int:
        """Hard severity class of a value (argmax membership)."""
        return int(np.argmax(self.encode(value)))

    def severity_score(self, class_probabilities: np.ndarray) -> np.ndarray:
        """Scalar severity from NN class probabilities.

        The expected class index normalized to ``[0, 1]`` — used to rank
        candidate tests when pre-selecting GA seeds.
        """
        probs = np.atleast_2d(class_probabilities)
        indices = np.arange(self.n_classes)
        return (probs * indices).sum(axis=-1) / (self.n_classes - 1)

    def to_dict(self) -> dict:
        """JSON-friendly calibration state (stored in NN weight files)."""
        return {
            "kind": "fuzzy",
            "parameter": self.parameter.to_dict(),
            "labels": list(self.labels),
            "universe": list(self.variable.universe),
            "centers": [
                self.variable.term(label).center for label in self.labels
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TripPointFuzzyCoder":
        """Inverse of :meth:`to_dict`."""
        from repro.device.parameters import DeviceParameter

        return cls(
            DeviceParameter.from_dict(payload["parameter"]),
            labels=payload["labels"],
            wcr_range=tuple(payload["universe"]),
            centers=payload["centers"],
        )


class NumericTripPointCoder:
    """Plain equal-width bin coding (the paper's "simple numerical coding").

    Shares the WCR axis and the interface of :class:`TripPointFuzzyCoder`
    so the two are drop-in interchangeable in the learning scheme.
    """

    def __init__(
        self,
        parameter: DeviceParameter,
        n_classes: int = len(DEFAULT_LABELS),
        wcr_range: tuple = (0.5, 1.05),
    ) -> None:
        if n_classes < 2:
            raise ValueError("need at least two classes")
        lo, hi = wcr_range
        if lo >= hi:
            raise ValueError("wcr_range must satisfy low < high")
        self.parameter = parameter
        self._n_classes = n_classes
        self.wcr_range = (float(lo), float(hi))

    @classmethod
    def from_samples(
        cls,
        parameter: DeviceParameter,
        values: Sequence[float],
        n_classes: int = len(DEFAULT_LABELS),
    ) -> "NumericTripPointCoder":
        """Calibrate the bin range from measured values."""
        wcrs = np.array([worst_case_ratio(v, parameter) for v in values])
        if len(wcrs) < 8:
            raise ValueError("need at least 8 calibration samples")
        lo, hi = float(np.min(wcrs)), float(np.max(wcrs))
        span = max(hi - lo, 1e-3)
        return cls(parameter, n_classes, (lo - 0.05 * span, hi + 0.25 * span))

    @property
    def labels(self) -> List[str]:
        """Bin labels."""
        return [f"bin_{i}" for i in range(self._n_classes)]

    @property
    def n_classes(self) -> int:
        """Number of bins."""
        return self._n_classes

    def wcr_of(self, value: float) -> float:
        """The crisp WCR of a measured value."""
        return worst_case_ratio(value, self.parameter)

    def class_index(self, value: float) -> int:
        """Hard bin of a value."""
        lo, hi = self.wcr_range
        fraction = (self.wcr_of(value) - lo) / (hi - lo)
        return int(np.clip(int(fraction * self._n_classes), 0, self._n_classes - 1))

    def encode(self, value: float) -> np.ndarray:
        """One-hot target."""
        target = np.zeros(self._n_classes)
        target[self.class_index(value)] = 1.0
        return target

    def encode_batch(self, values: Sequence[float]) -> np.ndarray:
        """One-hot targets for a batch."""
        return np.stack([self.encode(v) for v in values])

    def severity_score(self, class_probabilities: np.ndarray) -> np.ndarray:
        """Expected bin index normalized to ``[0, 1]``."""
        probs = np.atleast_2d(class_probabilities)
        indices = np.arange(self._n_classes)
        return (probs * indices).sum(axis=-1) / (self._n_classes - 1)

    def to_dict(self) -> dict:
        """JSON-friendly calibration state (stored in NN weight files)."""
        return {
            "kind": "numeric",
            "parameter": self.parameter.to_dict(),
            "n_classes": self._n_classes,
            "wcr_range": list(self.wcr_range),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "NumericTripPointCoder":
        """Inverse of :meth:`to_dict`."""
        from repro.device.parameters import DeviceParameter

        return cls(
            DeviceParameter.from_dict(payload["parameter"]),
            n_classes=payload["n_classes"],
            wcr_range=tuple(payload["wcr_range"]),
        )


def coder_from_dict(payload: dict):
    """Rebuild either coder kind from its :meth:`to_dict` form."""
    kind = payload.get("kind")
    if kind == "fuzzy":
        return TripPointFuzzyCoder.from_dict(payload)
    if kind == "numeric":
        return NumericTripPointCoder.from_dict(payload)
    raise ValueError(f"unknown coder kind {kind!r}")
