"""Membership functions.

Each membership function maps a crisp value to a degree in ``[0, 1]``;
vectorized evaluation over numpy arrays is supported throughout.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np


class MembershipFunction(abc.ABC):
    """A fuzzy set over the real line."""

    @abc.abstractmethod
    def __call__(self, x):
        """Degree of membership of ``x`` (scalar or array), in ``[0, 1]``."""

    @property
    @abc.abstractmethod
    def center(self) -> float:
        """Representative (peak) location of the set."""

    def support_contains(self, x: float) -> bool:
        """True where the membership degree is strictly positive."""
        return bool(np.asarray(self(x)) > 0.0)


@dataclass(frozen=True)
class TriangularMF(MembershipFunction):
    """Triangle with feet at ``a`` and ``c`` and peak at ``b``.

    Degenerate shoulders (``a == b`` or ``b == c``) are allowed and yield
    half-open ramps, which is how partition edges are usually written.
    """

    a: float
    b: float
    c: float

    def __post_init__(self) -> None:
        if not self.a <= self.b <= self.c:
            raise ValueError("need a <= b <= c")
        if self.a == self.c:
            raise ValueError("triangle must have nonzero width")

    def __call__(self, x):
        x = np.asarray(x, dtype=float)
        left_width = self.b - self.a
        right_width = self.c - self.b
        rising = (
            (x - self.a) / left_width if left_width > 0 else (x >= self.b) * 1.0
        )
        falling = (
            (self.c - x) / right_width if right_width > 0 else (x <= self.b) * 1.0
        )
        return np.clip(np.minimum(rising, falling), 0.0, 1.0)

    @property
    def center(self) -> float:
        return self.b


@dataclass(frozen=True)
class TrapezoidalMF(MembershipFunction):
    """Trapezoid with feet ``a``/``d`` and plateau ``[b, c]``."""

    a: float
    b: float
    c: float
    d: float

    def __post_init__(self) -> None:
        if not self.a <= self.b <= self.c <= self.d:
            raise ValueError("need a <= b <= c <= d")
        if self.a == self.d:
            raise ValueError("trapezoid must have nonzero width")

    def __call__(self, x):
        x = np.asarray(x, dtype=float)
        left_width = self.b - self.a
        right_width = self.d - self.c
        rising = (
            (x - self.a) / left_width if left_width > 0 else (x >= self.b) * 1.0
        )
        falling = (
            (self.d - x) / right_width if right_width > 0 else (x <= self.c) * 1.0
        )
        plateau = np.ones_like(x)
        return np.clip(np.minimum(np.minimum(rising, plateau), falling), 0.0, 1.0)

    @property
    def center(self) -> float:
        return 0.5 * (self.b + self.c)


@dataclass(frozen=True)
class GaussianMF(MembershipFunction):
    """Gaussian bell centered at ``mean`` with width ``sigma``."""

    mean: float
    sigma: float

    def __post_init__(self) -> None:
        if self.sigma <= 0:
            raise ValueError("sigma must be positive")

    def __call__(self, x):
        x = np.asarray(x, dtype=float)
        return np.exp(-0.5 * ((x - self.mean) / self.sigma) ** 2)

    @property
    def center(self) -> float:
        return self.mean
