"""Fuzzy set theory substrate (paper ref [8], Bezdek).

The paper "strongly recommend[s] to use fuzzy variables to encode
measurement values as fuzzy logic can describe more than one analysis
parameter; such as if A and B and C, then D is quite close to the limit of
the target device-spec" (section 5).

This package provides membership functions (:mod:`~repro.fuzzy.membership`),
linguistic variables (:mod:`~repro.fuzzy.variables`), a small Mamdani
inference engine (:mod:`~repro.fuzzy.inference`) and — the piece the fig. 4
learning scheme actually consumes — the trip-point coders
(:mod:`~repro.fuzzy.coding`): fuzzy and plain-numeric encodings of measured
trip-point values into NN training targets.
"""

from repro.fuzzy.coding import NumericTripPointCoder, TripPointFuzzyCoder
from repro.fuzzy.inference import FuzzyInferenceSystem, FuzzyRule
from repro.fuzzy.membership import (
    GaussianMF,
    MembershipFunction,
    TrapezoidalMF,
    TriangularMF,
)
from repro.fuzzy.variables import LinguisticVariable

__all__ = [
    "NumericTripPointCoder",
    "TripPointFuzzyCoder",
    "FuzzyInferenceSystem",
    "FuzzyRule",
    "GaussianMF",
    "MembershipFunction",
    "TrapezoidalMF",
    "TriangularMF",
    "LinguisticVariable",
]
