"""Computational intelligence characterization of semiconductor devices.

Reproduction of Liau & Schmitt-Landsiedel, *Computational Intelligence
Characterization Method of Semiconductor Device*, DATE 2005.

The package is layered bottom-up:

* :mod:`repro.patterns` — test stimuli (vector sequences, conditions, march
  and random generators, feature extraction, NN/GA codecs);
* :mod:`repro.device` — behavioural 140nm memory-test-chip substitute with
  process variation and a hidden worst-case weakness;
* :mod:`repro.ate` — industrial ATE simulator (strobe pass/fail, noise,
  shmoo, datalog, binning);
* :mod:`repro.search` — conventional trip-point searches (linear, binary,
  successive approximation);
* :mod:`repro.nn`, :mod:`repro.fuzzy`, :mod:`repro.ga` — from-scratch
  computational-intelligence substrates;
* :mod:`repro.core` — the paper's contribution: multiple trip points, the
  Search-Until-Trip-Point algorithm, WCR classification, and the fig. 4/5
  learning + optimization schemes;
* :mod:`repro.analysis` — statistics, drift analysis and report formatting;
* :mod:`repro.obs` — structured telemetry (typed events, metrics registry,
  phase timing, trace/summary reports), off by default.

Quickstart::

    from repro import DeviceCharacterizer
    characterizer = DeviceCharacterizer.with_default_setup(seed=1)
    report = characterizer.run_table1_comparison(random_tests=200)
    print(report.to_text())
"""

__version__ = "1.0.0"

__all__ = [
    "DeviceCharacterizer",
    "SearchUntilTripPoint",
    "WCRClass",
    "worst_case_ratio",
    "__version__",
]

_LAZY_EXPORTS = {
    "DeviceCharacterizer": ("repro.core.characterizer", "DeviceCharacterizer"),
    "SearchUntilTripPoint": ("repro.core.sutp", "SearchUntilTripPoint"),
    "WCRClass": ("repro.core.wcr", "WCRClass"),
    "worst_case_ratio": ("repro.core.wcr", "worst_case_ratio"),
}


def __getattr__(name: str):
    """Lazily resolve the top-level convenience exports (PEP 562)."""
    try:
        module_name, attr = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    return getattr(module, attr)
