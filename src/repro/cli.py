"""Command-line interface.

Exposes the characterization campaigns as subcommands::

    repro-characterize march   [--algorithm march_c-]
    repro-characterize random  [--tests 200]
    repro-characterize table1  [--random-tests 300] [--fast]
    repro-characterize hunt    [--weights out.json] [--database db.json]
    repro-characterize shmoo   [--tests 40]
    repro-characterize screen  [--tests 40] [--engine batched]
    repro-characterize sweep
    repro-characterize lot     [--dies 8] [--tests 10]

Every command accepts ``--seed`` and prints the same reports the library
APIs return; nothing here does work the public API cannot.

Global telemetry flags (before the subcommand):

* ``--trace FILE.jsonl`` — write every telemetry event as one JSON line
  (worker-side events included: farm runs spool and merge them);
* ``--metrics`` — print the metrics-registry summary at exit (per-test
  measurement counts, SUTP fallbacks, GA generations, phase timings);
* ``--progress`` — live per-unit progress lines on stderr during farm
  runs;
* ``--run-log FILE.jsonl`` / ``--run-name NAME`` — append this run's
  cost record (wall clock *and* CPU time) to a run-history file (see
  ``repro obs compare``);
* ``--profile`` — continuous profiling & resource telemetry: sampled
  hot-path stacks per campaign phase plus periodic CPU/RSS/GC resource
  samples, recorded into the trace (``--profile-mode cprofile`` for the
  deterministic per-phase profiler, ``--profile-interval`` to change
  the sampling cadence);
* ``-v`` / ``-vv`` — phase-level / per-event stdlib logging.

Global tester-farm flags (``lot``, ``wafer``, ``sweep``, ``campaign``):

* ``--workers N`` — shard the campaign over N worker processes
  (results are identical to a serial run for lot/wafer);
* ``--resume FILE`` — record finished work units to a JSONL checkpoint
  and skip them when the same command is re-run after an interruption;
* ``--backend serial|process|remote`` — pick the executor backend
  explicitly; ``remote`` sends units to a farm broker's socket workers
  and needs ``--broker HOST:PORT``.

The distributed farm itself (see docs/parallelism.md, "Remote farm")::

    repro-characterize farm-broker [--port 0] [--spool DIR]
                                   [--metrics-port 0] [--trace FILE]
    repro-characterize farm-worker --connect HOST:PORT [--name w1]
    repro-characterize farm-top    --broker HOST:PORT [--once]

The ``obs`` subcommand family inspects what the flags above record::

    repro-characterize obs summary  trace.jsonl [--json]
    repro-characterize obs slowest  trace.jsonl -n 10
    repro-characterize obs insight  trace.jsonl
    repro-characterize obs profile  trace.jsonl -n 15 [--phase P] [--json]
    repro-characterize obs flame    trace.jsonl out.folded
    repro-characterize obs report   trace.jsonl out.html --runs runs.jsonl
    repro-characterize obs timeline trace.jsonl -o timeline.json
    repro-characterize obs compare  runs.jsonl --baseline nightly
    repro-characterize obs bench-import runs.jsonl BENCH_*.json --suffix @ci
    repro-characterize obs alerts   --url http://127.0.0.1:8765

``obs compare``, ``obs bench-import`` and ``obs report`` also accept
``--db store.db`` in place of the JSONL history: the run records then
come from (or go to) a :mod:`repro.store` SQLite result store.

The service family turns campaigns into jobs (see ``docs/service.md``)::

    repro-characterize serve --port 8765 --data-dir svc --max-workers 2
    repro-characterize jobs submit --url URL lot -p dies=4 -p tests=3
    repro-characterize jobs status --url URL job-0001
    repro-characterize jobs wait   --url URL job-0001 --progress [--stream]
    repro-characterize jobs fetch  --url URL job-0001 --report out.html
    repro-characterize jobs list   --url URL
    repro-characterize jobs cancel --url URL job-0002
    repro-characterize store import --db store.db runs.jsonl
    repro-characterize store runs   --db store.db

``obs insight`` prints the decision-level story of a trace (SUTP audit,
NN votes, GA convergence, WCR classes); ``obs profile`` the per-phase
hot-path table of a ``--profile`` trace and ``obs flame`` its collapsed
stacks (flamegraph.pl / speedscope format); ``obs report`` renders the
insight views plus the shmoo heatmap, resource utilization and run
history as one self-contained HTML file; ``obs timeline`` writes
Chrome-trace JSON loadable at ui.perfetto.dev (with per-worker CPU/RSS
counter tracks for profiled runs); ``obs compare`` exits non-zero when
the latest (or named) run's total measurement cost regressed beyond the
threshold vs the baseline run (``--wall-threshold`` / ``--cpu-threshold``
opt wall clock and CPU time into the gate).
"""

from __future__ import annotations

import argparse
import logging
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.analysis.drift import DriftAnalysis
from repro.analysis.statistics import ascii_histogram
from repro.core.characterizer import DeviceCharacterizer
from repro.core.learning import LearningConfig
from repro.core.lot import EnvironmentalSweep, LotCharacterizer
from repro.core.optimization import OptimizationConfig
from repro.ga.engine import GAConfig
from repro.patterns.conditions import NOMINAL_CONDITION
from repro.patterns.march import available_march_tests
from repro.patterns.random_gen import RandomTestGenerator


def _add_telemetry_arguments(parser, suppress_defaults: bool = False) -> None:
    """The global telemetry flags.

    They are registered on the main parser (with real defaults) *and* on
    every subparser (with suppressed defaults, so an absent flag does not
    clobber a value already parsed before the subcommand) — both
    ``repro-characterize --metrics table1`` and
    ``repro-characterize table1 --metrics`` work.
    """
    suppress = argparse.SUPPRESS
    group = parser.add_argument_group("telemetry")
    group.add_argument(
        "--trace",
        metavar="FILE",
        default=suppress if suppress_defaults else None,
        help="write a JSONL telemetry trace (one event per line) to FILE",
    )
    group.add_argument(
        "--metrics",
        action="store_true",
        default=suppress if suppress_defaults else False,
        help="print the telemetry metrics summary at exit",
    )
    group.add_argument(
        "--progress",
        action="store_true",
        default=suppress if suppress_defaults else False,
        help="live per-unit progress lines on stderr during farm runs",
    )
    group.add_argument(
        "--run-log",
        metavar="FILE",
        default=suppress if suppress_defaults else None,
        help=(
            "append this run's cost record (measurements, wall clock) to "
            "a runs.jsonl history; compare runs with 'obs compare'"
        ),
    )
    group.add_argument(
        "--run-name",
        metavar="NAME",
        default=suppress if suppress_defaults else None,
        help="name for the --run-log record (default: run-<n>)",
    )
    group.add_argument(
        "--profile",
        action="store_true",
        default=suppress if suppress_defaults else False,
        help=(
            "record hot-path stacks and CPU/RSS resource samples into "
            "the telemetry trace (inspect with 'obs profile'/'obs flame')"
        ),
    )
    group.add_argument(
        "--profile-mode",
        choices=("sampling", "cprofile"),
        default=suppress if suppress_defaults else "sampling",
        help=(
            "profiler to use with --profile: 'sampling' (default, "
            "near-zero overhead) or 'cprofile' (deterministic per-phase "
            "call counts, higher overhead)"
        ),
    )
    group.add_argument(
        "--profile-interval",
        type=float,
        metavar="SECONDS",
        default=suppress if suppress_defaults else 0.01,
        help="sampling-profiler interval in seconds (default: 0.01)",
    )
    group.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=suppress if suppress_defaults else 0,
        help="-v: phase-level logging; -vv: per-event debug logging",
    )


#: Subcommands that route their work through the tester farm.
_FARM_COMMANDS = ("lot", "wafer", "sweep", "campaign", "screen")


def _add_farm_arguments(parser, suppress_defaults: bool = False) -> None:
    """The global tester-farm flags (same dual-registration trick as the
    telemetry flags, so they work before or after the subcommand)."""
    suppress = argparse.SUPPRESS
    group = parser.add_argument_group("tester farm")
    group.add_argument(
        "--workers",
        type=int,
        metavar="N",
        default=suppress if suppress_defaults else None,
        help=(
            "run work units on N worker processes "
            f"(honoured by: {', '.join(_FARM_COMMANDS)})"
        ),
    )
    group.add_argument(
        "--resume",
        metavar="FILE",
        default=suppress if suppress_defaults else None,
        help=(
            "JSONL checkpoint file: record finished work units and skip "
            "them on re-run after an interruption"
        ),
    )
    group.add_argument(
        "--backend",
        choices=("serial", "process", "remote"),
        default=suppress if suppress_defaults else None,
        help=(
            "executor backend (default: process pool when --workers > 1, "
            "serial otherwise); 'remote' needs --broker"
        ),
    )
    group.add_argument(
        "--broker",
        metavar="HOST:PORT",
        default=suppress if suppress_defaults else None,
        help="farm broker address for --backend remote",
    )


def _farm_kwargs(args) -> dict:
    """``workers=``/``checkpoint=``/``executor=`` keywords from the flags."""
    kwargs = {"workers": args.workers, "checkpoint": args.resume}
    if args.backend:
        from repro.farm.executor import make_executor

        try:
            kwargs["executor"] = make_executor(
                workers=args.workers,
                backend=args.backend,
                broker=args.broker,
            )
        except ValueError as exc:
            raise SystemExit(f"error: {exc}")
    return kwargs


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-characterize",
        description=(
            "Computational-intelligence device characterization "
            "(reproduction of Liau & Schmitt-Landsiedel, DATE 2005)"
        ),
        # No prefix abbreviation: 'obs compare --run' must reach the
        # subparser instead of ambiguously matching --run-log/--run-name
        # during the main parser's token classification.
        allow_abbrev=False,
    )
    parser.add_argument("--seed", type=int, default=0, help="master RNG seed")
    _add_telemetry_arguments(parser)
    _add_farm_arguments(parser)
    telemetry = argparse.ArgumentParser(add_help=False)
    _add_telemetry_arguments(telemetry, suppress_defaults=True)
    _add_farm_arguments(telemetry, suppress_defaults=True)
    commands = parser.add_subparsers(dest="command", required=True)

    march = commands.add_parser(
        "march",
        help="conventional single-trip-point march characterization",
        parents=[telemetry],
    )
    march.add_argument(
        "--algorithm",
        default="march_c-",
        choices=available_march_tests(),
        help="march algorithm to apply",
    )
    march.add_argument(
        "--background",
        default="solid",
        choices=("solid", "checkerboard"),
        help="data background for the march compilation",
    )

    random_cmd = commands.add_parser(
        "random",
        help="multiple-trip-point characterization over random tests",
        parents=[telemetry],
    )
    random_cmd.add_argument("--tests", type=int, default=200)

    table1 = commands.add_parser(
        "table1",
        help="reproduce Table 1 (march vs random vs NN+GA)",
        parents=[telemetry],
    )
    table1.add_argument("--random-tests", type=int, default=300)
    table1.add_argument(
        "--fast",
        action="store_true",
        help="smaller learning/GA budgets (seconds instead of a minute)",
    )

    hunt = commands.add_parser(
        "hunt",
        help="full fig. 4 + fig. 5 worst-case test hunt",
        parents=[telemetry],
    )
    hunt.add_argument("--weights", help="write the NN weight file here")
    hunt.add_argument("--database", help="write the worst-case database here")

    shmoo = commands.add_parser(
        "shmoo", help="fig. 8 overlaid shmoo plot", parents=[telemetry]
    )
    shmoo.add_argument("--tests", type=int, default=40)

    screen = commands.add_parser(
        "screen",
        help="fig. 6 grid-based WCR classification screen (batched rows)",
        parents=[telemetry],
    )
    screen.add_argument("--tests", type=int, default=40)
    screen.add_argument(
        "--step", type=float, default=0.25, help="strobe grid spacing in ns"
    )
    screen.add_argument(
        "--engine",
        default="batched",
        choices=("batched", "scalar"),
        help="row evaluation engine (results are identical; batched is faster)",
    )

    commands.add_parser(
        "sweep",
        help="Vdd x temperature environmental sweep of a march test",
        parents=[telemetry],
    )

    lot = commands.add_parser(
        "lot", help="characterize a Monte-Carlo lot of dies", parents=[telemetry]
    )
    lot.add_argument("--dies", type=int, default=8)
    lot.add_argument("--tests", type=int, default=10)
    lot.add_argument(
        "--database",
        help="export the per-die worst cases as a worst-case database here",
    )

    wafer = commands.add_parser(
        "wafer",
        help="probe a wafer and render the worst-case WCR map",
        parents=[telemetry],
    )
    wafer.add_argument("--grid", type=int, default=7)
    wafer.add_argument("--tests", type=int, default=6)

    campaign = commands.add_parser(
        "campaign",
        help="full campaign: table1 + drift + spec proposal + shmoo + database",
        parents=[telemetry],
    )
    campaign.add_argument("--random-tests", type=int, default=150)
    campaign.add_argument(
        "--out", help="directory to save report.md / database / patterns"
    )

    obs_cmd = commands.add_parser(
        "obs",
        help="inspect recorded telemetry: traces, timelines, run history",
    )
    obs_sub = obs_cmd.add_subparsers(dest="obs_command", required=True)

    obs_summary = obs_sub.add_parser(
        "summary", help="one-screen summary of a telemetry trace"
    )
    obs_summary.add_argument("trace_file", metavar="TRACE")
    obs_summary.add_argument(
        "--json", action="store_true",
        help="machine-readable JSON instead of the text table",
    )

    obs_profile = obs_sub.add_parser(
        "profile",
        help=(
            "per-phase hot-path table from a --profile trace "
            "(self/cumulative weight per function)"
        ),
    )
    obs_profile.add_argument("trace_file", metavar="TRACE")
    obs_profile.add_argument(
        "-n", "--top", type=int, default=15, metavar="N",
        help="functions shown per phase (default: 15)",
    )
    obs_profile.add_argument(
        "--phase", metavar="NAME",
        help="restrict to one campaign phase (e.g. 'lot', 'optimization.ga')",
    )
    obs_profile.add_argument(
        "--json", action="store_true",
        help="machine-readable JSON instead of the text table",
    )

    obs_flame = obs_sub.add_parser(
        "flame",
        help=(
            "export a --profile trace as collapsed stacks "
            "(flamegraph.pl / speedscope folded format)"
        ),
    )
    obs_flame.add_argument("trace_file", metavar="TRACE")
    obs_flame.add_argument(
        "output", metavar="OUT",
        help="output path for the folded stacks (e.g. out.folded)",
    )
    obs_flame.add_argument(
        "--phase", metavar="NAME",
        help="restrict to one campaign phase",
    )

    obs_slowest = obs_sub.add_parser(
        "slowest", help="slowest work units and costliest tests in a trace"
    )
    obs_slowest.add_argument("trace_file", metavar="TRACE")
    obs_slowest.add_argument("-n", "--count", type=int, default=10)

    obs_timeline = obs_sub.add_parser(
        "timeline",
        help=(
            "export a trace as Chrome-trace JSON "
            "(open at ui.perfetto.dev or chrome://tracing)"
        ),
    )
    obs_timeline.add_argument("trace_file", metavar="TRACE")
    obs_timeline.add_argument(
        "-o", "--output", metavar="FILE",
        help="output path (default: TRACE with a .timeline.json suffix)",
    )

    obs_compare = obs_sub.add_parser(
        "compare",
        help=(
            "compare a recorded run against a baseline; exits 1 on a "
            "measurement-cost regression beyond the threshold"
        ),
    )
    obs_compare.add_argument("history_file", nargs="?", metavar="RUNS")
    obs_compare.add_argument(
        "--db", metavar="DB",
        help="read the run history from this repro.store database "
        "instead of a RUNS jsonl file",
    )
    obs_compare.add_argument(
        "--baseline", required=True, metavar="NAME",
        help="name of the baseline run record",
    )
    obs_compare.add_argument(
        "--run", metavar="NAME",
        help="run to check (default: the most recent record)",
    )
    obs_compare.add_argument(
        "--threshold", type=float, default=5.0, metavar="PCT",
        help="allowed measurement-cost increase in percent (default: 5)",
    )
    obs_compare.add_argument(
        "--wall-threshold", type=float, default=None, metavar="PCT",
        help=(
            "also gate on wall clock: allowed increase in percent "
            "(default: wall clock stays advisory)"
        ),
    )
    obs_compare.add_argument(
        "--cpu-threshold", type=float, default=None, metavar="PCT",
        help=(
            "also gate on CPU time: allowed increase in percent "
            "(default: CPU time stays advisory; records without cpu_s "
            "compare as n/a)"
        ),
    )

    obs_insight = obs_sub.add_parser(
        "insight",
        help=(
            "decision-level introspection of a trace: SUTP audit, NN "
            "votes, GA convergence, WCR classes"
        ),
    )
    obs_insight.add_argument("trace_file", metavar="TRACE")

    obs_report = obs_sub.add_parser(
        "report",
        help=(
            "render a trace (+ optional runs.jsonl) as one self-contained "
            "HTML file: inline SVG charts, no scripts, no external assets"
        ),
    )
    obs_report.add_argument("trace_file", metavar="TRACE")
    obs_report.add_argument(
        "output", nargs="?", metavar="OUT",
        help="output path (default: TRACE with a .html suffix)",
    )
    obs_report.add_argument(
        "--runs", metavar="FILE",
        help="runs.jsonl history to include as the run-history table",
    )
    obs_report.add_argument(
        "--db", metavar="DB",
        help="repro.store database to read the run-history table from "
        "(alternative to --runs)",
    )
    obs_report.add_argument(
        "--title", default="Characterization run report",
        help="report heading",
    )

    obs_bench = obs_sub.add_parser(
        "bench-import",
        help=(
            "append BENCH_<name>.json benchmark records to a run history "
            "so 'obs compare' can gate them"
        ),
    )
    obs_bench.add_argument("history_file", nargs="?", metavar="RUNS")
    obs_bench.add_argument(
        "bench_files", nargs="+", metavar="BENCH_JSON",
        help="BENCH_*.json records written by the benchmark suite",
    )
    obs_bench.add_argument(
        "--db", metavar="DB",
        help="import into this repro.store database instead of a RUNS "
        "jsonl file (raw payloads land in bench_records, gateable run "
        "records in runs)",
    )
    obs_bench.add_argument(
        "--suffix", default="",
        help="append to each record's run name (e.g. '@ci')",
    )

    obs_alerts = obs_sub.add_parser(
        "alerts",
        help=(
            "evaluate threshold alert rules against a /metrics snapshot "
            "or the result store; exit 0 ok / 1 warning / 2 critical"
        ),
    )
    obs_alerts.add_argument(
        "--url", metavar="URL",
        help=(
            "scrape METRICS from a running service or farm broker "
            "(base URL or full .../metrics endpoint)"
        ),
    )
    obs_alerts.add_argument(
        "--metrics-file", metavar="FILE",
        help="read a saved Prometheus text-format exposition",
    )
    obs_alerts.add_argument(
        "--db", metavar="DB",
        help="derive queue/failure/latency samples from a repro.store "
        "database instead of a live scrape",
    )
    obs_alerts.add_argument(
        "--rule", action="append", default=[], metavar="RULE",
        help="threshold rule 'METRIC[{label=\"v\"}] OP WARN[:CRIT]' "
        "(repeatable; default: built-in queue/failure/latency rules)",
    )

    farm_broker = commands.add_parser(
        "farm-broker",
        help="run the distributed tester-farm broker (TCP hub)",
    )
    farm_broker.add_argument("--host", default="127.0.0.1")
    farm_broker.add_argument(
        "--port", type=int, default=0,
        help="listen port (0 picks a free one; the address is printed)",
    )
    farm_broker.add_argument(
        "--lease-timeout", type=float, default=30.0, metavar="S",
        help=(
            "seconds a silent worker may hold a unit before it is "
            "re-issued (default: 30)"
        ),
    )
    farm_broker.add_argument(
        "--spool", metavar="DIR",
        help=(
            "spool accepted results to per-campaign JSONL files in DIR "
            "so a restarted broker serves finished units from disk"
        ),
    )
    farm_broker.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help=(
            "also serve GET /metrics (Prometheus text) on this port "
            "(0 picks a free one; the address is printed)"
        ),
    )
    farm_broker.add_argument(
        "--trace", metavar="FILE",
        help=(
            "write the broker's control-plane events (lease_issued, "
            "lease_reissued, worker_joined, ...) to a JSONL trace file"
        ),
    )

    farm_top = commands.add_parser(
        "farm-top",
        help="live worker/lease/throughput table of a running broker",
    )
    farm_top.add_argument(
        "--broker", required=True, metavar="HOST:PORT",
        help="broker address (printed by farm-broker at startup)",
    )
    farm_top.add_argument(
        "--interval", type=float, default=2.0, metavar="S",
        help="refresh period in seconds (default: 2)",
    )
    farm_top.add_argument(
        "--once", action="store_true",
        help="print one snapshot and exit (no screen clearing)",
    )

    farm_worker = commands.add_parser(
        "farm-worker",
        help="run one socket worker against a farm broker",
    )
    farm_worker.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="broker address (printed by farm-broker at startup)",
    )
    farm_worker.add_argument(
        "--name",
        help="worker name stamped into telemetry (default: host-pid)",
    )
    farm_worker.add_argument(
        "--campaign", metavar="ID",
        help=(
            "pin to one campaign id; the broker refuses the join while "
            "a different campaign is active"
        ),
    )
    farm_worker.add_argument(
        "--max-units", type=int, default=None, metavar="N",
        help="exit after completing N units",
    )
    farm_worker.add_argument(
        "--max-idle", type=float, default=None, metavar="S",
        help="exit after S seconds with nothing to steal",
    )

    _add_service_parsers(commands)
    return parser


def _add_service_parsers(commands) -> None:
    """The characterization-service command families (see docs/service.md):
    ``serve`` (the HTTP job API), ``jobs`` (its client) and ``store``
    (the SQLite result store)."""
    serve = commands.add_parser(
        "serve",
        help="run the characterization job service (HTTP/JSON API)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8765,
        help="listen port (0 picks a free one; the chosen port is printed)",
    )
    serve.add_argument(
        "--data-dir", default="repro-service", metavar="DIR",
        help="job working directories and artifacts live here",
    )
    serve.add_argument(
        "--db", metavar="DB",
        help="result-store database path (default: DATA_DIR/store.db)",
    )
    serve.add_argument(
        "--max-workers", type=int, default=2, metavar="N",
        help="campaigns run concurrently; further jobs queue FIFO",
    )
    serve.add_argument(
        "--access-log", metavar="FILE",
        help="append one structured JSON line per request (ts, request "
        "id, route, status, duration, job id) to FILE; off by default",
    )
    serve.add_argument(
        "--queue-limit", type=int, default=None, metavar="N",
        help="queued jobs beyond which /readyz reports 503 "
        "(default: 64)",
    )
    serve.add_argument(
        "--broker", metavar="HOST:PORT",
        help="farm broker handed to jobs that target the remote "
        "backend; without it such jobs are rejected at submit",
    )

    jobs = commands.add_parser(
        "jobs", help="submit and track jobs on a running service"
    )
    jobs_sub = jobs.add_subparsers(dest="jobs_command", required=True)

    def add_url(parser) -> None:
        parser.add_argument(
            "--url", required=True, metavar="URL",
            help="service base URL, e.g. http://127.0.0.1:8765",
        )

    from repro.service.spec import JOB_COMMANDS

    submit = jobs_sub.add_parser(
        "submit", help="submit a campaign spec; prints the job id"
    )
    add_url(submit)
    submit.add_argument(
        "job_command", metavar="COMMAND",
        choices=sorted(JOB_COMMANDS),
        help=f"campaign to run ({', '.join(sorted(JOB_COMMANDS))})",
    )
    submit.add_argument(
        "-p", "--param", action="append", default=[], metavar="KEY=VALUE",
        help="campaign parameter (repeatable), e.g. -p dies=4 -p tests=3",
    )
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="farm workers for the job's campaign (farm commands only)",
    )
    submit.add_argument(
        "--backend", choices=("serial", "process", "remote"),
        default=None,
        help="executor backend for the job's campaign (farm commands "
        "only; 'remote' needs the service to run with --broker)",
    )
    submit.add_argument(
        "--wait", action="store_true",
        help="block until the job finishes (exit 1 unless it completes)",
    )
    submit.add_argument("--json", action="store_true",
                        help="print the job row as JSON")

    status = jobs_sub.add_parser(
        "status", help="job state + live progress"
    )
    add_url(status)
    status.add_argument("job_id", metavar="JOB")
    status.add_argument("--json", action="store_true")

    wait = jobs_sub.add_parser(
        "wait", help="block until a job finishes; exit 0 only on success"
    )
    add_url(wait)
    wait.add_argument("job_id", metavar="JOB")
    wait.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="give up (exit 2) after S seconds",
    )
    wait.add_argument(
        "--poll", type=float, default=0.2, metavar="S",
        help="initial poll interval in seconds; backs off with jitter "
        "to a 2 s cap (default: 0.2)",
    )
    wait.add_argument(
        "--progress", action="store_true",
        help="print a progress line on stderr at every poll",
    )
    wait.add_argument(
        "--stream", action="store_true",
        help="follow the job's live SSE stream (/jobs/ID/stream) "
        "instead of polling; implies live progress on stderr with "
        "--progress",
    )

    fetch = jobs_sub.add_parser(
        "fetch", help="download a finished job's artifacts"
    )
    add_url(fetch)
    fetch.add_argument("job_id", metavar="JOB")
    fetch.add_argument("--report", metavar="FILE",
                       help="save the HTML run report here")
    fetch.add_argument("--wcdb", metavar="FILE",
                       help="save the worst-case database export here")
    fetch.add_argument("--log", metavar="FILE",
                       help="save the job's CLI output here")

    list_cmd = jobs_sub.add_parser("list", help="all jobs on the service")
    add_url(list_cmd)
    list_cmd.add_argument("--json", action="store_true")

    cancel = jobs_sub.add_parser(
        "cancel", help="cancel a job (guaranteed while still queued)"
    )
    add_url(cancel)
    cancel.add_argument("job_id", metavar="JOB")

    store = commands.add_parser(
        "store", help="inspect and migrate the SQLite result store"
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)

    store_import = store_sub.add_parser(
        "import",
        help="migrate runs.jsonl history / wcdb exports into the store",
    )
    store_import.add_argument("--db", required=True, metavar="DB")
    store_import.add_argument(
        "history_files", nargs="*", metavar="RUNS_JSONL",
        help="runs.jsonl files to import (tolerant loader: torn lines "
        "are counted and skipped)",
    )
    store_import.add_argument(
        "--wcdb", action="append", default=[], metavar="FILE",
        help="worst-case database JSON export to import (repeatable; "
        "dedup on test + condition, worst record wins)",
    )
    store_import.add_argument(
        "--scope", default="", metavar="NAME",
        help="scope label for imported worst-case records (default: '')",
    )

    store_runs = store_sub.add_parser(
        "runs", help="list the run records stored in a database"
    )
    store_runs.add_argument("--db", required=True, metavar="DB")
    store_runs.add_argument("--json", action="store_true")


def _cmd_march(args) -> int:
    from repro.patterns.march import (
        checkerboard_background,
        compile_march,
        get_march_test,
        solid_background,
    )
    from repro.patterns.testcase import TestCase

    characterizer = DeviceCharacterizer.with_default_setup(seed=args.seed)
    background = (
        checkerboard_background
        if args.background == "checkerboard"
        else solid_background
    )
    sequence = compile_march(
        get_march_test(args.algorithm), background=background
    )
    test = TestCase(
        sequence, NOMINAL_CONDITION,
        name=f"{args.algorithm}/{args.background}", origin="deterministic",
    )
    entry = characterizer.measure_single(test)
    if entry.value is None:
        print("trip point not found inside the characterization range")
        return 1
    wcr = characterizer.objective.fitness(entry.value)
    print(f"{test.name}: trip point {entry.value:.2f} ns "
          f"({entry.measurements} measurements), WCR {wcr:.3f}")
    return 0


def _cmd_random(args) -> int:
    characterizer = DeviceCharacterizer.with_default_setup(seed=args.seed)
    dsv = characterizer.characterize_random(n_tests=args.tests)
    print(DriftAnalysis.from_dsv(dsv).describe())
    print()
    print(ascii_histogram(dsv.values(), bins=10, width=40, unit="ns"))
    return 0


def _cmd_table1(args) -> int:
    characterizer = DeviceCharacterizer.with_default_setup(seed=args.seed)
    learning_config = None
    optimization_config = None
    if args.fast:
        learning_config = LearningConfig(
            tests_per_round=100,
            max_rounds=1,
            max_epochs=60,
            n_networks=3,
            pin_condition=NOMINAL_CONDITION,
            seed=args.seed,
        )
        optimization_config = OptimizationConfig(
            ga=GAConfig(population_size=12, n_populations=2, max_generations=15),
            n_seeds=8,
            seed_pool_size=120,
            pin_condition=NOMINAL_CONDITION,
            seed=args.seed,
        )
    report = characterizer.run_table1_comparison(
        random_tests=args.random_tests,
        learning_config=learning_config,
        optimization_config=optimization_config,
    )
    print(report.to_text())
    return 0


def _cmd_hunt(args) -> int:
    characterizer = DeviceCharacterizer.with_default_setup(seed=args.seed)
    learning, optimization = characterizer.characterize_intelligent()
    print(
        f"learning: {len(learning.tests)} measured tests, "
        f"val accuracy {learning.val_accuracy:.2f}, "
        f"accepted={learning.accepted}"
    )
    ga = optimization.ga_result
    print(
        f"optimization: {ga.generations_run} generations, best WCR "
        f"{optimization.best_wcr:.3f}, value {optimization.best_value:.2f} "
        f"{characterizer.ate.chip.parameter.unit}"
    )
    print(f"worst case test: {optimization.best_test}")
    if args.weights:
        learning.save_weight_file(args.weights)
        print(f"NN weight file written: {args.weights}")
    if args.database:
        optimization.database.export_json(args.database)
        print(f"worst-case database written: {args.database}")
    return 0


def _cmd_shmoo(args) -> int:
    characterizer = DeviceCharacterizer.with_default_setup(seed=args.seed)
    tests = [
        t.with_condition(NOMINAL_CONDITION)
        for t in RandomTestGenerator(seed=args.seed).batch(args.tests)
    ]
    plot = characterizer.shmoo_overlay(
        tests, vdd_values=[1.5, 1.6, 1.7, 1.8, 1.9, 2.0, 2.1], strobe_step=0.5
    )
    print(plot.render())
    spread = plot.boundary_spread_ns(1.8)
    print(f"trip point spread at Vdd 1.8 V: {spread:.2f} ns")
    return 0


def _cmd_screen(args) -> int:
    characterizer = DeviceCharacterizer.with_default_setup(seed=args.seed)
    tests = [
        t.with_condition(NOMINAL_CONDITION)
        for t in RandomTestGenerator(seed=args.seed).batch(args.tests)
    ]
    if args.workers or args.resume or args.backend:
        from repro.core.wcr import run_screen_farm

        low, high = characterizer.search_range
        report = run_screen_farm(
            tests,
            low,
            high,
            args.step,
            die=characterizer.ate.chip.die,
            parameter=characterizer.ate.chip.parameter,
            noise_sigma=characterizer.ate.measurement.noise_sigma_ns,
            campaign_seed=args.seed,
            **_farm_kwargs(args),
        )
    else:
        report = characterizer.wcr_screen(
            tests, strobe_step=args.step, engine=args.engine
        )
    print(report.render())
    worst = report.worst()
    wcr = "unbounded" if worst.wcr is None else f"{worst.wcr:.3f}"
    print(
        f"worst test: {worst.test_name} (WCR {wcr}, "
        f"{report.measurements} measurements)"
    )
    return 0


def _cmd_sweep(args) -> int:
    characterizer = DeviceCharacterizer.with_default_setup(seed=args.seed)
    test, _ = characterizer.characterize_march()
    sweep = EnvironmentalSweep(
        characterizer.ate, characterizer.search_range,
        resolution=characterizer.resolution, seed=args.seed,
    )
    result = sweep.sweep(
        test,
        vdd_values=[1.5, 1.65, 1.8, 1.95, 2.1],
        temperature_values=[-40.0, 25.0, 85.0, 125.0],
        **_farm_kwargs(args),
    )
    print(result.render())
    i, j, value = result.worst_cell()
    print(
        f"worst cell: Vdd {result.vdd_values[i]:.2f} V / "
        f"{result.temperature_values[j]:.0f} C -> {value:.2f} "
        f"{result.parameter.unit} ({result.measurements} measurements)"
    )
    return 0


def _cmd_lot(args) -> int:
    lot = LotCharacterizer(search_range=(15.0, 45.0), seed=args.seed)
    tests = [
        t.with_condition(NOMINAL_CONDITION)
        for t in RandomTestGenerator(seed=args.seed).batch(args.tests)
    ]
    report = lot.run(tests, n_dies=args.dies, **_farm_kwargs(args))
    print(report.describe())
    if args.database:
        database = report.to_database(tests)
        database.export_json(args.database)
        print(f"\nworst-case database exported to: {args.database}")
    return 0


def _cmd_wafer(args) -> int:
    from repro.core.wafer_probe import WaferProber
    from repro.device.wafer import RadialVariationModel, Wafer

    wafer = Wafer(grid_diameter=args.grid)
    variation = RadialVariationModel(seed=args.seed)
    prober = WaferProber(
        wafer, variation, search_range=(15.0, 45.0), seed=args.seed
    )
    tests = [
        t.with_condition(NOMINAL_CONDITION)
        for t in RandomTestGenerator(seed=args.seed).batch(args.tests)
    ]
    report = prober.probe(tests, **_farm_kwargs(args))
    print(report.render_map())
    site, result = report.worst_site()
    center, edge = report.center_vs_edge()
    print(
        f"worst die at ({site.x},{site.y}): "
        f"{result.worst_value:.2f} {report.parameter.unit} "
        f"(WCR {result.worst_wcr:.3f})"
    )
    print(f"center mean {center:.2f} vs edge mean {edge:.2f} "
          f"{report.parameter.unit}")
    return 0


def _cmd_campaign(args) -> int:
    from repro.core.campaign import run_campaign
    from repro.ga.engine import GAConfig

    characterizer = DeviceCharacterizer.with_default_setup(seed=args.seed)
    report = run_campaign(
        characterizer,
        random_tests=args.random_tests,
        learning_config=LearningConfig(
            tests_per_round=min(150, args.random_tests),
            max_rounds=2,
            pin_condition=NOMINAL_CONDITION,
            seed=args.seed,
        ),
        optimization_config=OptimizationConfig(
            ga=GAConfig(population_size=16, n_populations=2, max_generations=20),
            n_seeds=12,
            seed_pool_size=150,
            pin_condition=NOMINAL_CONDITION,
            seed=args.seed,
        ),
        **_farm_kwargs(args),
    )
    print(report.to_markdown())
    if args.out:
        target = report.save(args.out)
        print(f"\ncampaign saved to: {target}")
    return 0


def _resolve_history(args):
    """The run history an obs subcommand should work against.

    Exactly one of the positional RUNS jsonl path and ``--db`` must be
    given; ``--db`` opens the :class:`repro.store.ResultStore` and
    adapts it to the :class:`~repro.obs.history.RunHistory` interface,
    so the comparison/import code is identical for both backends.
    Returns ``None`` (after printing the usage error) when the choice
    is ambiguous or absent.
    """
    from repro import obs

    if args.history_file and args.db:
        print(
            "error: give either a RUNS jsonl file or --db, not both",
            file=sys.stderr,
        )
        return None
    if args.db:
        from repro.store import ResultStore

        return ResultStore(args.db).run_history()
    if args.history_file:
        return obs.RunHistory(args.history_file)
    print("error: a RUNS jsonl file or --db is required", file=sys.stderr)
    return None


def _cmd_obs(args) -> int:
    from repro import obs

    if args.obs_command == "compare":
        history = _resolve_history(args)
        if history is None:
            return 2
        try:
            comparison = obs.compare_runs(
                history,
                baseline_name=args.baseline,
                run_name=args.run,
                threshold_pct=args.threshold,
                wall_threshold_pct=args.wall_threshold,
                cpu_threshold_pct=args.cpu_threshold,
            )
        except KeyError as exc:
            # Exit 3 = the history is readable but the requested run is
            # not in it — distinct from 2 (unreadable/ambiguous input)
            # so CI can tell "no baseline yet" from a broken setup.
            print(f"error: {exc.args[0]}", file=sys.stderr)
            names = [r.get("run") for r in history.load().records]
            listing = ", ".join(repr(n) for n in names if n) or "(none)"
            print(f"available runs: {listing}", file=sys.stderr)
            return 3
        print(comparison.render())
        return 1 if comparison.regressed else 0

    if args.obs_command == "bench-import":
        import json

        history = _resolve_history(args)
        if history is None:
            return 2
        for bench_file in args.bench_files:
            try:
                payload = json.loads(Path(bench_file).read_text())
            except (OSError, json.JSONDecodeError) as exc:
                print(
                    f"error: cannot read bench record {bench_file}: {exc}",
                    file=sys.stderr,
                )
                return 2
            if not isinstance(payload, dict) or "bench" not in payload:
                print(
                    f"error: {bench_file} is not a BENCH_*.json record",
                    file=sys.stderr,
                )
                return 2
            name = str(payload["bench"]) + args.suffix
            store = getattr(history, "store", None)
            if store is not None:
                # --db: keep the raw payload too (bench_records table),
                # not just the converted run record.
                record = store.import_bench_payload(payload, name=name)
            else:
                record = obs.bench_run_record(payload, name=name)
                history.append(record)
            print(
                f"bench {record['run']!r} imported: "
                f"{record['measurements']} measurements, "
                f"{record['wall_s']:.3f}s wall"
            )
        return 0

    if args.obs_command == "alerts":
        return _cmd_obs_alerts(args)

    try:
        loaded = obs.load_trace(args.trace_file)
    except OSError as exc:
        print(f"error: cannot read trace: {exc}", file=sys.stderr)
        return 2
    if args.obs_command == "summary":
        if args.json:
            import json

            print(json.dumps(obs.trace_summary_data(loaded), indent=2,
                             sort_keys=True))
        else:
            print(obs.render_trace_summary(loaded))
    elif args.obs_command == "profile":
        summary = obs.build_profile_summary(loaded.records, phase=args.phase)
        if args.json:
            import json

            print(json.dumps(obs.profile_summary_data(summary, top=args.top),
                             indent=2, sort_keys=True))
        else:
            print(obs.render_profile(summary, top=args.top))
            rows = obs.worker_utilization(loaded.records)
            if rows:
                print("per-worker utilization:")
                print(obs.render_worker_utilization(rows))
        if summary.empty and not args.json:
            return 1
    elif args.obs_command == "flame":
        stacks = obs.write_folded(
            loaded.records, args.output, phase=args.phase
        )
        if stacks == 0:
            print(
                "warning: no profile events in trace - record one with "
                "--profile",
                file=sys.stderr,
            )
        print(
            f"folded stacks written: {args.output} ({stacks} stack(s); "
            f"load in speedscope.app or flamegraph.pl)"
        )
    elif args.obs_command == "slowest":
        print(obs.render_slowest(loaded, count=args.count))
    elif args.obs_command == "timeline":
        output = args.output or f"{args.trace_file}.timeline.json"
        path = obs.write_chrome_trace(loaded.records, output)
        spans = sum(
            1
            for entry in obs.build_chrome_trace(loaded.records)["traceEvents"]
            if entry.get("ph") == "X"
        )
        print(f"timeline written: {path} ({spans} span(s); "
              f"open at ui.perfetto.dev)")
    elif args.obs_command == "insight":
        print(obs.render_insight(obs.build_insight(loaded.records)))
    elif args.obs_command == "report":
        runs = None
        if args.runs and args.db:
            print(
                "error: give either --runs or --db, not both",
                file=sys.stderr,
            )
            return 2
        if args.db:
            from repro.store import ResultStore

            runs = ResultStore(args.db).run_history().load().records
        elif args.runs:
            try:
                runs = obs.RunHistory(args.runs).load().records
            except OSError as exc:
                print(
                    f"error: cannot read run history: {exc}",
                    file=sys.stderr,
                )
                return 2
        html = obs.build_html_report(
            loaded.records, runs=runs, title=args.title
        )
        output = Path(args.output or f"{args.trace_file}.html")
        output.write_text(html)
        insight = obs.build_insight(loaded.records)
        decisions = len(obs.insight_events(loaded.records))
        note = " (no decision-level events)" if insight.empty else ""
        print(
            f"report written: {output} ({len(loaded.records)} event(s), "
            f"{decisions} decision event(s){note})"
        )
    return 0


def _cmd_obs_alerts(args) -> int:
    """``repro obs alerts``: Nagios-style threshold check, exit = level."""
    from repro.obs import alerts

    sources = [bool(args.url), bool(args.metrics_file), bool(args.db)]
    if sum(sources) != 1:
        print(
            "error: give exactly one of --url, --metrics-file or --db",
            file=sys.stderr,
        )
        return 3
    try:
        if args.url:
            from urllib.request import urlopen

            # Accept both the service base URL and an already-complete
            # endpoint (farm-broker prints the full .../metrics URL).
            url = args.url.rstrip("/")
            if not url.endswith("/metrics"):
                url += "/metrics"
            with urlopen(url, timeout=30.0) as response:
                samples = alerts.load_samples_text(
                    response.read().decode("utf-8")
                )
        elif args.metrics_file:
            samples = alerts.load_samples_text(
                Path(args.metrics_file).read_text()
            )
        else:
            from repro.store import ResultStore

            samples = alerts.store_samples(ResultStore(args.db))
    except OSError as exc:
        print(f"error: cannot read metrics: {exc}", file=sys.stderr)
        return 3
    except ValueError as exc:  # ExpositionError included
        print(f"error: invalid exposition: {exc}", file=sys.stderr)
        return 3
    if args.rule:
        try:
            rules = [alerts.parse_rule(text) for text in args.rule]
        except alerts.AlertRuleError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 3
    else:
        rules = list(alerts.DEFAULT_RULES)
    results = alerts.evaluate_rules(samples, rules)
    print(alerts.render_results(results))
    return alerts.worst_level(results)


def _cmd_farm_broker(args) -> int:
    from repro import obs
    from repro.farm.remote import FarmBroker

    logging.basicConfig(
        level=logging.INFO, format="%(levelname)s %(name)s: %(message)s"
    )
    if args.trace:
        # Broker-local trace of the control-plane events; workers and
        # clients keep their own traces, this one is the hub's view.
        obs.configure(trace_path=args.trace)
    broker = FarmBroker(
        host=args.host,
        port=args.port,
        lease_timeout_s=args.lease_timeout,
        spool_dir=args.spool,
        metrics_port=args.metrics_port,
    )
    host, port = broker.start()
    # Flushed immediately so wrappers (CI smoke, tests) can scrape the
    # chosen address even when --port 0 asked for a free one.
    print(f"broker listening on {host}:{port}", flush=True)
    if args.metrics_port is not None:
        mhost, mport = broker.metrics_address
        print(
            f"broker metrics on http://{mhost}:{mport}/metrics", flush=True
        )
    try:
        broker.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        broker.shutdown()
        if args.trace:
            obs.reset()
    return 0


def _cmd_farm_top(args) -> int:
    from repro.farm.remote import fetch_broker_stats
    from repro.obs.farm import render_farm_top

    try:
        if args.once:
            print(render_farm_top(fetch_broker_stats(args.broker)), end="")
            return 0
        while True:
            screen = render_farm_top(fetch_broker_stats(args.broker))
            # Clear + home, then the fresh table — a poor man's top(1).
            print("\x1b[2J\x1b[H" + screen, end="", flush=True)
            time.sleep(max(0.2, args.interval))
    except KeyboardInterrupt:
        print()
        return 0
    except (OSError, ConnectionError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _cmd_farm_worker(args) -> int:
    from repro.farm.remote import WorkerRejected, run_worker

    logging.basicConfig(
        level=logging.INFO, format="%(levelname)s %(name)s: %(message)s"
    )
    try:
        completed = run_worker(
            args.connect,
            name=args.name,
            campaign=args.campaign,
            max_units=args.max_units,
            max_idle_s=args.max_idle,
        )
    except WorkerRejected as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        print("worker interrupted", file=sys.stderr)
        return 0
    print(f"worker done: {completed} unit(s) completed")
    return 0


def _cmd_serve(args) -> int:
    from repro.service import JobManager, create_server
    from repro.store import ResultStore

    data_dir = Path(args.data_dir)
    data_dir.mkdir(parents=True, exist_ok=True)
    db_path = args.db or str(data_dir / "store.db")
    store = ResultStore(db_path)
    manager = JobManager(
        store, data_dir, max_workers=args.max_workers, broker=args.broker
    )
    recovered = manager.recover()
    for job_id in recovered:
        print(
            f"recovered: {job_id} was interrupted and is now failed",
            file=sys.stderr,
        )
    manager.start()
    from repro.service import DEFAULT_READY_QUEUE_LIMIT

    server = create_server(
        manager,
        host=args.host,
        port=args.port,
        access_log=Path(args.access_log) if args.access_log else None,
        ready_queue_limit=(
            args.queue_limit
            if args.queue_limit is not None
            else DEFAULT_READY_QUEUE_LIMIT
        ),
    )
    host, port = server.server_address[0], server.server_address[1]
    access_note = f", access log: {args.access_log}" if args.access_log else ""
    # Flushed immediately so wrappers (CI smoke, tests) can scrape the
    # chosen port even when --port 0 asked for a free one.
    print(
        f"serving on http://{host}:{port} "
        f"(store: {db_path}, workers: {args.max_workers}{access_note})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        server.server_close()
        manager.shutdown()
    return 0


def _job_line(job: dict) -> str:
    """One human-readable listing line for a job row."""
    spec = job.get("spec") or {}
    extra = ""
    if job.get("error"):
        extra = f"  [{job['error']}]"
    return (
        f"{job['job_id']}  {job['state']:<9}  "
        f"{spec.get('command', '?')}{extra}"
    )


def _cmd_jobs(args) -> int:
    import json

    from repro.service import ServiceClient, ServiceError
    from repro.service.spec import JOB_COMMANDS, JobSpec, SpecError

    client = ServiceClient(args.url)
    try:
        if args.jobs_command == "submit":
            allowed = JOB_COMMANDS[args.job_command]
            params = {}
            for item in args.param:
                key, sep, raw = item.partition("=")
                key = key.replace("-", "_")
                if not sep:
                    print(
                        f"error: -p needs KEY=VALUE, got {item!r}",
                        file=sys.stderr,
                    )
                    return 2
                kind = allowed.get(key)
                if kind is None:
                    print(
                        f"error: unknown parameter {key!r} for "
                        f"{args.job_command!r}; allowed: "
                        f"{', '.join(sorted(allowed)) or '(none)'}",
                        file=sys.stderr,
                    )
                    return 2
                try:
                    if kind is bool:
                        params[key] = raw.lower() in ("1", "true", "yes")
                    else:
                        params[key] = kind(raw)
                except ValueError:
                    print(
                        f"error: parameter {key!r} must be "
                        f"{kind.__name__}, got {raw!r}",
                        file=sys.stderr,
                    )
                    return 2
            try:
                spec = JobSpec.from_payload(
                    {
                        "command": args.job_command,
                        "params": params,
                        "seed": args.seed,
                        **(
                            {"workers": args.workers}
                            if args.workers is not None
                            else {}
                        ),
                        **(
                            {"backend": args.backend}
                            if args.backend is not None
                            else {}
                        ),
                    }
                )
            except SpecError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            job = client.submit(spec)
            if args.json:
                print(json.dumps(job, indent=2, sort_keys=True))
            else:
                print(job["job_id"])
            if args.wait:
                final = client.wait(str(job["job_id"]))
                print(f"{final['job_id']}: {final['state']}")
                return 0 if final["state"] == "completed" else 1
            return 0

        if args.jobs_command == "status":
            status = client.job(args.job_id)
            if args.json:
                print(json.dumps(status, indent=2, sort_keys=True))
            else:
                job = status["job"]
                progress = status.get("progress") or {}
                print(_job_line(job))
                if progress:
                    done = progress.get("units_done", 0)
                    total = progress.get("units_total", 0)
                    units = f", units {done}/{total}" if total else ""
                    phase = progress.get("phase")
                    phase_note = f", phase {phase}" if phase else ""
                    print(
                        f"  events {progress.get('events', 0)}, "
                        f"measurements "
                        f"{progress.get('measurements', 0)}"
                        f"{units}{phase_note}"
                    )
            return 0

        if args.jobs_command == "wait":
            def _print_progress(status: dict) -> None:
                progress = status.get("progress") or {}
                print(
                    f"{args.job_id}: {status['job']['state']} "
                    f"({progress.get('measurements', 0)} measurements)",
                    file=sys.stderr,
                )

            if args.stream:
                def _print_stream_progress(progress: dict) -> None:
                    print(
                        f"{args.job_id}: {progress.get('state', '?')} "
                        f"({progress.get('measurements', 0)} measurements, "
                        f"{progress.get('events', 0)} events)",
                        file=sys.stderr,
                    )

                job = client.wait_streaming(
                    args.job_id,
                    timeout=args.timeout,
                    on_progress=(
                        _print_stream_progress if args.progress else None
                    ),
                )
            else:
                job = client.wait(
                    args.job_id,
                    timeout=args.timeout,
                    poll_s=args.poll,
                    on_progress=_print_progress if args.progress else None,
                )
            print(f"{job['job_id']}: {job['state']}")
            return 0 if job["state"] == "completed" else 1

        if args.jobs_command == "fetch":
            if not (args.report or args.wcdb or args.log):
                print(
                    "error: nothing to fetch "
                    "(give --report, --wcdb and/or --log)",
                    file=sys.stderr,
                )
                return 2
            for target, getter in (
                (args.report, client.report),
                (args.wcdb, client.wcdb),
                (args.log, client.log),
            ):
                if target:
                    Path(target).write_bytes(getter(args.job_id))
                    print(f"saved: {target}")
            return 0

        if args.jobs_command == "list":
            jobs = client.jobs()
            if args.json:
                print(json.dumps(jobs, indent=2, sort_keys=True))
            else:
                if not jobs:
                    print("no jobs")
                for job in jobs:
                    print(_job_line(job))
            return 0

        if args.jobs_command == "cancel":
            result = client.cancel(args.job_id)
            job = result["job"]
            if result["cancelled"]:
                print(f"{job['job_id']}: cancelled")
            else:
                print(
                    f"{job['job_id']}: {job['state']} "
                    "(no longer queued; running jobs are terminated "
                    "best-effort)"
                )
            return 0
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled jobs command {args.jobs_command!r}")


def _cmd_store(args) -> int:
    import json

    from repro.store import ResultStore

    store = ResultStore(args.db)
    if args.store_command == "import":
        if not args.history_files and not args.wcdb:
            print(
                "error: nothing to import "
                "(give runs.jsonl files and/or --wcdb)",
                file=sys.stderr,
            )
            return 2
        for history_file in args.history_files:
            # The history loader tolerates absent files (an empty
            # history is normal for appenders); a *migration* of a path
            # that does not exist is a typo and must fail loudly.
            if not Path(history_file).exists():
                print(
                    f"error: cannot read {history_file}: no such file",
                    file=sys.stderr,
                )
                return 2
            try:
                result = store.import_runs_jsonl(history_file)
            except OSError as exc:
                print(
                    f"error: cannot read {history_file}: {exc}",
                    file=sys.stderr,
                )
                return 2
            print(f"{history_file}: {result.describe()}")
        for wcdb_file in args.wcdb:
            try:
                payload = json.loads(Path(wcdb_file).read_text())
            except (OSError, json.JSONDecodeError) as exc:
                print(
                    f"error: cannot read {wcdb_file}: {exc}",
                    file=sys.stderr,
                )
                return 2
            imported = store.import_wcdb_payload(payload, scope=args.scope)
            print(
                f"{wcdb_file}: {imported} worst-case record(s) imported "
                f"(scope {args.scope!r})"
            )
        return 0

    if args.store_command == "runs":
        records = store.runs()
        if args.json:
            print(json.dumps(records, indent=2, sort_keys=True))
            return 0
        if not records:
            print("no runs stored")
            return 0
        for record in records:
            wall = record.get("wall_s")
            wall_note = (
                f"{wall:.3f}s" if isinstance(wall, (int, float)) else "?"
            )
            print(
                f"{record.get('run')}  {record.get('campaign', '?'):<10}  "
                f"{record.get('measurements', 0)} measurements, "
                f"{wall_note} wall"
            )
        return 0
    raise AssertionError(f"unhandled store command {args.store_command!r}")


_COMMANDS = {
    "march": _cmd_march,
    "random": _cmd_random,
    "table1": _cmd_table1,
    "hunt": _cmd_hunt,
    "shmoo": _cmd_shmoo,
    "screen": _cmd_screen,
    "sweep": _cmd_sweep,
    "lot": _cmd_lot,
    "wafer": _cmd_wafer,
    "campaign": _cmd_campaign,
    "obs": _cmd_obs,
    "serve": _cmd_serve,
    "jobs": _cmd_jobs,
    "store": _cmd_store,
    "farm-broker": _cmd_farm_broker,
    "farm-top": _cmd_farm_top,
    "farm-worker": _cmd_farm_worker,
}

#: Commands that never run a campaign in this process: no telemetry
#: setup/teardown (``serve`` job subprocesses carry their own traces;
#: remote workers spool telemetry back to the submitting client).
_NO_TELEMETRY_COMMANDS = (
    "obs", "serve", "jobs", "store", "farm-broker", "farm-top", "farm-worker"
)


def _telemetry_requested(args) -> bool:
    return bool(
        args.trace or args.metrics or args.verbose or args.progress
        or args.run_log or args.profile
    )


def _setup_observability(args) -> None:
    """Enable the obs layer per the global CLI flags (off by default)."""
    if args.verbose:
        logging.basicConfig(
            level=logging.DEBUG if args.verbose > 1 else logging.INFO,
            format="%(levelname)s %(name)s: %(message)s",
        )
        logging.getLogger("repro").setLevel(
            logging.DEBUG if args.verbose > 1 else logging.INFO
        )
    if _telemetry_requested(args):
        from repro import obs

        profile = None
        if args.profile:
            profile = obs.ProfileConfig(
                mode=args.profile_mode, interval_s=args.profile_interval
            )
        try:
            obs.configure(
                trace_path=args.trace,
                log_events=bool(args.verbose),
                profile=profile,
            )
        except OSError as exc:
            raise SystemExit(f"cannot open trace file: {exc}")
        if args.progress:
            obs.OBS.bus.subscribe(obs.FarmProgressReporter())
        # Launched by the characterization service on behalf of an HTTP
        # request: stamp that request's id into the trace as the very
        # first event, so access log, job row and trace join on it.
        import os

        request_id = os.environ.get("REPRO_REQUEST_ID", "")
        if request_id and obs.OBS.enabled:
            obs.OBS.bus.emit(
                obs.RequestContext(
                    request_id=request_id,
                    job_id=os.environ.get("REPRO_JOB_ID", ""),
                )
            )


def _record_run(args, wall_s: float) -> None:
    """Append the ``--run-log`` record (called before the obs reset)."""
    from repro import obs

    history = obs.RunHistory(args.run_log)
    # Children included: a farm run's worker CPU belongs to the campaign.
    cpu_user_s, cpu_system_s = obs.process_cpu_seconds(include_children=True)
    record = obs.build_run_record(
        name=args.run_name or history.next_default_name(),
        registry=obs.OBS.metrics,
        command=args.command,
        wall_s=wall_s,
        workers=getattr(args, "workers", None),
        seed=getattr(args, "seed", None),
        cpu_user_s=cpu_user_s,
        cpu_system_s=cpu_system_s,
    )
    history.append(record)
    print(f"run {record['run']!r} recorded: {args.run_log}")


def _teardown_observability(args, wall_s: float = 0.0) -> None:
    """Print the ``--metrics`` summary, flush the trace, reset the layer."""
    if not _telemetry_requested(args):
        return
    from repro import obs

    # Stop profiling first so the session's profile event and final
    # resource sample land in the trace (and metrics) before they close.
    if args.profile:
        obs.stop_profiling()
    if args.metrics:
        print()
        print(obs.render_metrics_summary(obs.OBS.metrics))
    if args.run_log:
        _record_run(args, wall_s)
    obs.OBS.reset()  # closes (and flushes) the trace writer
    if args.trace:
        print(f"telemetry trace written: {args.trace}")


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command in _NO_TELEMETRY_COMMANDS:
        # Pure inspection / service plumbing: no campaign runs in this
        # process, so no observability setup/teardown (the obs layer
        # stays off; service jobs trace in their own subprocesses).
        try:
            return _COMMANDS[args.command](args)
        except BrokenPipeError:
            # Inspection output piped into head/less that closed early.
            sys.stderr.close()
            return 0
    if (
        (args.workers or args.resume or args.backend or args.broker)
        and args.command not in _FARM_COMMANDS
    ):
        print(
            f"note: --workers/--resume/--backend/--broker are ignored by "
            f"{args.command!r} (honoured by: {', '.join(_FARM_COMMANDS)})",
            file=sys.stderr,
        )
    _setup_observability(args)
    started = time.perf_counter()
    try:
        return _COMMANDS[args.command](args)
    finally:
        _teardown_observability(args, wall_s=time.perf_counter() - started)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
