"""Genetic algorithm substrate.

The fig. 5 optimization scheme evolves tests against ATE-measured fitness.
"In order to deal with two different types of chromosomes — test sequences
and test conditions — we have developed a GA method evolving multiple
populations of different individuals over a number of generations"
(section 6).

* :mod:`~repro.ga.chromosome` — the two-species individual (vector-sequence
  chromosome + normalized condition-gene chromosome);
* :mod:`~repro.ga.operators` — selection, species-specific crossover and
  mutation (including stimulus *motif* insertion, the structured mutation
  that lets the GA compose activity blocks);
* :mod:`~repro.ga.population` — one population with elitism bookkeeping;
* :mod:`~repro.ga.engine` — the multi-population engine with migration,
  stagnation restart and the worst-case-ratio stop rule;
* :mod:`~repro.ga.fitness` — fitness evaluator interfaces and caching.
"""

from repro.ga.chromosome import TestIndividual
from repro.ga.engine import GAConfig, GAResult, MultiPopulationGA
from repro.ga.fitness import CachingFitness, FitnessFunction
from repro.ga.population import Population

__all__ = [
    "TestIndividual",
    "GAConfig",
    "GAResult",
    "MultiPopulationGA",
    "CachingFitness",
    "FitnessFunction",
    "Population",
]
