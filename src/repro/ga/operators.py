"""GA variation operators, per chromosome species.

Sequence chromosome
    * single-point **splice crossover** between two parents' sequences;
    * **point mutation** — rewrite individual cycles with random operations;
    * **motif mutation** — overwrite a random segment with a coherent
      stimulus motif (full-bus toggle burst, same-address read-after-write
      pairs, MSB-hopping writes).  Motifs give the GA composable activity
      building blocks, which is what lets it assemble block-structured
      worst-case patterns no uniform random test contains.

Condition chromosome
    * **blend crossover** (arithmetic mix with a random coefficient);
    * **Gaussian mutation** with clipping to ``[0, 1]``.

Selection is k-tournament on fitness (higher fitness = closer to the
characterization objective's worst case).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.ga.chromosome import TestIndividual
from repro.patterns.vectors import (
    MAX_SEQUENCE_CYCLES,
    MIN_SEQUENCE_CYCLES,
    Operation,
    TestVector,
    VectorSequence,
)

#: Names of the available sequence motifs.
MOTIF_NAMES = ("toggle_burst", "raw_pairs", "msb_hop")


# -- selection --------------------------------------------------------------------
def tournament_select(
    population: Sequence[TestIndividual],
    rng: np.random.Generator,
    k: int = 3,
) -> TestIndividual:
    """k-tournament: best fitness among k uniform picks.

    Unevaluated individuals lose every tournament against evaluated ones.
    """
    if not population:
        raise ValueError("cannot select from an empty population")
    k = min(k, len(population))
    picks = rng.choice(len(population), size=k, replace=False)
    contenders = [population[i] for i in picks]
    return max(
        contenders,
        key=lambda ind: ind.fitness if ind.fitness is not None else -np.inf,
    )


# -- sequence species ------------------------------------------------------------
def crossover_sequences(
    a: VectorSequence,
    b: VectorSequence,
    rng: np.random.Generator,
) -> Tuple[VectorSequence, VectorSequence]:
    """Single-point splice producing two children."""
    cut_a = int(rng.integers(1, len(a)))
    cut_b = int(rng.integers(1, len(b)))
    return a.spliced(b, cut_a, cut_b), b.spliced(a, cut_b, cut_a)


def _random_vector(
    rng: np.random.Generator, addr_bits: int, data_bits: int
) -> TestVector:
    op = rng.choice([Operation.READ, Operation.WRITE, Operation.NOP],
                    p=[0.45, 0.45, 0.10])
    return TestVector(
        op,
        int(rng.integers(0, 1 << addr_bits)),
        int(rng.integers(0, 1 << data_bits)),
    )


def point_mutate_sequence(
    sequence: VectorSequence,
    rng: np.random.Generator,
    rate: float = 0.02,
) -> VectorSequence:
    """Rewrite each cycle independently with probability ``rate``."""
    if not 0.0 <= rate <= 1.0:
        raise ValueError("mutation rate must be in [0, 1]")
    vectors = list(sequence.vectors)
    mutated = False
    for i in range(len(vectors)):
        if rng.random() < rate:
            vectors[i] = _random_vector(rng, sequence.addr_bits, sequence.data_bits)
            mutated = True
    if not mutated:
        return sequence
    return VectorSequence(
        vectors, sequence.addr_bits, sequence.data_bits, name=sequence.name
    )


# -- motifs ----------------------------------------------------------------------
def _motif_toggle_burst(
    rng: np.random.Generator, length: int, addr_bits: int, data_bits: int
) -> List[TestVector]:
    """Hot window: full data-bus and address-bus toggling writes."""
    mask = (1 << data_bits) - 1
    full = (1 << addr_bits) - 1
    word = int(rng.integers(0, 1 << data_bits))
    addr = int(rng.integers(0, 1 << addr_bits))
    out = []
    for _ in range(length):
        word ^= mask
        addr ^= full
        out.append(TestVector(Operation.WRITE, addr, word))
    return out


def _motif_raw_pairs(
    rng: np.random.Generator, length: int, addr_bits: int, data_bits: int
) -> List[TestVector]:
    """Same-address write-then-read pairs with MSB-hopping addresses."""
    half = 1 << (addr_bits - 1)
    mask = (1 << data_bits) - 1
    word = int(rng.integers(0, 1 << data_bits))
    addr = int(rng.integers(0, 1 << addr_bits))
    out: List[TestVector] = []
    while len(out) < length:
        word ^= mask
        addr ^= half
        out.append(TestVector(Operation.WRITE, addr, word))
        out.append(TestVector(Operation.READ, addr, 0))
    return out[:length]


def _motif_msb_hop(
    rng: np.random.Generator, length: int, addr_bits: int, data_bits: int
) -> List[TestVector]:
    """Writes hopping between the two address halves every cycle."""
    half = 1 << (addr_bits - 1)
    addr = int(rng.integers(0, 1 << addr_bits))
    out = []
    for _ in range(length):
        addr ^= half
        data = int(rng.integers(0, 1 << data_bits))
        out.append(TestVector(Operation.WRITE, addr, data))
    return out


_MOTIF_BUILDERS = {
    "toggle_burst": _motif_toggle_burst,
    "raw_pairs": _motif_raw_pairs,
    "msb_hop": _motif_msb_hop,
}


def motif_mutate_sequence(
    sequence: VectorSequence,
    rng: np.random.Generator,
    min_length: int = 16,
    max_length: int = 96,
) -> VectorSequence:
    """Overwrite a random segment with a random stimulus motif."""
    name = str(rng.choice(MOTIF_NAMES))
    length = int(rng.integers(min_length, max_length + 1))
    length = min(length, len(sequence))
    start = int(rng.integers(0, len(sequence) - length + 1))
    motif = _MOTIF_BUILDERS[name](
        rng, length, sequence.addr_bits, sequence.data_bits
    )
    vectors = list(sequence.vectors)
    vectors[start : start + length] = motif
    return VectorSequence(
        vectors[:MAX_SEQUENCE_CYCLES],
        sequence.addr_bits,
        sequence.data_bits,
        name=sequence.name,
    )


def resize_mutate_sequence(
    sequence: VectorSequence,
    rng: np.random.Generator,
    max_change: int = 64,
) -> VectorSequence:
    """Grow or shrink the sequence within the paper's 100-1000 cycle bounds."""
    change = int(rng.integers(-max_change, max_change + 1))
    target = int(
        np.clip(len(sequence) + change, MIN_SEQUENCE_CYCLES, MAX_SEQUENCE_CYCLES)
    )
    vectors = list(sequence.vectors)
    if target <= len(vectors):
        vectors = vectors[:target]
    else:
        while len(vectors) < target:
            vectors.append(
                _random_vector(rng, sequence.addr_bits, sequence.data_bits)
            )
    return VectorSequence(
        vectors, sequence.addr_bits, sequence.data_bits, name=sequence.name
    )


# -- condition species --------------------------------------------------------------
def crossover_conditions(
    a: np.ndarray, b: np.ndarray, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    """Arithmetic blend with a uniform mixing coefficient per child."""
    alpha = rng.random()
    child1 = alpha * a + (1.0 - alpha) * b
    child2 = (1.0 - alpha) * a + alpha * b
    return np.clip(child1, 0.0, 1.0), np.clip(child2, 0.0, 1.0)


def mutate_conditions(
    genes: np.ndarray, rng: np.random.Generator, sigma: float = 0.08
) -> np.ndarray:
    """Gaussian perturbation of all genes, clipped to ``[0, 1]``."""
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    return np.clip(genes + rng.normal(0.0, sigma, size=genes.shape), 0.0, 1.0)
