"""Fitness evaluation.

"A fitness value is assigned to each individual in the GA population.
According to the analysis task, the fitness can be power consumption, peak
current, voltage or other functionalities obtained from ATE" (section 6).
In this reproduction the canonical fitness is the Worst-Case Ratio of the
SUTP-measured trip point, so *higher fitness = closer to the worst case*
regardless of the parameter's spec direction.

:class:`CachingFitness` wraps any fitness function with an exact-genome
cache, because GA elitism re-submits unchanged individuals every
generation and each raw evaluation costs real ATE measurements.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.ga.chromosome import TestIndividual
from repro.patterns.conditions import ConditionSpace
from repro.patterns.testcase import TestCase

#: A fitness function maps an executable test case to a scalar
#: (higher = worse case = fitter for the optimization objective).
FitnessFunction = Callable[[TestCase], float]


class CachingFitness:
    """Memoizing adapter around a :data:`FitnessFunction`.

    The cache key is the genome content (sequence identity hash + rounded
    condition genes), so re-evaluating elite survivors is free while any
    mutation produces a fresh measurement.
    """

    def __init__(
        self,
        fitness_fn: FitnessFunction,
        condition_space: ConditionSpace,
    ) -> None:
        self._fitness_fn = fitness_fn
        self._condition_space = condition_space
        self._cache: Dict[Tuple, float] = {}
        self.raw_evaluations = 0

    def _key(self, individual: TestIndividual) -> Tuple:
        genes = tuple(round(float(g), 6) for g in individual.condition_genes)
        return (hash(individual.sequence), genes)

    def evaluate(self, individual: TestIndividual) -> TestIndividual:
        """Return the individual with fitness attached (cached or measured)."""
        if individual.evaluated:
            return individual
        key = self._key(individual)
        cached: Optional[float] = self._cache.get(key)
        if cached is not None:
            return individual.with_fitness(cached)
        test = individual.to_test_case(self._condition_space)
        fitness = float(self._fitness_fn(test))
        self._cache[key] = fitness
        self.raw_evaluations += 1
        return individual.with_fitness(fitness)

    @property
    def cache_size(self) -> int:
        """Distinct genomes evaluated so far."""
        return len(self._cache)
