"""Multi-population GA engine (fig. 5 steps 3-4).

Several populations evolve in parallel with ring migration; both chromosome
species (sequence, condition) recombine and mutate; a stagnating population
is thrown away and re-seeded ("GA optimization process continues until GA
fitness value cannot improve anymore.  Then ... a brand new population will
start GA again"); the whole run stops at the generation budget or as soon
as the worst case is detected by the worst-case-ratio stop rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.ga.chromosome import TestIndividual
from repro.ga.fitness import CachingFitness
from repro.obs.events import GAGeneration
from repro.obs.runtime import OBS
from repro.ga.operators import (
    crossover_conditions,
    crossover_sequences,
    motif_mutate_sequence,
    mutate_conditions,
    point_mutate_sequence,
    resize_mutate_sequence,
    tournament_select,
)
from repro.ga.population import Population
from repro.patterns.conditions import ConditionSpace


@dataclass(frozen=True)
class GAConfig:
    """Engine hyperparameters."""

    population_size: int = 20
    n_populations: int = 3
    max_generations: int = 40
    crossover_rate: float = 0.85
    point_mutation_rate: float = 0.02
    motif_mutation_prob: float = 0.35
    resize_mutation_prob: float = 0.10
    condition_sigma: float = 0.08
    tournament_k: int = 3
    elite_count: int = 2
    migration_interval: int = 8
    migration_count: int = 2
    stagnation_patience: int = 10
    #: Stop as soon as any individual's fitness (a WCR) reaches this value;
    #: ``None`` disables the early stop.
    stop_fitness: Optional[float] = None
    evolve_conditions: bool = True

    def __post_init__(self) -> None:
        if self.population_size < 4:
            raise ValueError("population_size must be >= 4")
        if self.n_populations < 1:
            raise ValueError("need at least one population")
        if self.elite_count >= self.population_size:
            raise ValueError("elite_count must be smaller than population_size")
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise ValueError("crossover_rate must be in [0, 1]")


@dataclass
class GAResult:
    """Outcome of one engine run."""

    best: TestIndividual
    best_per_population: List[TestIndividual]
    generations_run: int
    fitness_history: List[float] = field(default_factory=list)
    evaluations: int = 0
    restarts: int = 0
    stopped_by_wcr: bool = False
    stopped_by_budget: bool = False


class MultiPopulationGA:
    """The engine.

    Parameters
    ----------
    config:
        Hyperparameters.
    condition_space:
        Decoding space of the condition chromosome.
    fitness:
        Fitness function or an already-wrapped :class:`CachingFitness`.
    seed:
        RNG seed for all stochastic operators.
    """

    def __init__(
        self,
        config: GAConfig,
        condition_space: ConditionSpace,
        fitness,
        seed: int = 0,
    ) -> None:
        self.config = config
        self.condition_space = condition_space
        if isinstance(fitness, CachingFitness):
            self.fitness = fitness
        else:
            self.fitness = CachingFitness(fitness, condition_space)
        self._rng = np.random.default_rng(seed)
        # Operator attribution for the insight layer: maps the id() of each
        # individual created this generation to the operator chain that
        # produced it.  Cleared at the top of every generation; only live
        # objects (still referenced by a population) are ever looked up.
        self._operator_log: Dict[int, str] = {}

    # -- population construction -----------------------------------------------
    def _initial_populations(
        self, seeds: Sequence[TestIndividual]
    ) -> List[Population]:
        if not seeds:
            raise ValueError("the GA needs at least one seed individual")
        populations = []
        for p in range(self.config.n_populations):
            members: List[TestIndividual] = []
            for i in range(self.config.population_size):
                seed_ind = seeds[(p * self.config.population_size + i) % len(seeds)]
                if i < len(seeds) and p == 0:
                    members.append(self.fitness.evaluate(seed_ind))
                else:
                    members.append(self.fitness.evaluate(self._variant(seed_ind)))
            populations.append(Population(f"pop{p}", members))
        return populations

    def _variant(self, individual: TestIndividual) -> TestIndividual:
        """A mutated copy used to diversify seed copies and restarts."""
        sequence = point_mutate_sequence(
            individual.sequence, self._rng, rate=0.05
        )
        if self._rng.random() < 0.5:
            sequence = motif_mutate_sequence(sequence, self._rng)
        genes = individual.condition_genes
        if self.config.evolve_conditions:
            genes = mutate_conditions(genes, self._rng, sigma=0.15)
        return TestIndividual(sequence=sequence, condition_genes=genes)

    # -- variation pipeline ---------------------------------------------------------
    def _offspring(self, population: Population) -> List[TestIndividual]:
        cfg = self.config
        next_gen: List[TestIndividual] = list(population.elite(cfg.elite_count))
        for elite in next_gen:
            self._operator_log[id(elite)] = "elite"
        while len(next_gen) < cfg.population_size:
            parent_a = tournament_select(
                population.individuals, self._rng, cfg.tournament_k
            )
            parent_b = tournament_select(
                population.individuals, self._rng, cfg.tournament_k
            )
            if self._rng.random() < cfg.crossover_rate:
                seq_a, seq_b = crossover_sequences(
                    parent_a.sequence, parent_b.sequence, self._rng
                )
                genes_a, genes_b = crossover_conditions(
                    parent_a.condition_genes, parent_b.condition_genes, self._rng
                )
                base_op = "crossover"
            else:
                seq_a, seq_b = parent_a.sequence, parent_b.sequence
                genes_a, genes_b = (
                    parent_a.condition_genes,
                    parent_b.condition_genes,
                )
                base_op = "clone"
            for sequence, genes in ((seq_a, genes_a), (seq_b, genes_b)):
                if len(next_gen) >= cfg.population_size:
                    break
                ops = base_op
                sequence = point_mutate_sequence(
                    sequence, self._rng, cfg.point_mutation_rate
                )
                if self._rng.random() < cfg.motif_mutation_prob:
                    sequence = motif_mutate_sequence(sequence, self._rng)
                    ops += "+motif"
                if self._rng.random() < cfg.resize_mutation_prob:
                    sequence = resize_mutate_sequence(sequence, self._rng)
                    ops += "+resize"
                if cfg.evolve_conditions:
                    genes = mutate_conditions(
                        genes, self._rng, cfg.condition_sigma
                    )
                child = TestIndividual(sequence=sequence, condition_genes=genes)
                evaluated = self.fitness.evaluate(child)
                self._operator_log[id(evaluated)] = ops
                next_gen.append(evaluated)
        return next_gen

    def _migrate(self, populations: List[Population]) -> None:
        """Ring migration: each population's elite displaces the next's worst."""
        if len(populations) < 2:
            return
        count = self.config.migration_count
        elites = [pop.elite(count) for pop in populations]
        for index, population in enumerate(populations):
            donors = elites[(index - 1) % len(populations)]
            slots = population.worst_indices(len(donors))
            for slot, donor in zip(slots, donors):
                population.individuals[slot] = donor

    # -- the run ------------------------------------------------------------------
    def run(
        self,
        seeds: Sequence[TestIndividual],
        restart_factory: Optional[Callable[[], TestIndividual]] = None,
        budget_exhausted: Optional[Callable[[], bool]] = None,
    ) -> GAResult:
        """Evolve from ``seeds``; returns the best genome found.

        ``restart_factory`` supplies fresh individuals when a stagnant
        population is re-seeded (fig. 5 wires the fuzzy-neural test
        generator here); without it, restarts use mutated elites.

        ``budget_exhausted`` is polled after every generation; returning
        True ends the run (used to cap real ATE measurement time — the
        cost currency of the whole method).
        """
        cfg = self.config
        evals_seen = self.fitness.raw_evaluations
        populations = self._initial_populations(seeds)
        result = GAResult(
            best=max(
                (pop.best() for pop in populations),
                key=lambda ind: ind.fitness or -np.inf,
            ),
            best_per_population=[pop.best() for pop in populations],
            generations_run=0,
        )
        restarts = 0

        for generation in range(1, cfg.max_generations + 1):
            self._operator_log.clear()
            for population in populations:
                population.replace(self._offspring(population))
                if population.stagnant_for(cfg.stagnation_patience):
                    self._restart(population, restart_factory)
                    restarts += 1
                    if OBS.enabled:
                        OBS.metrics.counter("ga.restarts").inc(
                            label=population.name
                        )
            if generation % cfg.migration_interval == 0:
                self._migrate(populations)

            generation_best = max(
                (pop.best() for pop in populations),
                key=lambda ind: ind.fitness or -np.inf,
            )
            if (generation_best.fitness or -np.inf) > (result.best.fitness or -np.inf):
                result.best = generation_best
            result.fitness_history.append(result.best.fitness or float("nan"))
            result.generations_run = generation

            if OBS.enabled:
                fitnesses = [
                    ind.fitness
                    for pop in populations
                    for ind in pop.individuals
                    if ind.fitness is not None
                ]
                mean_fitness = (
                    float(sum(fitnesses) / len(fitnesses))
                    if fitnesses
                    else float("nan")
                )
                evals_total = self.fitness.raw_evaluations
                OBS.metrics.counter("ga.generations").inc()
                OBS.metrics.counter("ga.fitness_evals").inc(
                    evals_total - evals_seen
                )
                evals_seen = evals_total
                OBS.metrics.gauge("ga.best_fitness").set(
                    result.best.fitness or float("nan")
                )
                std_fitness = (
                    float(np.std(fitnesses))
                    if len(fitnesses) >= 2
                    else 0.0
                )
                sequence_diversity = float(
                    np.mean([pop.sequence_diversity() for pop in populations])
                )
                condition_diversity = float(
                    np.mean([pop.condition_diversity() for pop in populations])
                )
                best_operator = self._operator_log.get(
                    id(generation_best), "carryover"
                )
                OBS.metrics.counter("ga.best_operator").inc(
                    label=best_operator
                )
                OBS.metrics.gauge("ga.sequence_diversity").set(
                    sequence_diversity
                )
                OBS.metrics.gauge("ga.condition_diversity").set(
                    condition_diversity
                )
                OBS.bus.emit(
                    GAGeneration(
                        generation=generation,
                        best_fitness=float(result.best.fitness or float("nan")),
                        mean_fitness=mean_fitness,
                        evaluations=evals_total,
                        restarts=restarts,
                        std_fitness=std_fitness,
                        sequence_diversity=sequence_diversity,
                        condition_diversity=condition_diversity,
                        best_operator=best_operator,
                    )
                )

            if (
                cfg.stop_fitness is not None
                and result.best.fitness is not None
                and result.best.fitness >= cfg.stop_fitness
            ):
                result.stopped_by_wcr = True
                break
            if budget_exhausted is not None and budget_exhausted():
                result.stopped_by_budget = True
                break

        result.best_per_population = [pop.best() for pop in populations]
        result.evaluations = self.fitness.raw_evaluations
        result.restarts = restarts
        return result

    def _restart(
        self,
        population: Population,
        restart_factory: Optional[Callable[[], TestIndividual]],
    ) -> None:
        """Re-seed a stagnant population, keeping one elite survivor."""
        survivor = population.best()
        self._operator_log[id(survivor)] = "elite"
        fresh: List[TestIndividual] = [survivor]
        while len(fresh) < population.size:
            if restart_factory is not None:
                candidate = restart_factory()
            else:
                candidate = self._variant(survivor)
            evaluated = self.fitness.evaluate(candidate)
            self._operator_log[id(evaluated)] = "restart"
            fresh.append(evaluated)
        population.individuals = fresh
        population.best_history.clear()
