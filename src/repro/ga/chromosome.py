"""The GA individual: two chromosome species in one genome.

A :class:`TestIndividual` carries

* a **test-sequence chromosome** — the vector sequence itself (direct
  representation; crossover splices, mutation rewrites cycles or inserts
  stimulus motifs), and
* a **test-condition chromosome** — three genes in ``[0, 1]`` that decode
  to a :class:`~repro.patterns.conditions.TestCondition` through the
  condition space.

Fitness is attached after ATE evaluation; individuals are immutable
(operators construct new ones), so sharing between populations is safe.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from repro.patterns.conditions import ConditionSpace
from repro.patterns.testcase import TestCase
from repro.patterns.vectors import VectorSequence

#: Number of condition genes (vdd, temperature, clock period).
CONDITION_GENES = 3


@dataclass(frozen=True)
class TestIndividual:
    """One genome: sequence chromosome + condition chromosome (+ fitness)."""

    sequence: VectorSequence
    condition_genes: np.ndarray
    fitness: Optional[float] = None
    origin: str = "ga"

    def __post_init__(self) -> None:
        genes = np.asarray(self.condition_genes, dtype=float)
        if genes.shape != (CONDITION_GENES,):
            raise ValueError(
                f"expected {CONDITION_GENES} condition genes, got {genes.shape}"
            )
        if np.any(genes < 0.0) or np.any(genes > 1.0):
            raise ValueError("condition genes must lie in [0, 1]")
        object.__setattr__(self, "condition_genes", genes)

    @property
    def evaluated(self) -> bool:
        """True once a fitness has been attached."""
        return self.fitness is not None

    def with_fitness(self, fitness: float) -> "TestIndividual":
        """Copy with fitness attached."""
        return replace(self, fitness=float(fitness))

    def to_test_case(
        self,
        condition_space: ConditionSpace,
        name: str = "",
    ) -> TestCase:
        """Decode the genome into an executable test case."""
        condition = condition_space.denormalize(self.condition_genes)
        return TestCase(
            sequence=self.sequence,
            condition=condition,
            name=name or self.sequence.name,
            origin=self.origin,
        )

    @classmethod
    def from_test_case(
        cls,
        test: TestCase,
        condition_space: ConditionSpace,
        origin: str = "ga",
    ) -> "TestIndividual":
        """Encode an existing test case (e.g. an NN-selected seed)."""
        genes = condition_space.normalize(test.condition)
        return cls(
            sequence=test.sequence,
            condition_genes=np.clip(genes, 0.0, 1.0),
            origin=origin,
        )

    def __str__(self) -> str:
        fit = f"{self.fitness:.4f}" if self.fitness is not None else "?"
        return (
            f"Individual({self.sequence.name or 'seq'}, "
            f"{len(self.sequence)}cyc, fitness={fit})"
        )
