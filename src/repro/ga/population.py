"""One GA population.

Holds a fixed-size list of evaluated individuals, sorted access to the
elite, and generation bookkeeping.  The multi-population engine owns several
of these and migrates individuals between them.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.ga.chromosome import TestIndividual


class Population:
    """A named, fixed-size population of individuals."""

    def __init__(
        self, name: str, individuals: Sequence[TestIndividual]
    ) -> None:
        if not individuals:
            raise ValueError("a population needs at least one individual")
        self.name = name
        self.individuals: List[TestIndividual] = list(individuals)
        self.generation = 0
        self.best_history: List[float] = []

    def __len__(self) -> int:
        return len(self.individuals)

    def __iter__(self):
        return iter(self.individuals)

    @property
    def size(self) -> int:
        """Population size."""
        return len(self.individuals)

    def _fitness_or_worst(self, individual: TestIndividual) -> float:
        return individual.fitness if individual.fitness is not None else -np.inf

    def best(self) -> TestIndividual:
        """Fittest individual (unevaluated ones rank last)."""
        return max(self.individuals, key=self._fitness_or_worst)

    def elite(self, count: int) -> List[TestIndividual]:
        """The ``count`` fittest individuals, best first."""
        if count < 0:
            raise ValueError("elite count must be >= 0")
        ranked = sorted(self.individuals, key=self._fitness_or_worst, reverse=True)
        return ranked[:count]

    def worst_indices(self, count: int) -> List[int]:
        """Indices of the ``count`` least fit individuals (migration slots)."""
        order = sorted(
            range(len(self.individuals)),
            key=lambda i: self._fitness_or_worst(self.individuals[i]),
        )
        return order[:count]

    def replace(self, new_individuals: Sequence[TestIndividual]) -> None:
        """Install the next generation (size must be preserved)."""
        if len(new_individuals) != len(self.individuals):
            raise ValueError(
                f"generation size {len(new_individuals)} != population size "
                f"{len(self.individuals)}"
            )
        self.individuals = list(new_individuals)
        self.generation += 1
        self.best_history.append(self._fitness_or_worst(self.best()))

    def mean_fitness(self) -> float:
        """Mean fitness over evaluated individuals (``nan`` if none)."""
        values = [
            ind.fitness for ind in self.individuals if ind.fitness is not None
        ]
        return float(np.mean(values)) if values else float("nan")

    def fitness_std(self) -> float:
        """Fitness standard deviation over evaluated individuals."""
        values = [
            ind.fitness for ind in self.individuals if ind.fitness is not None
        ]
        return float(np.std(values)) if len(values) >= 2 else 0.0

    def sequence_diversity(self) -> float:
        """Sequence-chromosome spread: mean normalized Hamming distance.

        Each individual's vector sequence is compared cycle-by-cycle
        against the population best's; differing cycles and any length
        difference both count as mismatches, normalized by the longer
        sequence.  0 means every sequence equals the best's; 1 means no
        cycle agrees anywhere.
        """
        reference = list(self.best().sequence)
        distances = []
        for individual in self.individuals:
            sequence = list(individual.sequence)
            longest = max(len(reference), len(sequence))
            if longest == 0:
                distances.append(0.0)
                continue
            mismatches = sum(
                1 for a, b in zip(reference, sequence) if a != b
            )
            mismatches += abs(len(reference) - len(sequence))
            distances.append(mismatches / longest)
        return float(np.mean(distances))

    def condition_diversity(self) -> float:
        """Condition-chromosome spread: mean absolute gene deviation."""
        genes = np.stack(
            [individual.condition_genes for individual in self.individuals]
        )
        return float(np.mean(np.abs(genes - genes.mean(axis=0))))

    def stagnant_for(self, patience: int, tolerance: float = 1e-6) -> bool:
        """True when the best fitness has not improved for ``patience`` gens."""
        if len(self.best_history) < patience + 1:
            return False
        recent = self.best_history[-(patience + 1) :]
        return max(recent[1:]) <= recent[0] + tolerance
